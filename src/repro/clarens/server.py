"""The Clarens host: dispatch pipeline, system services, XML-RPC front end.

:class:`ClarensHost` is the in-process core every GAE service registers
with.  A call no longer walks a hard-coded auth → ACL → invoke sequence;
it flows through an explicit **middleware pipeline**
(:mod:`repro.clarens.middleware`) operating on one
:class:`~repro.clarens.middleware.CallContext`:

    tracing → metrics → authentication → ACL → read cache → [user middlewares] → invoke

so every hosted service inherits per-method latency metrics
(``system.stats``), a queryable trace ring (``system.recent_calls``) and
trace-id propagation for free.  ``host.add_middleware()`` extends the
chain.

:class:`XmlRpcServerHandle` mounts a host on a real threaded HTTP XML-RPC
server (stdlib ``xmlrpc.server``), the stand-in for the Windows-XP JClarens
server of §7's performance study.  The wire protocol puts the session token
first in every parameter list: ``service.method(token, *args)``; a client
trace id piggybacks on the token field (see
:func:`~repro.clarens.serialization.encode_trace_token`).
"""

from __future__ import annotations

import threading
import time
from socketserver import ThreadingMixIn
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from xmlrpc.client import Fault
from xmlrpc.server import SimpleXMLRPCRequestHandler, SimpleXMLRPCServer

from repro.clarens.acl import AccessControlList
from repro.clarens.auth import AuthService, Principal, UserDatabase
from repro.clarens.errors import ClarensFault, RemoteFault
from repro.clarens.middleware import (
    AclMiddleware,
    AuthenticationMiddleware,
    CallContext,
    MetricsMiddleware,
    Middleware,
    TracingMiddleware,
    build_pipeline,
)
from repro.clarens.readcache import (
    EpochRegistry,
    ReadCache,
    ReadCacheMiddleware,
    canonical_args,
)
from repro.clarens.registry import ServiceRegistry, clarens_method
from repro.clarens.serialization import (
    MulticallResult,
    decode_trace_token,
    to_wire,
)
from repro.clarens.telemetry import CallStats, TraceLog, new_trace_id

__all__ = [
    "CallStats",  # lives in telemetry now; re-exported for compatibility
    "ClarensHost",
    "XmlRpcServerHandle",
]


class _SystemService:
    """The built-in ``system`` service every host exposes."""

    def __init__(self, host: "ClarensHost") -> None:
        self._host = host

    @clarens_method(anonymous=True)
    def ping(self) -> str:
        """Liveness check."""
        return "pong"

    @clarens_method(anonymous=True)
    def login(self, user: str, password: str) -> str:
        """Authenticate; returns a session token for subsequent calls."""
        return self._host.auth.login(user, password)

    @clarens_method(anonymous=True)
    def logout(self, token: str) -> bool:
        """Revoke a session token."""
        self._host.auth.logout(token)
        return True

    @clarens_method(anonymous=True)
    def list_services(self) -> List[str]:
        """Names of every service hosted here."""
        return self._host.registry.names()

    @clarens_method(anonymous=True)
    def list_methods(self, service: str) -> List[str]:
        """Exposed method names of one service."""
        return sorted(self._host.registry.service(service).methods)

    @clarens_method(anonymous=True)
    def method_help(self, method_path: str) -> str:
        """Docstring of a ``service.method`` path."""
        return self._host.registry.resolve(method_path).doc

    @clarens_method(anonymous=True)
    def host_name(self) -> str:
        """This host's name."""
        return self._host.name

    @clarens_method(anonymous=True)
    def stats(self) -> Dict[str, Any]:
        """Aggregate call statistics for this host.

        Returns ``calls``, ``faults``, ``per_method`` counts and
        ``latency_ms`` — per-method ``{count, faults, mean_ms, p50_ms,
        p95_ms, p99_ms, max_ms}`` summaries from the metrics middleware.
        Hosts fronted by the async server also report ``worker_pools``:
        per-pool queue depth and decode/dispatch/encode/reply-flush
        stage latency summaries.
        """
        snap = self._host.stats.snapshot()
        if self._host.worker_pools:
            snap["worker_pools"] = {
                label: pool.snapshot()
                for label, pool in sorted(self._host.worker_pools.items())
            }
        return snap

    @clarens_method(anonymous=True)
    def observability(self) -> Dict[str, Any]:
        """Snapshot of the unified observability layer.

        Returns ``{"enabled": False}`` on hosts without instrumentation;
        otherwise span/journal occupancy plus every registered metric
        (counters, gauges, histogram summaries) keyed by name.
        """
        instrumentation = self._host.observability
        if instrumentation is None:
            return {"enabled": False}
        return instrumentation.snapshot()

    @clarens_method(anonymous=True)
    def consumers(self) -> Dict[str, Any]:
        """Per-consumer cursors/lag of the event-sourced write path.

        Returns ``{"enabled": False}`` on hosts without the event core;
        otherwise the journal head seq plus, per registered consumer,
        its cursor, lag, folded event kinds, namespaces, and baseline.
        """
        instrumentation = self._host.observability
        core = getattr(instrumentation, "eventcore", None)
        if core is None:
            return {"enabled": False}
        return core.snapshot()

    @clarens_method(anonymous=True)
    def health(self) -> Dict[str, Any]:
        """Live state of the declarative health-rule engine.

        Returns ``{"enabled": False}`` on hosts without instrumentation
        or with telemetry disabled; otherwise the firing count, per-rule
        state machines (``ok``/``firing`` with streaks and observed
        values), and each rule's firing/resolved transition history.
        """
        instrumentation = self._host.observability
        if instrumentation is None:
            return {"enabled": False}
        return instrumentation.health_snapshot()

    @clarens_method(anonymous=True)
    def cache(self) -> Dict[str, Any]:
        """Read-cache introspection for this host.

        Returns the cache configuration (``enabled``, ``capacity``), its
        current occupancy (``entries``, ``evictions``), per-method
        ``{hits, misses, invalidations, coalesced}`` counters, and the
        live epoch vector (``epochs``: every registered epoch name with
        its current value).
        """
        return self._host.read_cache.snapshot()

    @clarens_method(anonymous=True)
    def recent_calls(self, limit: int = 50, trace_id: str = "") -> List[Dict[str, Any]]:
        """The newest finished calls from the host's trace ring buffer.

        Each record carries ``trace_id``, ``method``, ``transport``,
        ``principal``, ``started``, ``duration_ms``, ``outcome``,
        ``served_from`` (``execute`` / ``cache`` / ``coalesced``) and (for
        failures) ``code``/``error``.  Filter to one trace with
        *trace_id*; records arrive oldest-first.
        """
        records = self._host.traces.snapshot(
            limit=int(limit), trace_id=trace_id or None
        )
        return [r.to_wire() for r in records]

    @clarens_method(anonymous=True, pass_context=True)
    def multicall(self, ctx: CallContext, calls: List[Dict[str, Any]]) -> List[MulticallResult]:
        """Execute several calls in one round trip (XML-RPC multicall).

        Each entry is ``{"methodName": "service.method", "params": [...]}``.
        The caller's token authenticates every sub-call; each result is a
        :class:`~repro.clarens.serialization.MulticallResult` struct so one
        failure cannot poison the batch.  Every sub-call runs through the
        full middleware pipeline under the batch's trace id.  Nested
        multicalls are rejected.

        When the host's read cache is enabled, identical **read** sub-calls
        (same method + canonical args, method registered with a
        ``ReadPolicy``) are *coalesced*: the first occurrence executes, the
        duplicates reuse its result without re-entering the pipeline.  This
        is safe because duplicates share the batch's principal (same auth
        and ACL outcome) and only declared-read-only sub-calls separate
        them — any potentially mutating sub-call in between resets the
        dedup window, so answers stay bit-identical to an uncoalesced run.
        """
        host = self._host
        cache = host.read_cache
        out: List[MulticallResult] = []
        seen: Dict[Any, int] = {}  # coalescing key -> index of first result
        for call in calls:
            method = str(call.get("methodName", ""))
            params = list(call.get("params", []))
            if method == "system.multicall":
                out.append(MulticallResult(
                    ok=False, code=400,
                    error="nested multicall is not allowed",
                    trace_id=ctx.trace_id,
                ))
                continue
            key = None
            if cache.enabled:
                try:
                    entry = host.registry.resolve(method)
                except ClarensFault:
                    entry = None
                if (
                    entry is not None
                    and entry.cache is not None
                    and not entry.pass_context
                ):
                    args_key = canonical_args(params)
                    if args_key is not None:
                        key = (method, args_key)
                else:
                    # A sub-call without a read policy may mutate state:
                    # earlier read results are no longer reusable.
                    seen.clear()
            first_index = seen.get(key) if key is not None else None
            if first_index is not None and out[first_index].ok:
                cache.note_coalesced(method)
                host.stats.record(method, True, served_from="coalesced")
                out.append(MulticallResult(
                    ok=True, result=out[first_index].result,
                    trace_id=ctx.trace_id,
                ))
                continue
            try:
                result = host.invoke_in_context(ctx, method, params)
                out.append(MulticallResult(
                    ok=True, result=result, trace_id=ctx.trace_id
                ))
                if key is not None:
                    seen[key] = len(out) - 1
            except ClarensFault as exc:
                out.append(MulticallResult(
                    ok=False, code=exc.code, error=exc.message,
                    trace_id=ctx.trace_id,
                ))
        return out


class ClarensHost:
    """An in-process Clarens service host.

    Parameters
    ----------
    name:
        Host name (used by discovery).
    time_source:
        Clock for session expiry; defaults to wall time, the GAE wiring
        passes the simulator clock.
    users / acl:
        Authentication database and access rules; fresh empty ones are
        created when omitted.  The default ACL denies everything except
        methods marked ``anonymous``.
    """

    def __init__(
        self,
        name: str = "clarens",
        time_source: Callable[[], float] = time.time,
        users: Optional[UserDatabase] = None,
        acl: Optional[AccessControlList] = None,
        session_lifetime_s: float = 3600.0,
        trace_capacity: int = 256,
        read_cache_capacity: int = 4096,
        read_cache_enabled: bool = True,
    ) -> None:
        self.name = name
        self.registry = ServiceRegistry()
        self.users = users if users is not None else UserDatabase()
        self.time_source = time_source
        self.auth = AuthService(self.users, time_source, session_lifetime_s)
        self.acl = acl if acl is not None else AccessControlList(default_allow=False)
        self.stats = CallStats()
        self.traces = TraceLog(capacity=trace_capacity)
        #: Epoch counters every mutating subsystem bumps (``wire_epochs``).
        self.epochs = EpochRegistry()
        #: The epoch-keyed result cache behind ``ReadCacheMiddleware``,
        #: multicall coalescing, and the webui's memoized hot pages.
        self.read_cache = ReadCache(
            self.epochs, capacity=read_cache_capacity, enabled=read_cache_enabled
        )
        #: The GAE's :class:`~repro.observability.instrument.GAEInstrumentation`
        #: when wired (``build_gae`` sets it); ``system.observability`` reads it.
        self.observability = None
        #: Async front-end worker pools by label
        #: (:class:`~repro.clarens.telemetry.WorkerPoolStats`); the aio
        #: server registers at start, ``system.stats`` merges the
        #: snapshots under ``worker_pools``.
        self.worker_pools: Dict[str, Any] = {}
        self._user_middlewares: List[Middleware] = []
        self._pipeline = self._build_pipeline()
        self.registry.register(
            "system", _SystemService(self), description="built-in host introspection"
        )

    # ------------------------------------------------------------------
    # pipeline assembly
    # ------------------------------------------------------------------
    def _build_pipeline(self) -> Callable[[CallContext], Any]:
        chain: List[Middleware] = [
            TracingMiddleware(self.traces),
            MetricsMiddleware(self.stats),
            AuthenticationMiddleware(self.auth),
            AclMiddleware(self.registry, self.acl),
            ReadCacheMiddleware(self.read_cache),
            *self._user_middlewares,
        ]
        return build_pipeline(chain, self._invoke)

    def add_middleware(self, middleware: Middleware) -> Middleware:
        """Append *middleware* to the pipeline (innermost position).

        User middlewares run after the built-in tracing/metrics/auth/ACL
        chain — the context reaches them with the principal resolved and
        the method entry cached — and before the terminal invoker.
        Returns *middleware* so the call can be used as a decorator.
        """
        self._user_middlewares.append(middleware)
        self._pipeline = self._build_pipeline()
        return middleware

    @property
    def middlewares(self) -> Tuple[Middleware, ...]:
        """The user middlewares currently installed, in call order."""
        return tuple(self._user_middlewares)

    def _invoke(self, ctx: CallContext) -> Any:
        """Terminal pipeline stage: resolve, call the method, marshal."""
        entry = ctx.entry
        if entry is None:
            entry = ctx.entry = self.registry.resolve(ctx.method_path)
        try:
            if entry.pass_context:
                result = entry.func(ctx, *ctx.params)
            elif entry.pass_principal:
                result = entry.func(ctx.principal, *ctx.params)
            else:
                result = entry.func(*ctx.params)
        except ClarensFault:
            raise
        except Exception as exc:
            raise RemoteFault(f"{type(exc).__name__}: {exc}") from exc
        return to_wire(result)

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        instance: Any,
        methods: Optional[List[str]] = None,
        description: str = "",
    ) -> None:
        """Register a service instance under *name*."""
        self.registry.register(name, instance, methods=methods, description=description)

    def dispatch(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
        transport: str = "inproc",
        collect: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Execute one call through the middleware pipeline.

        A fresh trace id is minted when the caller supplies none.  Raises
        the :class:`ClarensFault` subclasses on any failure; an application
        exception inside the method surfaces as :class:`RemoteFault`
        carrying the original message.

        *collect*, when given, receives ``trace_id``, ``outcome`` and
        ``served_from`` from the finished context (filled even when the
        call faults) — how the async front end annotates its stage spans
        without re-parsing the reply.
        """
        ctx = CallContext(
            method_path=method_path,
            params=list(params),
            token=token,
            trace_id=trace_id or new_trace_id(),
            transport=transport,
            started=self.time_source(),
        )
        try:
            return self._pipeline(ctx)
        finally:
            if collect is not None:
                collect["trace_id"] = ctx.trace_id
                collect["outcome"] = ctx.outcome
                collect["served_from"] = ctx.served_from

    def invoke_as(
        self, principal: Principal, method_path: str, params: Sequence[Any]
    ) -> Any:
        """Execute a call for an already-authenticated principal.

        The call still flows through the full pipeline (so it is traced
        and counted); the authentication middleware simply skips token
        validation because the principal is pre-bound.
        """
        ctx = CallContext(
            method_path=method_path,
            params=list(params),
            trace_id=new_trace_id(),
            principal=principal,
            started=self.time_source(),
        )
        return self._pipeline(ctx)

    def invoke_in_context(
        self, parent: CallContext, method_path: str, params: Sequence[Any]
    ) -> Any:
        """Execute a sub-call sharing *parent*'s trace id and principal.

        How ``system.multicall`` fans one authentication and one trace id
        out over a whole batch: every sub-call runs the full pipeline, so
        each is individually traced and counted under the shared trace.
        """
        ctx = CallContext(
            method_path=method_path,
            params=list(params),
            token=parent.token,
            trace_id=parent.trace_id,
            transport=parent.transport,
            principal=parent.principal,
            started=self.time_source(),
        )
        return self._pipeline(ctx)

    def principal_of(self, token: str) -> Principal:
        """Resolve a token to its principal (ANONYMOUS for the empty token)."""
        return self.auth.validate(token)


# ----------------------------------------------------------------------
# Real XML-RPC front end (Figure 6's measurement target)
# ----------------------------------------------------------------------
class _Handler(SimpleXMLRPCRequestHandler):
    rpc_paths = ("/RPC2",)
    # Keep-alive: each client reuses one TCP connection across calls, as a
    # real 2005 Clarens deployment would; without it, 100 clients reconnect
    # per request and overflow the listen backlog.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep benchmark output clean


class _ThreadedXmlRpcServer(ThreadingMixIn, SimpleXMLRPCServer):
    daemon_threads = True
    allow_reuse_address = True
    # Sized for the Figure 6 experiment's 100 simultaneous clients.
    request_queue_size = 256


class _WireDispatcher:
    """Adapts ClarensHost.dispatch to the xmlrpc server's _dispatch hook."""

    def __init__(self, host: ClarensHost) -> None:
        self._host = host

    def _dispatch(self, method: str, params: Tuple[Any, ...]) -> Any:
        if not params:
            raise Fault(400, "missing session token parameter")
        wire_token, args = params[0], params[1:]
        if not isinstance(wire_token, str):
            raise Fault(400, "session token must be a string")
        token, trace_id = decode_trace_token(wire_token)
        try:
            return self._host.dispatch(
                method, list(args), token=token,
                trace_id=trace_id or "", transport="xmlrpc",
            )
        except ClarensFault as exc:
            raise Fault(exc.code, exc.message) from exc


class XmlRpcServerHandle:
    """A running threaded XML-RPC server fronting a :class:`ClarensHost`.

    Use as a context manager::

        with XmlRpcServerHandle(host) as handle:
            transport = SocketTransport(handle.url)
            ...

    The port defaults to 0 (ephemeral); read :attr:`url` after start.
    """

    def __init__(self, host: ClarensHost, bind: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._server = _ThreadedXmlRpcServer(
            (bind, port), requestHandler=_Handler, allow_none=True, logRequests=False
        )
        self._server.register_instance(_WireDispatcher(host))
        self._thread = threading.Thread(
            target=self._server.serve_forever, name=f"clarens-{host.name}", daemon=True
        )
        self._started = False

    def start(self) -> "XmlRpcServerHandle":
        """Begin serving in a background thread."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the server is bound to."""
        return self._server.server_address  # type: ignore[return-value]

    @property
    def url(self) -> str:
        """The server's XML-RPC endpoint URL."""
        bind, port = self.address
        return f"http://{bind}:{port}/RPC2"

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        if self._started:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._started = False
        self._server.server_close()

    def __enter__(self) -> "XmlRpcServerHandle":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
