"""The Clarens host: dispatch, system services, and the XML-RPC front end.

:class:`ClarensHost` is the in-process core every GAE service registers
with.  A call travels: token validation (:mod:`repro.clarens.auth`) → ACL
check (:mod:`repro.clarens.acl`) → method invocation → wire marshalling
(:mod:`repro.clarens.serialization`).

:class:`XmlRpcServerHandle` mounts a host on a real threaded HTTP XML-RPC
server (stdlib ``xmlrpc.server``), the stand-in for the Windows-XP JClarens
server of §7's performance study.  The wire protocol puts the session token
first in every parameter list: ``service.method(token, *args)``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from socketserver import ThreadingMixIn
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from xmlrpc.client import Fault
from xmlrpc.server import SimpleXMLRPCRequestHandler, SimpleXMLRPCServer

from repro.clarens.acl import AccessControlList
from repro.clarens.auth import ANONYMOUS, AuthService, Principal, UserDatabase
from repro.clarens.errors import (
    AuthenticationError,
    AuthorizationError,
    ClarensFault,
    RemoteFault,
)
from repro.clarens.registry import ServiceRegistry, clarens_method
from repro.clarens.serialization import to_wire


@dataclass
class CallStats:
    """Aggregate call statistics, mostly for the performance benchmarks."""

    calls: int = 0
    faults: int = 0
    per_method: Dict[str, int] = field(default_factory=dict)

    def record(self, method_path: str, ok: bool) -> None:
        self.calls += 1
        if not ok:
            self.faults += 1
        self.per_method[method_path] = self.per_method.get(method_path, 0) + 1


class _SystemService:
    """The built-in ``system`` service every host exposes."""

    def __init__(self, host: "ClarensHost") -> None:
        self._host = host

    @clarens_method(anonymous=True)
    def ping(self) -> str:
        """Liveness check."""
        return "pong"

    @clarens_method(anonymous=True)
    def login(self, user: str, password: str) -> str:
        """Authenticate; returns a session token for subsequent calls."""
        return self._host.auth.login(user, password)

    @clarens_method(anonymous=True)
    def logout(self, token: str) -> bool:
        """Revoke a session token."""
        self._host.auth.logout(token)
        return True

    @clarens_method(anonymous=True)
    def list_services(self) -> List[str]:
        """Names of every service hosted here."""
        return self._host.registry.names()

    @clarens_method(anonymous=True)
    def list_methods(self, service: str) -> List[str]:
        """Exposed method names of one service."""
        return sorted(self._host.registry.service(service).methods)

    @clarens_method(anonymous=True)
    def method_help(self, method_path: str) -> str:
        """Docstring of a ``service.method`` path."""
        return self._host.registry.resolve(method_path).doc

    @clarens_method(anonymous=True)
    def host_name(self) -> str:
        """This host's name."""
        return self._host.name

    @clarens_method(anonymous=True)
    def stats(self) -> Dict[str, Any]:
        """Aggregate call statistics for this host."""
        s = self._host.stats
        return {
            "calls": s.calls,
            "faults": s.faults,
            "per_method": dict(s.per_method),
        }

    @clarens_method(anonymous=True, pass_principal=True)
    def multicall(self, principal: Principal, calls: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Execute several calls in one round trip (XML-RPC multicall).

        Each entry is ``{"methodName": "service.method", "params": [...]}``.
        The caller's token authenticates every sub-call; each result arrives
        as ``{"ok": true, "result": ...}`` or ``{"ok": false, "code": ...,
        "error": "..."}`` so one failure cannot poison the batch.  Nested
        multicalls are rejected.
        """
        out: List[Dict[str, Any]] = []
        for call in calls:
            method = str(call.get("methodName", ""))
            params = list(call.get("params", []))
            if method == "system.multicall":
                out.append({"ok": False, "code": 400,
                            "error": "nested multicall is not allowed"})
                continue
            try:
                result = self._host.invoke_as(principal, method, params)
                out.append({"ok": True, "result": result})
            except ClarensFault as exc:
                out.append({"ok": False, "code": exc.code, "error": exc.message})
        return out


class ClarensHost:
    """An in-process Clarens service host.

    Parameters
    ----------
    name:
        Host name (used by discovery).
    time_source:
        Clock for session expiry; defaults to wall time, the GAE wiring
        passes the simulator clock.
    users / acl:
        Authentication database and access rules; fresh empty ones are
        created when omitted.  The default ACL denies everything except
        methods marked ``anonymous``.
    """

    def __init__(
        self,
        name: str = "clarens",
        time_source: Callable[[], float] = time.time,
        users: Optional[UserDatabase] = None,
        acl: Optional[AccessControlList] = None,
        session_lifetime_s: float = 3600.0,
    ) -> None:
        self.name = name
        self.registry = ServiceRegistry()
        self.users = users if users is not None else UserDatabase()
        self.auth = AuthService(self.users, time_source, session_lifetime_s)
        self.acl = acl if acl is not None else AccessControlList(default_allow=False)
        self.stats = CallStats()
        self.registry.register(
            "system", _SystemService(self), description="built-in host introspection"
        )

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        instance: Any,
        methods: Optional[List[str]] = None,
        description: str = "",
    ) -> None:
        """Register a service instance under *name*."""
        self.registry.register(name, instance, methods=methods, description=description)

    def dispatch(self, method_path: str, params: Sequence[Any], token: str = "") -> Any:
        """Execute one call: auth → ACL → invoke → marshal.

        Raises the :class:`ClarensFault` subclasses on any failure; an
        application exception inside the method surfaces as
        :class:`RemoteFault` carrying the original message.
        """
        principal = self.auth.validate(token)
        return self.invoke_as(principal, method_path, params)

    def invoke_as(
        self, principal: Principal, method_path: str, params: Sequence[Any]
    ) -> Any:
        """Execute a call for an already-authenticated principal.

        Used by ``system.multicall`` to fan one authentication out over a
        batch; everything after token validation is identical to
        :meth:`dispatch`.
        """
        entry = self.registry.resolve(method_path)
        if not entry.anonymous:
            if principal.is_anonymous:
                self.stats.record(method_path, ok=False)
                raise AuthenticationError(f"{method_path} requires a session token")
            if not self.acl.check(principal, method_path):
                self.stats.record(method_path, ok=False)
                raise AuthorizationError(
                    f"user {principal.user!r} may not call {method_path}"
                )
        try:
            if entry.pass_principal:
                result = entry.func(principal, *params)
            else:
                result = entry.func(*params)
        except ClarensFault:
            self.stats.record(method_path, ok=False)
            raise
        except Exception as exc:
            self.stats.record(method_path, ok=False)
            raise RemoteFault(f"{type(exc).__name__}: {exc}") from exc
        self.stats.record(method_path, ok=True)
        return to_wire(result)

    def principal_of(self, token: str) -> Principal:
        """Resolve a token to its principal (ANONYMOUS for the empty token)."""
        return self.auth.validate(token)


# ----------------------------------------------------------------------
# Real XML-RPC front end (Figure 6's measurement target)
# ----------------------------------------------------------------------
class _Handler(SimpleXMLRPCRequestHandler):
    rpc_paths = ("/RPC2",)
    # Keep-alive: each client reuses one TCP connection across calls, as a
    # real 2005 Clarens deployment would; without it, 100 clients reconnect
    # per request and overflow the listen backlog.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep benchmark output clean


class _ThreadedXmlRpcServer(ThreadingMixIn, SimpleXMLRPCServer):
    daemon_threads = True
    allow_reuse_address = True
    # Sized for the Figure 6 experiment's 100 simultaneous clients.
    request_queue_size = 256


class _WireDispatcher:
    """Adapts ClarensHost.dispatch to the xmlrpc server's _dispatch hook."""

    def __init__(self, host: ClarensHost) -> None:
        self._host = host

    def _dispatch(self, method: str, params: Tuple[Any, ...]) -> Any:
        if not params:
            raise Fault(400, "missing session token parameter")
        token, args = params[0], params[1:]
        if not isinstance(token, str):
            raise Fault(400, "session token must be a string")
        try:
            return self._host.dispatch(method, list(args), token=token)
        except ClarensFault as exc:
            raise Fault(exc.code, exc.message) from exc


class XmlRpcServerHandle:
    """A running threaded XML-RPC server fronting a :class:`ClarensHost`.

    Use as a context manager::

        with XmlRpcServerHandle(host) as handle:
            transport = XmlRpcTransport(handle.url)
            ...

    The port defaults to 0 (ephemeral); read :attr:`url` after start.
    """

    def __init__(self, host: ClarensHost, bind: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._server = _ThreadedXmlRpcServer(
            (bind, port), requestHandler=_Handler, allow_none=True, logRequests=False
        )
        self._server.register_instance(_WireDispatcher(host))
        self._thread = threading.Thread(
            target=self._server.serve_forever, name=f"clarens-{host.name}", daemon=True
        )
        self._started = False

    def start(self) -> "XmlRpcServerHandle":
        """Begin serving in a background thread."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the server is bound to."""
        return self._server.server_address  # type: ignore[return-value]

    @property
    def url(self) -> str:
        """The server's XML-RPC endpoint URL."""
        bind, port = self.address
        return f"http://{bind}:{port}/RPC2"

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        if self._started:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._started = False
        self._server.server_close()

    def __enter__(self) -> "XmlRpcServerHandle":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
