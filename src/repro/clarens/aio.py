"""The asyncio Clarens front end: framed, pipelined, codec-negotiated.

:class:`AsyncSocketServerHandle` is the high-concurrency replacement for
the thread-per-connection XML-RPC server
(:class:`~repro.clarens.server.XmlRpcServerHandle`).  One asyncio event
loop (running in a background thread, like the threaded handle it
replaces) owns every connection: persistent framed sockets
(:mod:`repro.clarens.framing`), per-connection codec negotiation
(:mod:`repro.clarens.codecs`), and request pipelining — a client may have
hundreds of calls in flight on one connection, bounded by a
per-connection semaphore instead of one OS thread per concurrent call.

The host stays synchronous: a bounded **worker pool** bridges async I/O
into the thread-safe :class:`~repro.clarens.server.ClarensHost`, so the
whole middleware pipeline (tracing → metrics → auth → ACL → read cache)
is reused unchanged and answers are wire-identical to every other
transport.  The bridge drains requests in batches — decode, dispatch and
encode all happen on the worker thread, and each batch wakes the event
loop **once** with the concatenated reply frames — which is what keeps
per-call loop overhead to a frame header parse.

Server-side call sequence::

    loop:    read CALL frame ──► inflight.acquire ──► queue
    worker:  decode(codec) ──► host.dispatch ──► encode(codec) ─┐
    loop:    ◄── one call_soon_threadsafe per batch: write frames

Use exactly like the threaded handle::

    with AsyncSocketServerHandle(host) as handle:
        transport = AsyncSocketTransport(handle.address, codec="json")
        ...
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.clarens.codecs import Codec, codec_names, get_codec, negotiate
from repro.clarens.errors import ClarensFault, ProtocolError, TransportError
from repro.clarens.framing import (
    CALL,
    GOODBYE,
    HELLO,
    REPLY,
    WELCOME,
    encode_error,
    encode_frame,
    encode_hello,  # noqa: F401  (re-exported for symmetry in tests)
    encode_welcome,
    decode_hello,
    read_frame_async,
)
from repro.clarens.framing import ERROR as ERROR_FRAME
from repro.clarens.serialization import decode_trace_token
from repro.clarens.server import ClarensHost
from repro.clarens.telemetry import WorkerPoolStats


class _Connection:
    """Loop-side state for one negotiated client connection."""

    __slots__ = (
        "writer", "codec", "transport_label", "loop", "inflight", "closed",
        "stats",
    )

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        codec: Codec,
        loop: asyncio.AbstractEventLoop,
        max_inflight: int,
        stats: Optional[WorkerPoolStats] = None,
    ) -> None:
        self.writer = writer
        self.codec = codec
        #: Shows up as ``transport`` in trace records / ``system.stats``.
        self.transport_label = f"async+{codec.name}"
        self.loop = loop
        self.inflight = asyncio.Semaphore(max_inflight)
        self.closed = False
        self.stats = stats

    def post_replies(self, data: bytes, count: int) -> None:
        """Hand *count* concatenated reply frames to the event loop.

        Called from worker threads; one loop wake-up per batch.
        """
        try:
            self.loop.call_soon_threadsafe(self._write_replies, data, count)
        except RuntimeError:
            pass  # loop already closed (server shutdown mid-flight)

    def _write_replies(self, data: bytes, count: int) -> None:
        for _ in range(count):
            self.inflight.release()
        if not self.closed and not self.writer.is_closing():
            t0 = time.perf_counter()
            self.writer.write(data)
            if self.stats is not None:
                self.stats.record_stage(
                    "reply_flush", time.perf_counter() - t0
                )


class _WorkerBridge:
    """Bounded thread pool bridging framed requests into ``ClarensHost``.

    Workers drain the shared queue in batches (up to ``batch`` items) so
    the decode → dispatch → encode cost of a pipelined burst is paid
    without a loop wake-up per call.
    """

    def __init__(
        self,
        host: ClarensHost,
        workers: int,
        batch: int,
        stats: Optional[WorkerPoolStats] = None,
    ) -> None:
        self._host = host
        self._batch = max(1, batch)
        self._stats = stats
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"clarens-aio-worker-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, conn: _Connection, request_id: int, payload: bytes) -> None:
        if self._stats is not None:
            self._stats.on_submit()
        self._queue.put((conn, request_id, payload, time.perf_counter()))

    def stop(self) -> None:
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # -- worker side ----------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch: List[Tuple[_Connection, int, bytes, float]] = [item]
            while len(batch) < self._batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    self._queue.put(None)  # re-post for a sibling worker
                    break
                batch.append(extra)
            stats = self._stats
            if stats is not None:
                stats.on_batch(len(batch))
            replies: Dict[_Connection, List[bytes]] = {}
            for conn, request_id, payload, enqueued in batch:
                if stats is not None:
                    stats.on_start(time.perf_counter() - enqueued)
                replies.setdefault(conn, []).append(
                    self._execute(conn.codec, conn.transport_label, request_id, payload)
                )
                if stats is not None:
                    stats.on_complete()
            for conn, frames in replies.items():
                conn.post_replies(b"".join(frames), len(frames))

    def _execute(
        self, codec: Codec, label: str, request_id: int, payload: bytes
    ) -> bytes:
        stats = self._stats
        clk = time.perf_counter
        method = ""
        collect: Dict[str, Any] = {}
        decode_s = dispatch_s = encode_s = 0.0
        outcome = "error"
        try:
            t0 = clk()
            method, wire_token, params = codec.decode_request(payload)
            token, trace_id = decode_trace_token(wire_token)
            decode_s = clk() - t0
            t0 = clk()
            try:
                result = self._host.dispatch(
                    method,
                    params,
                    token=token,
                    trace_id=trace_id or "",
                    transport=label,
                    collect=collect,
                )
            finally:
                dispatch_s = clk() - t0
            t0 = clk()
            body = codec.encode_response(result)
            encode_s = clk() - t0
            outcome = "ok"
        except ClarensFault as exc:
            body = codec.encode_fault(exc.code, exc.message)
            outcome = "fault"
        except Exception as exc:  # encode failure etc.: never drop a reply
            body = codec.encode_fault(500, f"{type(exc).__name__}: {exc}")
        if stats is not None:
            stats.record_stage("decode", decode_s)
            if dispatch_s:
                stats.record_stage("dispatch", dispatch_s, ok=outcome == "ok")
            if encode_s:
                stats.record_stage("encode", encode_s)
        self._annotate(method, label, collect, decode_s, dispatch_s, encode_s, outcome)
        return encode_frame(REPLY, request_id, body)

    def _annotate(
        self,
        method: str,
        label: str,
        collect: Dict[str, Any],
        decode_s: float,
        dispatch_s: float,
        encode_s: float,
        outcome: str,
    ) -> None:
        """One ``aio.call`` instant span per dispatched call.

        Wall-clock stage costs (decode → dispatch → encode on the worker
        thread) ride as attributes on the *call's* trace, so a traced
        read shows where its time went server-side — including whether
        the reply was ``served_from`` the cache instead of executed.
        """
        obs = self._host.observability
        trace_id = collect.get("trace_id")
        if obs is None or not trace_id:
            return
        obs.tracer.instant(
            f"aio:{method}" if method else "aio:<undecodable>",
            trace_id=trace_id,
            attributes={
                "transport": label,
                "decode_ms": decode_s * 1000.0,
                "dispatch_ms": dispatch_s * 1000.0,
                "encode_ms": encode_s * 1000.0,
                "served_from": collect.get("served_from", "execute"),
                "outcome": collect.get("outcome", outcome),
            },
            status="ok" if outcome == "ok" else "error",
        )


class AsyncSocketServerHandle:
    """A running asyncio framed-protocol server fronting a ``ClarensHost``.

    Parameters
    ----------
    host:
        The (thread-safe) host to dispatch into.
    bind / port:
        Listen address; port 0 (default) picks an ephemeral port — read
        :attr:`address` after :meth:`start`.
    workers:
        Worker-pool threads bridging into the host.  More than a few
        buys nothing under the GIL; the default suits CPU-light reads.
    codecs:
        Codec names this server accepts (default: every registered one).
    max_inflight:
        Per-connection pipelining bound: CALL frames admitted but not
        yet answered.  Backpressure, not an error — the server simply
        stops reading that connection until replies drain.
    dispatch_batch:
        Max requests a worker drains per queue wake-up.
    """

    def __init__(
        self,
        host: ClarensHost,
        bind: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        codecs: Optional[Sequence[str]] = None,
        max_inflight: int = 256,
        dispatch_batch: int = 64,
    ) -> None:
        self.host = host
        self._bind = bind
        self._port = port
        self._workers = workers
        self.codecs: Tuple[str, ...] = tuple(codecs or codec_names())
        for name in self.codecs:
            get_codec(name)  # fail fast on unknown names
        self._max_inflight = max_inflight
        self._dispatch_batch = dispatch_batch
        #: Queue-depth and stage-latency telemetry for this server's
        #: worker pool; registered on the host as ``async:<port>`` at
        #: :meth:`start` so ``system.stats`` / ``/metrics`` surface it.
        self.pool_stats = WorkerPoolStats()
        self._started = False
        self._address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._bridge: Optional[_WorkerBridge] = None
        self._conns: Set[_Connection] = set()
        self._conn_tasks: "Set[asyncio.Task]" = set()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncSocketServerHandle":
        """Begin serving in a background thread (idempotent)."""
        if self._started:
            return self
        ready = threading.Event()
        self._bridge = _WorkerBridge(
            self.host, self._workers, self._dispatch_batch, self.pool_stats
        )
        self._thread = threading.Thread(
            target=self._serve,
            args=(ready,),
            name=f"clarens-aio-{self.host.name}",
            daemon=True,
        )
        self._thread.start()
        ready.wait()
        if self._startup_error is not None:
            self._bridge.stop()
            self._thread.join(timeout=5.0)
            raise TransportError(
                f"async server failed to start: {self._startup_error}"
            ) from self._startup_error
        self._started = True
        if self._address is not None:
            self.host.worker_pools[f"async:{self._address[1]}"] = self.pool_stats
        return self

    def shutdown(self) -> None:
        """Stop serving, close connections, join every thread (idempotent)."""
        if self._started:
            loop, stop = self._loop, self._stop_event
            if loop is not None and stop is not None:
                try:
                    loop.call_soon_threadsafe(stop.set)
                except RuntimeError:
                    pass
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            self._started = False
        if self._bridge is not None:
            self._bridge.stop()
            self._bridge = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is bound to."""
        if self._address is None:
            raise TransportError("async server is not started")
        return self._address

    @property
    def url(self) -> str:
        """The server's endpoint as a ``clarens://`` URL."""
        bind, port = self.address
        return f"clarens://{bind}:{port}"

    def __enter__(self) -> "AsyncSocketServerHandle":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # loop side
    # ------------------------------------------------------------------
    def _serve(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve_async(ready))
        except BaseException as exc:  # pragma: no cover - defensive
            if self._startup_error is None:
                self._startup_error = exc
            ready.set()
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve_async(self, ready: threading.Event) -> None:
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connection, self._bind, self._port
            )
        except OSError as exc:
            self._startup_error = exc
            ready.set()
            return
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        ready.set()
        await self._stop_event.wait()
        server.close()
        await server.wait_closed()
        for conn in list(self._conns):
            conn.closed = True
            conn.writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._session(reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # -- handshake --------------------------------------------------
        try:
            frame_type, hello_id, payload = await read_frame_async(reader)
            if frame_type != HELLO:
                raise ProtocolError(
                    f"expected HELLO, got frame type {frame_type}"
                )
            _, preferences = decode_hello(payload)
            codec_name = negotiate(preferences, self.codecs)
        except ProtocolError as exc:
            writer.write(
                encode_frame(ERROR_FRAME, 0, encode_error(exc.code, exc.message))
            )
            return
        except (TransportError, asyncio.IncompleteReadError, OSError):
            return  # peer vanished before negotiating; nothing to answer
        writer.write(
            encode_frame(
                WELCOME,
                hello_id,
                encode_welcome(codec_name, self.host.name),
            )
        )
        conn = _Connection(
            writer, get_codec(codec_name), asyncio.get_event_loop(),
            self._max_inflight, self.pool_stats,
        )
        self._conns.add(conn)
        bridge = self._bridge
        # -- framed call loop -------------------------------------------
        try:
            while not conn.closed:
                try:
                    frame_type, request_id, payload = await read_frame_async(
                        reader
                    )
                except (
                    asyncio.IncompleteReadError,
                    TransportError,
                    OSError,
                ):
                    break  # disconnect (orderly between frames or not)
                except ProtocolError as exc:
                    writer.write(
                        encode_frame(
                            ERROR_FRAME, 0, encode_error(exc.code, exc.message)
                        )
                    )
                    break
                if frame_type == GOODBYE:
                    break
                if frame_type != CALL:
                    writer.write(
                        encode_frame(
                            ERROR_FRAME,
                            request_id,
                            encode_error(
                                400, f"unexpected frame type {frame_type}"
                            ),
                        )
                    )
                    break
                # Pipelining backpressure: stop reading this connection
                # while ``max_inflight`` calls are unanswered.
                await conn.inflight.acquire()
                if bridge is not None:
                    bridge.submit(conn, request_id, payload)
        finally:
            conn.closed = True
            self._conns.discard(conn)


__all__ = ["AsyncSocketServerHandle"]
