"""Client-side convenience layer: sessions and service proxies.

>>> client = ClarensClient(InProcessTransport(host))   # doctest: +SKIP
>>> client.login("alice", "secret")                    # doctest: +SKIP
>>> steering = client.service("steering")              # doctest: +SKIP
>>> steering.list_jobs()                               # doctest: +SKIP

A :class:`ServiceProxy` turns attribute access into remote calls, carrying
the client's session token automatically.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.clarens.transport import Transport


class ClarensClient:
    """A session-holding client over any :class:`Transport`."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.token: str = ""

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def login(self, user: str, password: str) -> str:
        """Authenticate; stores and returns the session token."""
        self.token = self.transport.call("system.login", [user, password])
        return self.token

    def logout(self) -> None:
        """Revoke the current session (no-op when not logged in)."""
        if self.token:
            self.transport.call("system.logout", [self.token])
            self.token = ""

    @property
    def logged_in(self) -> bool:
        """Whether the client holds a session token."""
        return bool(self.token)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call(self, method_path: str, *args: Any) -> Any:
        """Invoke ``service.method`` with the stored token."""
        return self.transport.call(method_path, list(args), token=self.token)

    def batch(self, calls: List[tuple]) -> List[Any]:
        """Execute several calls in one round trip via ``system.multicall``.

        *calls* is a list of ``(method_path, *args)`` tuples.  Returns the
        results in order; a failed sub-call surfaces as the matching
        :class:`~repro.clarens.errors.ClarensFault` when its result is
        accessed — here, eagerly re-raised for the first failure unless
        ``strict=False`` semantics are needed (use :meth:`batch_detailed`).
        """
        detailed = self.batch_detailed(calls)
        out = []
        for entry in detailed:
            if not entry["ok"]:
                from repro.clarens.errors import fault_from_code

                raise fault_from_code(int(entry["code"]), str(entry["error"]))
            out.append(entry["result"])
        return out

    def batch_detailed(self, calls: List[tuple]) -> List[Any]:
        """Like :meth:`batch` but returns the raw per-call result structs
        (``{"ok": ..., "result"|"code"/"error": ...}``) without raising."""
        payload = [
            {"methodName": c[0], "params": list(c[1:])} for c in calls
        ]
        return self.call("system.multicall", payload)

    def service(self, name: str) -> "ServiceProxy":
        """A proxy whose attributes are the service's remote methods."""
        return ServiceProxy(self, name)

    # ------------------------------------------------------------------
    # discovery helpers
    # ------------------------------------------------------------------
    def list_services(self) -> List[str]:
        """Names of services on the connected host."""
        return self.call("system.list_services")

    def list_methods(self, service: str) -> List[str]:
        """Exposed methods of one service on the connected host."""
        return self.call("system.list_methods", service)

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return self.call("system.ping") == "pong"


class ServiceProxy:
    """Attribute-access facade for one remote service."""

    def __init__(self, client: ClarensClient, service_name: str) -> None:
        self._client = client
        self._service_name = service_name

    def __getattr__(self, method_name: str) -> Callable[..., Any]:
        if method_name.startswith("_"):
            raise AttributeError(method_name)

        def remote(*args: Any) -> Any:
            return self._client.call(f"{self._service_name}.{method_name}", *args)

        remote.__name__ = method_name
        return remote

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServiceProxy({self._service_name!r})"
