"""Client-side convenience layer: sessions and service proxies.

>>> client = ClarensClient(host)                       # doctest: +SKIP
>>> client.login("alice", "secret")                    # doctest: +SKIP
>>> steering = client.service("steering")              # doctest: +SKIP
>>> steering.list_jobs()                               # doctest: +SKIP

A :class:`ServiceProxy` turns attribute access into remote calls, carrying
the client's session token automatically.

The constructor accepts a ready transport, a host (wrapped in a
:class:`~repro.clarens.transport.LoopbackTransport`), or an endpoint
string — ``http://...`` for the threaded XML-RPC server, ``clarens://``
for the framed async server, where ``codec=`` states the wire-codec
preference::

    with ClarensClient("clarens://127.0.0.1:8123", codec="json") as client:
        client.login("alice", "secret")
        ...

Clients are context managers — leaving the ``with`` block logs out and
closes the transport.

Every call carries the client's current :attr:`~ClarensClient.trace_id`
(empty by default — the host then mints one per call); set one with
:meth:`~ClarensClient.new_trace` to correlate a sequence of calls in the
host's ``system.recent_calls`` ring.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Union

from repro.clarens.errors import ClarensFault, fault_from_code
from repro.clarens.readcache import canonical_args
from repro.clarens.serialization import MulticallResult
from repro.clarens.server import ClarensHost
from repro.clarens.telemetry import new_trace_id
from repro.clarens.transport import (
    AsyncSocketTransport,
    LoopbackTransport,
    SocketTransport,
    Transport,
)


def resolve_transport(
    target: Union[Transport, ClarensHost, str],
    codec: Union[str, Sequence[str], None] = None,
) -> Transport:
    """Turn a transport spec into a :class:`Transport`.

    - a :class:`Transport` is returned as-is (*codec* must be ``None`` —
      a constructed transport already fixed its codec);
    - a :class:`~repro.clarens.server.ClarensHost` becomes a
      :class:`~repro.clarens.transport.LoopbackTransport`;
    - an ``http(s)://`` URL becomes a
      :class:`~repro.clarens.transport.SocketTransport` (XML-RPC only);
    - a ``clarens://host:port`` URL (or bare ``host:port``) becomes an
      :class:`~repro.clarens.transport.AsyncSocketTransport`, the only
      spec where *codec* applies.
    """
    if isinstance(target, Transport):
        if codec is not None:
            raise ValueError(
                "codec= cannot be combined with an already-built transport"
            )
        return target
    if isinstance(target, ClarensHost):
        if codec is not None:
            raise ValueError("codec= does not apply to a loopback transport")
        return LoopbackTransport(target)
    spec = str(target)
    if spec.startswith(("http://", "https://")):
        if codec not in (None, "xmlrpc"):
            raise ValueError(
                f"the HTTP transport only speaks xmlrpc, not {codec!r}"
            )
        return SocketTransport(spec)
    return AsyncSocketTransport(spec, codec=codec)


class ClarensClient:
    """A session-holding client over any :class:`Transport`.

    *transport* is anything :func:`resolve_transport` accepts; *codec*
    is forwarded to it (only meaningful for ``clarens://`` endpoints).
    """

    def __init__(
        self,
        transport: Union[Transport, ClarensHost, str],
        codec: Union[str, Sequence[str], None] = None,
    ) -> None:
        self.transport = resolve_transport(transport, codec)
        self.token: str = ""
        #: Trace id sent with every call ("" lets the host mint one each).
        self.trace_id: str = ""

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def login(self, user: str, password: str) -> str:
        """Authenticate; stores and returns the session token."""
        self.token = self.transport.call("system.login", [user, password])
        return self.token

    def logout(self) -> None:
        """Revoke the current session (no-op when not logged in)."""
        if self.token:
            self.transport.call("system.logout", [self.token])
            self.token = ""

    @property
    def logged_in(self) -> bool:
        """Whether the client holds a session token."""
        return bool(self.token)

    def close(self) -> None:
        """Log out (best effort) and close the transport.  Idempotent."""
        try:
            self.logout()
        except ClarensFault:
            self.token = ""  # server unreachable or session already dead
        finally:
            self.transport.close()

    def __enter__(self) -> "ClarensClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def new_trace(self, trace_id: Optional[str] = None) -> str:
        """Start a client-issued trace; subsequent calls carry the id.

        Returns the id (a fresh one when *trace_id* is omitted).  Clear
        with ``client.trace_id = ""`` to let the host mint per-call ids
        again.
        """
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        return self.trace_id

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call(self, method_path: str, *args: Any) -> Any:
        """Invoke ``service.method`` with the stored token and trace id."""
        return self.transport.call(
            method_path, list(args), token=self.token, trace_id=self.trace_id
        )

    def batch(self, calls: List[tuple]) -> List[Any]:
        """Execute several calls in one round trip via ``system.multicall``.

        *calls* is a list of ``(method_path, *args)`` tuples.  Returns the
        unwrapped results in order; the first failed sub-call is re-raised
        as its typed :class:`~repro.clarens.errors.ClarensFault`.  Use
        :meth:`batch_detailed` for fault-isolation semantics.
        """
        out = []
        for entry in self.batch_detailed(calls):
            if not entry.ok:
                raise fault_from_code(entry.code, entry.error)
            out.append(entry.result)
        return out

    def batch_detailed(self, calls: List[tuple]) -> List[MulticallResult]:
        """Like :meth:`batch` but never raises for sub-call failures.

        Returns one :class:`~repro.clarens.serialization.MulticallResult`
        per sub-call; each carries the batch's shared ``trace_id``.
        """
        payload = [
            {"methodName": c[0], "params": list(c[1:])} for c in calls
        ]
        return [MulticallResult.from_wire(r) for r in self.call("system.multicall", payload)]

    def batch_reads(self, calls: List[tuple]) -> List[MulticallResult]:
        """Batch **read-only** calls, deduplicating identical ones client-side.

        Like :meth:`batch_detailed`, but identical ``(method, args)``
        sub-calls are sent only once and the shared result is fanned back
        to every original position — the client-side half of request
        coalescing (the host's ``system.multicall`` additionally coalesces
        server-side).  Only use this for batches of read methods: the
        caller asserts that executing a duplicate would return the same
        answer, so a batch containing mutations must use :meth:`batch`.

        On a pipelining transport (``supports_pipelining``) the deduped
        batch is issued as overlapping framed calls under one shared trace
        id instead of a ``system.multicall`` round trip — each sub-call
        then passes the host pipeline (and read cache) individually, with
        the same fault-isolation semantics.
        """
        unique: List[tuple] = []
        index_of: dict = {}
        positions: List[int] = []
        for call in calls:
            key = (call[0], canonical_args(list(call[1:])))
            if key[1] is not None and key in index_of:
                positions.append(index_of[key])
                continue
            if key[1] is not None:
                index_of[key] = len(unique)
            positions.append(len(unique))
            unique.append(call)
        if self.transport.supports_pipelining:
            trace_id = self.trace_id or new_trace_id()
            outcomes = self.transport.call_pipelined(
                [(c[0], list(c[1:])) for c in unique],
                token=self.token,
                trace_id=trace_id,
            )
            results = [
                MulticallResult(ok=True, result=value, trace_id=trace_id)
                if ok
                else MulticallResult(
                    ok=False,
                    code=value.code,
                    error=value.message,
                    trace_id=trace_id,
                )
                for ok, value in outcomes
            ]
        else:
            results = self.batch_detailed(unique)
        return [results[i] for i in positions]

    def service(self, name: str) -> "ServiceProxy":
        """A proxy whose attributes are the service's remote methods."""
        return ServiceProxy(self, name)

    # ------------------------------------------------------------------
    # discovery helpers
    # ------------------------------------------------------------------
    def list_services(self) -> List[str]:
        """Names of services on the connected host."""
        return self.call("system.list_services")

    def list_methods(self, service: str) -> List[str]:
        """Exposed methods of one service on the connected host."""
        return self.call("system.list_methods", service)

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return self.call("system.ping") == "pong"


class ServiceProxy:
    """Attribute-access facade for one remote service."""

    def __init__(self, client: ClarensClient, service_name: str) -> None:
        self._client = client
        self._service_name = service_name

    def __getattr__(self, method_name: str) -> Callable[..., Any]:
        if method_name.startswith("_"):
            raise AttributeError(method_name)

        def remote(*args: Any) -> Any:
            return self._client.call(f"{self._service_name}.{method_name}", *args)

        remote.__name__ = method_name
        return remote

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServiceProxy({self._service_name!r})"
