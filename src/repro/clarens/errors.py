"""Fault hierarchy for the Clarens framework.

Every fault carries a numeric code so it can cross the XML-RPC wire as a
standard ``Fault`` and be rehydrated into the matching Python exception on
the client side (see :func:`fault_from_code`).
"""

from __future__ import annotations

from typing import Dict, Type


class ClarensFault(RuntimeError):
    """Base class for every framework-level error."""

    code: int = 500

    def __init__(self, message: str = "") -> None:
        super().__init__(message)
        self.message = message


class AuthenticationError(ClarensFault):
    """Missing, malformed, expired, or forged session token."""

    code = 401


class AuthorizationError(ClarensFault):
    """The authenticated principal may not call this method (ACL deny)."""

    code = 403


class ServiceNotFound(ClarensFault):
    """No service registered under the requested name."""

    code = 404


class MethodNotFound(ClarensFault):
    """The service exists but exposes no such method."""

    code = 405


class SerializationError(ClarensFault):
    """A value cannot be represented on the XML-RPC wire."""

    code = 406


class TransportError(ClarensFault):
    """The transport failed to reach the host (network-level error)."""

    code = 502


class TransportClosedError(TransportError):
    """The transport was closed while (or before) the call was in flight.

    Raised instead of hanging or surfacing a bare socket error when
    :meth:`~repro.clarens.transport.Transport.close` runs concurrently
    with pipelined calls — the structured "your connection is gone"
    signal pipelined clients retry or surface.
    """

    code = 503


class ProtocolError(ClarensFault):
    """The framed wire protocol was violated (bad frame, failed handshake)."""

    code = 400


class RemoteFault(ClarensFault):
    """An application exception raised inside a service method."""

    code = 520


_CODE_MAP: Dict[int, Type[ClarensFault]] = {
    cls.code: cls
    for cls in (
        AuthenticationError,
        AuthorizationError,
        ServiceNotFound,
        MethodNotFound,
        SerializationError,
        TransportError,
        TransportClosedError,
        ProtocolError,
        RemoteFault,
        ClarensFault,
    )
}


def fault_from_code(code: int, message: str) -> ClarensFault:
    """Rehydrate a wire fault into the matching exception class.

    Codes without a dedicated class (e.g. from a custom middleware fault)
    come back as a base :class:`ClarensFault` carrying the wire code.
    """
    cls = _CODE_MAP.get(code)
    if cls is not None:
        return cls(message)
    fault = ClarensFault(message)
    fault.code = code
    return fault
