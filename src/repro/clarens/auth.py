"""Authentication: users, login, and HMAC-signed session tokens.

The real Clarens authenticated clients with X.509 grid certificates.  We
substitute password login producing *signed session tokens* with the same
observable semantics: a client logs in once, presents the token on every
call, the server validates it statelessly (signature + expiry) and derives
the caller's identity and groups for ACL checks.

Tokens are ``user|expiry|nonce|hmac_sha256(secret, user|expiry|nonce)``.
Forging one requires the host secret; tampering with any field breaks the
signature.  Time is injected (``time_source``) so the simulator's clock can
drive expiry deterministically in tests.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import secrets as _secrets
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.clarens.errors import AuthenticationError


@dataclass(frozen=True)
class Principal:
    """An authenticated identity."""

    user: str
    groups: FrozenSet[str] = frozenset()

    @property
    def is_anonymous(self) -> bool:
        return self.user == ""

    def in_group(self, group: str) -> bool:
        """Whether the principal belongs to *group*."""
        return group in self.groups


ANONYMOUS = Principal(user="", groups=frozenset())


@dataclass
class _UserRecord:
    name: str
    password_hash: str
    salt: str
    groups: FrozenSet[str]


def _hash_password(password: str, salt: str) -> str:
    return hashlib.sha256((salt + password).encode("utf-8")).hexdigest()


class UserDatabase:
    """In-memory user store with salted password hashes."""

    def __init__(self) -> None:
        self._users: Dict[str, _UserRecord] = {}

    def add_user(self, name: str, password: str, groups: Tuple[str, ...] = ()) -> None:
        """Create a user; raises ValueError on duplicates or empty names."""
        if not name:
            raise ValueError("user name must be non-empty")
        if name in self._users:
            raise ValueError(f"user {name!r} already exists")
        salt = _secrets.token_hex(8)
        self._users[name] = _UserRecord(
            name=name,
            password_hash=_hash_password(password, salt),
            salt=salt,
            groups=frozenset(groups),
        )

    def verify(self, name: str, password: str) -> Principal:
        """Check credentials; returns the Principal or raises."""
        record = self._users.get(name)
        if record is None or not hmac.compare_digest(
            record.password_hash, _hash_password(password, record.salt)
        ):
            raise AuthenticationError(f"bad credentials for user {name!r}")
        return Principal(user=name, groups=record.groups)

    def principal(self, name: str) -> Principal:
        """The Principal for a known user (AuthenticationError if unknown)."""
        record = self._users.get(name)
        if record is None:
            raise AuthenticationError(f"unknown user {name!r}")
        return Principal(user=name, groups=record.groups)

    def users(self) -> Tuple[str, ...]:
        """All user names, sorted."""
        return tuple(sorted(self._users))

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def export_state(self) -> list:
        """Salted password hashes and groups, JSON-safe.

        Only hashes travel (never plaintext); session tokens are not
        exported — they are stateless and signed with a per-host secret,
        so clients simply log in again after a restore.
        """
        return [
            [r.name, r.password_hash, r.salt, sorted(r.groups)]
            for r in self._users.values()
        ]

    def import_state(self, state: list) -> None:
        """Replace the user table from :meth:`export_state` output."""
        self._users = {
            name: _UserRecord(
                name=name,
                password_hash=password_hash,
                salt=salt,
                groups=frozenset(groups),
            )
            for name, password_hash, salt, groups in state
        }


class AuthService:
    """Issues and validates session tokens for one Clarens host.

    Parameters
    ----------
    users:
        The user database to authenticate against.
    time_source:
        Zero-argument callable returning the current time in seconds; the
        GAE wiring passes the simulator clock so token expiry is
        deterministic.
    session_lifetime_s:
        How long an issued token stays valid.
    secret:
        Host signing secret; generated when omitted.
    """

    def __init__(
        self,
        users: UserDatabase,
        time_source: Callable[[], float],
        session_lifetime_s: float = 3600.0,
        secret: Optional[bytes] = None,
    ) -> None:
        if session_lifetime_s <= 0:
            raise ValueError("session lifetime must be positive")
        self.users = users
        self.time_source = time_source
        self.session_lifetime_s = session_lifetime_s
        self._secret = secret if secret is not None else _secrets.token_bytes(32)
        self._nonce = itertools.count(1)
        self._revoked: set = set()

    # ------------------------------------------------------------------
    def _sign(self, payload: str) -> str:
        return hmac.new(self._secret, payload.encode("utf-8"), hashlib.sha256).hexdigest()

    def login(self, user: str, password: str) -> str:
        """Authenticate and return a session token."""
        principal = self.users.verify(user, password)
        expiry = self.time_source() + self.session_lifetime_s
        payload = f"{principal.user}|{expiry:.3f}|{next(self._nonce)}"
        return f"{payload}|{self._sign(payload)}"

    def validate(self, token: str) -> Principal:
        """Validate a token and return the Principal it names.

        Raises :class:`AuthenticationError` for malformed, forged, expired
        or revoked tokens.  The empty token maps to :data:`ANONYMOUS`.
        """
        if token == "":
            return ANONYMOUS
        parts = token.split("|")
        if len(parts) != 4:
            raise AuthenticationError("malformed session token")
        user, expiry_s, nonce, signature = parts
        payload = f"{user}|{expiry_s}|{nonce}"
        if not hmac.compare_digest(signature, self._sign(payload)):
            raise AuthenticationError("session token signature invalid")
        try:
            expiry = float(expiry_s)
        except ValueError:
            raise AuthenticationError("malformed session expiry") from None
        if self.time_source() > expiry:
            raise AuthenticationError("session token expired")
        if token in self._revoked:
            raise AuthenticationError("session token revoked")
        return self.users.principal(user)

    def logout(self, token: str) -> None:
        """Revoke a token immediately."""
        self._revoked.add(token)
