"""Length-prefixed framing for the async Clarens socket transport.

Every message on a framed connection is one *frame*::

    +----------------+------+----------------+----------------+
    | length  (u32)  | type | request id u64 | payload bytes  |
    +----------------+------+----------------+----------------+

``length`` counts everything after itself (type + id + payload), all
integers big-endian.  The payload encoding is whatever codec the
connection negotiated — framing itself is codec-agnostic, which is what
lets one server speak XML-RPC and compact JSON on neighbouring
connections.

Frame types:

- ``HELLO`` / ``WELCOME`` — the negotiation handshake.  The client's
  HELLO payload is compact JSON ``{"v": 1, "codecs": [...]}`` (most
  preferred first); the server's WELCOME answers ``{"v": 1, "codec":
  name, "host": hostname}``.  The handshake is always JSON regardless of
  the codec being negotiated — you cannot parse a payload before
  agreeing how payloads are parsed.
- ``CALL`` / ``REPLY`` — one request and its response, correlated by the
  request id.  Ids are chosen by the client (monotonically increasing);
  replies may arrive out of order under pipelining, which is the whole
  point of carrying the id.
- ``ERROR`` — a protocol-level failure (unparseable frame, failed
  negotiation, oversized payload) with a JSON ``{"code": int, "error":
  str}`` payload.  Distinct from an application fault, which travels as
  a normal REPLY in the connection's codec.
- ``GOODBYE`` — an orderly half-close; the peer stops reading afterwards.

The sync helpers (:func:`read_frame_from`) serve the client's blocking
socket; the server reads frames with :func:`read_frame_async` on asyncio
streams.  Both enforce :data:`MAX_FRAME_BYTES` so a corrupt length prefix
cannot make either side allocate gigabytes.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Callable, Dict, Tuple

from repro.clarens.errors import ProtocolError, TransportError

#: Protocol version spoken (and required) by both ends of the handshake.
PROTOCOL_VERSION = 1

#: Hard cap on a single frame's post-length size (type + id + payload).
MAX_FRAME_BYTES = 64 * 1024 * 1024

HELLO = 1
WELCOME = 2
CALL = 3
REPLY = 4
ERROR = 5
GOODBYE = 6

_HEADER = struct.Struct(">IBQ")  # length, type, request id


def encode_frame(frame_type: int, request_id: int, payload: bytes) -> bytes:
    """One wire-ready frame (header + payload)."""
    return _HEADER.pack(len(payload) + 9, frame_type, request_id) + payload


def decode_header(header: bytes) -> Tuple[int, int, int]:
    """Split a 13-byte header into ``(payload_length, type, request_id)``.

    Raises :class:`~repro.clarens.errors.ProtocolError` for frames that
    are undersized or exceed :data:`MAX_FRAME_BYTES`.
    """
    length, frame_type, request_id = _HEADER.unpack(header)
    if length < 9 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"invalid frame length {length}")
    return length - 9, frame_type, request_id


def read_frame_from(
    read_exact: Callable[[int], bytes]
) -> Tuple[int, int, bytes]:
    """Read one frame via a blocking ``read_exact(n) -> bytes`` callable.

    Returns ``(type, request_id, payload)``.  *read_exact* must either
    return exactly ``n`` bytes or raise (the client's reader raises
    :class:`~repro.clarens.errors.TransportClosedError` /
    :class:`~repro.clarens.errors.TransportError` itself).
    """
    payload_len, frame_type, request_id = decode_header(
        read_exact(_HEADER.size)
    )
    payload = read_exact(payload_len) if payload_len else b""
    return frame_type, request_id, payload


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> Tuple[int, int, bytes]:
    """Read one frame from an asyncio stream (server side).

    Raises :class:`~repro.clarens.errors.TransportError` on EOF
    mid-frame and :class:`~repro.clarens.errors.ProtocolError` on a bad
    header — an EOF *between* frames surfaces as ``IncompleteReadError``
    with nothing read, which callers treat as a normal disconnect.
    """
    header = await reader.readexactly(_HEADER.size)
    payload_len, frame_type, request_id = decode_header(header)
    try:
        payload = (
            await reader.readexactly(payload_len) if payload_len else b""
        )
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc
    return frame_type, request_id, payload


# ----------------------------------------------------------------------
# handshake payloads (always JSON, independent of the negotiated codec)
# ----------------------------------------------------------------------
def encode_hello(codecs: Tuple[str, ...]) -> bytes:
    """The client's HELLO payload offering codec names, preferred first."""
    return json.dumps(
        {"v": PROTOCOL_VERSION, "codecs": list(codecs)},
        separators=(",", ":"),
    ).encode("ascii")


def decode_hello(payload: bytes) -> Tuple[int, Tuple[str, ...]]:
    """Parse a HELLO payload into ``(version, codec_preferences)``."""
    body = _handshake_body(payload, "HELLO")
    codecs = body.get("codecs")
    if not isinstance(codecs, list) or not all(
        isinstance(c, str) for c in codecs
    ):
        raise ProtocolError("HELLO payload lacks a codec preference list")
    return int(body.get("v", 0)), tuple(codecs)


def encode_welcome(codec: str, host_name: str) -> bytes:
    """The server's WELCOME payload confirming the negotiated codec."""
    return json.dumps(
        {"v": PROTOCOL_VERSION, "codec": codec, "host": host_name},
        separators=(",", ":"),
    ).encode("ascii")


def decode_welcome(payload: bytes) -> Tuple[int, str, str]:
    """Parse a WELCOME payload into ``(version, codec, host_name)``."""
    body = _handshake_body(payload, "WELCOME")
    codec = body.get("codec")
    if not isinstance(codec, str) or not codec:
        raise ProtocolError("WELCOME payload names no codec")
    return int(body.get("v", 0)), codec, str(body.get("host", ""))


def encode_error(code: int, message: str) -> bytes:
    """An ERROR frame payload."""
    return json.dumps(
        {"code": int(code), "error": str(message)}, separators=(",", ":")
    ).encode("utf-8")


def decode_error(payload: bytes) -> Tuple[int, str]:
    """Parse an ERROR payload into ``(code, message)`` (tolerant)."""
    try:
        body = json.loads(payload.decode("utf-8"))
        return int(body.get("code", 500)), str(body.get("error", ""))
    except Exception:
        return 500, payload.decode("utf-8", errors="replace")


def _handshake_body(payload: bytes, kind: str) -> Dict[str, Any]:
    try:
        body = json.loads(payload.decode("utf-8"))
    except Exception as exc:
        raise ProtocolError(f"malformed {kind} payload: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError(f"{kind} payload must be a JSON object")
    if int(body.get("v", 0)) != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{kind} speaks protocol version {body.get('v')!r}; "
            f"this end requires {PROTOCOL_VERSION}"
        )
    return body


__all__ = [
    "CALL",
    "ERROR",
    "GOODBYE",
    "HELLO",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REPLY",
    "WELCOME",
    "decode_error",
    "decode_header",
    "decode_hello",
    "decode_welcome",
    "encode_error",
    "encode_frame",
    "encode_hello",
    "encode_welcome",
    "read_frame_async",
    "read_frame_from",
]
