"""Access control lists.

Clarens provides "access control" over every hosted method (§3).  The model
here is ordered rules matched with shell-style patterns:

- a rule names a ``service.method`` pattern (fnmatch: ``steering.*``,
  ``*.ping`` …) and either a set of users, a set of groups, or ``everyone``;
- the first matching rule decides (allow or deny);
- if no rule matches, ``default_allow`` decides (ships as deny — a 2005
  grid host that defaulted open was a compromised host).

Anonymous principals only ever pass rules that grant ``everyone``.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.clarens.auth import Principal


@dataclass(frozen=True)
class AclRule:
    """One ordered access rule."""

    pattern: str                       # fnmatch over "service.method"
    allow: bool = True
    users: FrozenSet[str] = frozenset()
    groups: FrozenSet[str] = frozenset()
    everyone: bool = False

    def matches_path(self, method_path: str) -> bool:
        """Whether the rule's pattern covers this method path."""
        return fnmatch.fnmatchcase(method_path, self.pattern)

    def covers(self, principal: Principal) -> bool:
        """Whether the rule applies to this principal."""
        if self.everyone:
            return True
        if principal.is_anonymous:
            return False
        if principal.user in self.users:
            return True
        return any(g in self.groups for g in principal.groups)


class AccessControlList:
    """An ordered list of :class:`AclRule` with first-match semantics."""

    def __init__(self, default_allow: bool = False) -> None:
        self.default_allow = default_allow
        self._rules: List[AclRule] = []

    # ------------------------------------------------------------------
    # rule construction
    # ------------------------------------------------------------------
    def allow(
        self,
        pattern: str,
        users: Tuple[str, ...] = (),
        groups: Tuple[str, ...] = (),
        everyone: bool = False,
    ) -> "AccessControlList":
        """Append an allow rule; returns self for chaining."""
        return self._add(pattern, True, users, groups, everyone)

    def deny(
        self,
        pattern: str,
        users: Tuple[str, ...] = (),
        groups: Tuple[str, ...] = (),
        everyone: bool = False,
    ) -> "AccessControlList":
        """Append a deny rule; returns self for chaining."""
        return self._add(pattern, False, users, groups, everyone)

    def _add(
        self,
        pattern: str,
        allow: bool,
        users: Tuple[str, ...],
        groups: Tuple[str, ...],
        everyone: bool,
    ) -> "AccessControlList":
        if not pattern:
            raise ValueError("ACL pattern must be non-empty")
        if not everyone and not users and not groups:
            raise ValueError(
                "an ACL rule must name users, groups, or everyone — "
                "a subject-less rule never matches and hides a config bug"
            )
        self._rules.append(
            AclRule(
                pattern=pattern,
                allow=allow,
                users=frozenset(users),
                groups=frozenset(groups),
                everyone=everyone,
            )
        )
        return self

    @property
    def rules(self) -> Tuple[AclRule, ...]:
        """The rules in evaluation order."""
        return tuple(self._rules)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def check(self, principal: Principal, method_path: str) -> bool:
        """First-match evaluation; falls back to ``default_allow``."""
        for rule in self._rules:
            if rule.matches_path(method_path) and rule.covers(principal):
                return rule.allow
        return self.default_allow
