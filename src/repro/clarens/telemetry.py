"""Telemetry for the Clarens call pipeline: stats, latency, trace records.

The paper's §7 performance study measures Clarens call latency from the
outside only; this module gives the host its own instruments so every
service inherits them for free:

- :class:`CallStats` — thread-safe aggregate counters *and* per-method
  latency reservoirs (p50/p95/p99), safe to update from the threaded
  XML-RPC server's concurrent request threads;
- :class:`TraceRecord` / :class:`TraceLog` — a bounded in-memory ring
  buffer of finished calls, queryable via ``system.recent_calls``;
- :func:`new_trace_id` — cheap process-unique trace ids that propagate
  across transports and ``system.multicall`` sub-calls.

Everything here is transport-neutral; the middlewares in
:mod:`repro.clarens.middleware` feed these sinks.
"""

from __future__ import annotations

import itertools
import secrets as _secrets
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

# ----------------------------------------------------------------------
# trace ids
# ----------------------------------------------------------------------
# A random per-process prefix plus a counter: unique enough to correlate
# calls across hosts, and ~10x cheaper than uuid4 on the hot path.
_TRACE_PREFIX = _secrets.token_hex(4)
_TRACE_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id (``<random-prefix>-<counter>``)."""
    return f"{_TRACE_PREFIX}-{next(_TRACE_COUNTER):x}"


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) of *samples* by nearest-rank.

    Raises ValueError on an empty sample set.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    ordered = sorted(samples)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


class LatencyReservoir:
    """Fixed-capacity sample store: fills, then overwrites cyclically.

    The sliding-window-of-recent-values behaviour behind ``CallStats``,
    factored out so the unified metrics registry
    (:mod:`repro.observability.metrics`) can reuse it for histograms.
    Not thread-safe on its own — owners hold their own lock.
    """

    __slots__ = ("cap", "samples", "_next")

    def __init__(self, cap: int = 512) -> None:
        if cap < 1:
            raise ValueError("reservoir capacity must be positive")
        self.cap = cap
        self.samples: List[float] = []
        self._next = 0

    def add(self, value: float) -> None:
        if len(self.samples) < self.cap:
            self.samples.append(value)
        else:  # overwrite cyclically: a sliding window of recent values
            self.samples[self._next] = value
            self._next = (self._next + 1) % self.cap

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the current window."""
        return percentile(self.samples, q)

    def __len__(self) -> int:
        return len(self.samples)


class _MethodRecord:
    """Per-method counters plus a fixed-size latency reservoir."""

    __slots__ = ("count", "faults", "total_s", "max_s", "reservoir")

    def __init__(self, cap: int = 512) -> None:
        self.count = 0
        self.faults = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.reservoir = LatencyReservoir(cap)

    @property
    def samples(self) -> List[float]:
        return self.reservoir.samples

    def add(self, ok: bool, duration_s: Optional[float]) -> None:
        self.count += 1
        if not ok:
            self.faults += 1
        if duration_s is None:
            return
        self.total_s += duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s
        self.reservoir.add(duration_s)

    def summary_ms(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"count": self.count, "faults": self.faults}
        if self.samples:
            samples = sorted(self.samples)
            out.update(
                mean_ms=self.total_s / self.count * 1000.0,
                p50_ms=percentile(samples, 50) * 1000.0,
                p95_ms=percentile(samples, 95) * 1000.0,
                p99_ms=percentile(samples, 99) * 1000.0,
                max_ms=self.max_s * 1000.0,
            )
        return out


class CallStats:
    """Thread-safe aggregate call statistics with per-method latency.

    The public counter attributes (``calls``, ``faults``, ``per_method``)
    keep their historical meaning; :meth:`record` now also accepts the
    call duration, and :meth:`snapshot` adds the percentile summaries the
    redesigned ``system.stats`` returns.  All mutation happens under one
    lock because the threaded XML-RPC server records from concurrent
    request threads.
    """

    def __init__(self, max_samples_per_method: int = 512) -> None:
        self.calls = 0
        self.faults = 0
        self.per_method: Dict[str, int] = {}
        self._methods: Dict[str, _MethodRecord] = {}
        #: method -> {served_from -> count} for non-executed responses
        #: ("cache" hits, "coalesced" multicall dedups).
        self._served: Dict[str, Dict[str, int]] = {}
        #: transport label -> call count ("inproc", "xmlrpc",
        #: "async+json", ...); calls recorded without a label are omitted.
        self._per_transport: Dict[str, int] = {}
        self._cap = max_samples_per_method
        self._lock = threading.Lock()

    def record(
        self,
        method_path: str,
        ok: bool,
        duration_s: Optional[float] = None,
        served_from: str = "execute",
        transport: str = "",
    ) -> None:
        """Record one finished call (thread-safe).

        ``served_from`` distinguishes full executions (``"execute"``) from
        responses answered by the read cache (``"cache"``) or by multicall
        deduplication (``"coalesced"``).  Only executed calls enter the
        latency reservoirs — sub-microsecond cached responses would
        otherwise silently drag p50/p95/p99 toward zero.  ``transport``,
        when non-empty, feeds the per-transport breakdown in
        :meth:`snapshot` (the async server reports one label per
        negotiated codec, e.g. ``"async+json"``).
        """
        with self._lock:
            self.calls += 1
            if not ok:
                self.faults += 1
            self.per_method[method_path] = self.per_method.get(method_path, 0) + 1
            if transport:
                self._per_transport[transport] = (
                    self._per_transport.get(transport, 0) + 1
                )
            if served_from != "execute":
                sources = self._served.setdefault(method_path, {})
                sources[served_from] = sources.get(served_from, 0) + 1
                return
            rec = self._methods.get(method_path)
            if rec is None:
                rec = self._methods[method_path] = _MethodRecord(self._cap)
            rec.add(ok, duration_s)

    def latency_summary(self, method_path: str) -> Dict[str, Any]:
        """Latency summary for one method (empty dict when never called)."""
        with self._lock:
            rec = self._methods.get(method_path)
            return rec.summary_ms() if rec is not None else {}

    def mean_latency_s(self, method_path: str) -> Optional[float]:
        """Mean duration (s) of one method, or None when never timed."""
        with self._lock:
            rec = self._methods.get(method_path)
            if rec is None or rec.count == 0 or not rec.samples:
                return None
            return rec.total_s / rec.count

    def methods(self) -> List[str]:
        """Every method path ever recorded, sorted."""
        with self._lock:
            return sorted(self._methods)

    def snapshot(self) -> Dict[str, Any]:
        """A wire-safe snapshot: counters plus per-method percentiles."""
        with self._lock:
            per_method = dict(self.per_method)
            latency = {name: rec.summary_ms() for name, rec in self._methods.items()}
            served = {name: dict(srcs) for name, srcs in self._served.items()}
            per_transport = dict(self._per_transport)
            calls, faults = self.calls, self.faults
        return {
            "calls": calls,
            "faults": faults,
            "per_method": per_method,
            "per_transport": per_transport,
            "latency_ms": latency,
            "served": served,
        }


#: Stages of the async server's worker bridge, in call order.  Every
#: stage but ``reply_flush`` is timed on the worker thread; the flush is
#: timed on the event loop (one sample per reply batch).
WORKER_STAGES = ("queue_wait", "decode", "dispatch", "encode", "reply_flush")


class WorkerPoolStats:
    """Thread-safe stage timings and queue depth for an aio worker pool.

    One instance per :class:`~repro.clarens.aio.AsyncSocketServerHandle`;
    registered on the host (``host.worker_pools``) so ``system.stats``
    and the Prometheus endpoint surface queue pressure and per-stage
    latency (decode → dispatch → encode on the worker thread, plus the
    loop-side reply flush) without touching the hot path more than a
    few timestamps per call.
    """

    def __init__(self, reservoir_cap: int = 512) -> None:
        self._lock = threading.Lock()
        self._stages: Dict[str, _MethodRecord] = {
            stage: _MethodRecord(reservoir_cap) for stage in WORKER_STAGES
        }
        self.submitted = 0
        self.completed = 0
        self.batches = 0
        self.max_batch = 0
        self.queue_depth = 0
        self.max_queue_depth = 0

    # -- recording (all thread-safe) -----------------------------------
    def on_submit(self) -> None:
        """A request entered the worker queue (loop side)."""
        with self._lock:
            self.submitted += 1
            self.queue_depth += 1
            if self.queue_depth > self.max_queue_depth:
                self.max_queue_depth = self.queue_depth

    def on_start(self, queue_wait_s: float) -> None:
        """A worker picked the request up after *queue_wait_s* seconds."""
        with self._lock:
            self.queue_depth -= 1
            self._stages["queue_wait"].add(True, queue_wait_s)

    def on_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            if size > self.max_batch:
                self.max_batch = size

    def record_stage(self, stage: str, duration_s: float, ok: bool = True) -> None:
        """Time one pipeline stage (``decode``/``dispatch``/``encode``/
        ``reply_flush``)."""
        with self._lock:
            self._stages[stage].add(ok, duration_s)

    def on_complete(self) -> None:
        with self._lock:
            self.completed += 1

    # -- reading -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Wire-safe snapshot merged into ``system.stats``."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "batches": self.batches,
                "max_batch": self.max_batch,
                "stages": {
                    stage: rec.summary_ms()
                    for stage, rec in self._stages.items()
                    if rec.count
                },
            }

    def prometheus_lines(self, pool: str) -> List[str]:
        """Text-exposition lines for the webui ``/metrics`` endpoint."""
        snap = self.snapshot()
        label = f'{{pool="{pool}"}}'
        lines = [
            f"gae_aio_worker_submitted_total{label} {snap['submitted']}",
            f"gae_aio_worker_completed_total{label} {snap['completed']}",
            f"gae_aio_worker_batches_total{label} {snap['batches']}",
            f"gae_aio_worker_queue_depth{label} {snap['queue_depth']}",
            f"gae_aio_worker_queue_depth_max{label} {snap['max_queue_depth']}",
        ]
        for stage, summary in snap["stages"].items():
            base = f'pool="{pool}",stage="{stage}"'
            lines.append(
                f"gae_aio_worker_stage_count{{{base}}} {summary['count']}"
            )
            for q in ("p50", "p95", "p99"):
                key = f"{q}_ms"
                if key in summary:
                    lines.append(
                        f'gae_aio_worker_stage_ms{{{base},quantile="{q}"}} '
                        f"{summary[key]}"
                    )
        return lines


@dataclass(frozen=True)
class TraceRecord:
    """One finished call as kept in the trace ring buffer."""

    trace_id: str
    method: str
    transport: str
    principal: str
    started: float          # host time_source timestamp (sim or wall clock)
    duration_ms: float
    outcome: str            # "ok" | "fault" | "error"
    code: int = 0           # fault code when outcome != "ok"
    error: str = ""
    served_from: str = "execute"  # "execute" | "cache" | "coalesced"

    def to_wire(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "method": self.method,
            "transport": self.transport,
            "principal": self.principal,
            "started": self.started,
            "duration_ms": self.duration_ms,
            "outcome": self.outcome,
            "code": self.code,
            "error": self.error,
            "served_from": self.served_from,
        }


class TraceLog:
    """Bounded, thread-safe ring buffer of :class:`TraceRecord`."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def append(self, record: TraceRecord) -> None:
        with self._lock:
            self._records.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def snapshot(
        self, limit: Optional[int] = None, trace_id: Optional[str] = None
    ) -> List[TraceRecord]:
        """Records in chronological order, optionally filtered/limited.

        *limit* keeps the **newest** N records after filtering.
        """
        with self._lock:
            records = list(self._records)
        if trace_id is not None:
            records = [r for r in records if r.trace_id == trace_id]
        if limit is not None and limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
        return records
