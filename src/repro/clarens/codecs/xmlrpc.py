"""The XML-RPC body codec for the framed transport.

Reuses the stdlib ``xmlrpc.client`` marshaller, so a frame's payload is
byte-for-byte what the threaded HTTP transport puts inside a POST body.
This is the compatibility codec: it proves the framed async transport is
a pure transport change — same bodies, different plumbing — and gives
legacy XML-RPC tooling a migration path onto persistent framed
connections without a re-encode.
"""

from __future__ import annotations

import xmlrpc.client
from typing import Any, List, Sequence, Tuple

from repro.clarens.codecs import Codec
from repro.clarens.errors import ProtocolError, fault_from_code


class XmlRpcCodec(Codec):
    """Calls and responses as standard XML-RPC ``methodCall`` bodies."""

    name = "xmlrpc"
    content_type = "text/xml"

    def encode_request(
        self, method: str, wire_token: str, params: Sequence[Any]
    ) -> bytes:
        body = xmlrpc.client.dumps(
            tuple([wire_token, *params]), methodname=method, allow_none=True
        )
        return body.encode("utf-8")

    def decode_request(self, data: bytes) -> Tuple[str, str, List[Any]]:
        try:
            params, method = xmlrpc.client.loads(
                data.decode("utf-8"), use_builtin_types=True
            )
        except Exception as exc:
            raise ProtocolError(f"malformed XML-RPC request: {exc}") from exc
        if method is None or not params or not isinstance(params[0], str):
            raise ProtocolError(
                "XML-RPC request lacks a method name or leading token param"
            )
        return method, params[0], list(params[1:])

    def encode_response(self, result: Any) -> bytes:
        body = xmlrpc.client.dumps(
            (result,), methodresponse=True, allow_none=True
        )
        return body.encode("utf-8")

    def encode_fault(self, code: int, message: str) -> bytes:
        body = xmlrpc.client.dumps(
            xmlrpc.client.Fault(code, message), methodresponse=True, allow_none=True
        )
        return body.encode("utf-8")

    def decode_response(self, data: bytes) -> Any:
        try:
            (result,), _ = xmlrpc.client.loads(
                data.decode("utf-8"), use_builtin_types=True
            )
        except xmlrpc.client.Fault as fault:
            raise fault_from_code(fault.faultCode, fault.faultString) from None
        except Exception as exc:
            raise ProtocolError(f"malformed XML-RPC response: {exc}") from exc
        return result


__all__ = ["XmlRpcCodec"]
