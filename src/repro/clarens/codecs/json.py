"""The compact-JSON body codec for the framed transport.

Encodes calls as ``[method, token, params]`` and responses as
``[0, result]`` / ``[1, code, message]`` with no whitespace — typically a
fraction of the equivalent XML-RPC body and parsed by the C-accelerated
``json`` module instead of expat callbacks.  This is the codec the
handheld-device paper (PAPERS.md) motivates: same wire values, a fraction
of the bytes and the parse cost.

Bytes values (which JSON lacks) travel base64-tagged via
:func:`~repro.clarens.serialization.to_jsonable`; the recursive walk is
skipped entirely unless the encoded text contains the ``\\u0000`` escape
the tags are built from, so real payloads pay a substring scan and
nothing else.
"""

from __future__ import annotations

import json
from typing import Any, List, Sequence, Tuple

from repro.clarens.codecs import Codec
from repro.clarens.errors import ProtocolError, fault_from_code
from repro.clarens.serialization import from_jsonable, to_jsonable

_SEPARATORS = (",", ":")
#: ``ensure_ascii`` output escapes NUL as this; its presence is the only
#: case where the tag-aware recursive walk must run (either direction).
_WALK_MARKER = "\\u0000"


def _encode(value: Any) -> bytes:
    try:
        text = json.dumps(value, separators=_SEPARATORS, ensure_ascii=True)
    except TypeError:  # bytes (or other non-JSON leaves) somewhere inside
        text = json.dumps(
            to_jsonable(value), separators=_SEPARATORS, ensure_ascii=True
        )
        return text.encode("ascii")
    if _WALK_MARKER in text:
        # A NUL somewhere in a string could collide with (or already be)
        # a sentinel tag: re-encode through the escaping walk.
        text = json.dumps(
            to_jsonable(value), separators=_SEPARATORS, ensure_ascii=True
        )
    return text.encode("ascii")


def _decode(data: bytes) -> Any:
    text = data.decode("utf-8")
    value = json.loads(text)
    if _WALK_MARKER in text:
        return from_jsonable(value)
    return value


class CompactJsonCodec(Codec):
    """Calls and responses as compact tagged JSON arrays."""

    name = "json"
    content_type = "application/json"

    def encode_request(
        self, method: str, wire_token: str, params: Sequence[Any]
    ) -> bytes:
        return _encode([method, wire_token, list(params)])

    def decode_request(self, data: bytes) -> Tuple[str, str, List[Any]]:
        try:
            body = _decode(data)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed JSON request: {exc}") from exc
        if (
            not isinstance(body, list)
            or len(body) != 3
            or not isinstance(body[0], str)
            or not isinstance(body[1], str)
            or not isinstance(body[2], list)
        ):
            raise ProtocolError(
                "JSON request must be [method, token, params]"
            )
        return body[0], body[1], body[2]

    def encode_response(self, result: Any) -> bytes:
        return _encode([0, result])

    def encode_fault(self, code: int, message: str) -> bytes:
        return _encode([1, int(code), str(message)])

    def decode_response(self, data: bytes) -> Any:
        try:
            body = _decode(data)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed JSON response: {exc}") from exc
        if not isinstance(body, list) or not body:
            raise ProtocolError("JSON response must be a tagged array")
        if body[0] == 0 and len(body) == 2:
            return body[1]
        if body[0] == 1 and len(body) == 3:
            raise fault_from_code(int(body[1]), str(body[2]))
        raise ProtocolError(f"unrecognised JSON response tag {body[0]!r}")


__all__ = ["CompactJsonCodec"]
