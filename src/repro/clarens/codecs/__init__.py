"""Negotiable wire codecs for the framed Clarens transport.

A *codec* is the byte-level encoding of one call and its response; the
*framing* (:mod:`repro.clarens.framing`) around it is codec-agnostic, so
one async server speaks every codec at once and each connection picks its
own during the handshake (see :func:`negotiate`).

Two codecs ship:

- ``xmlrpc`` (:class:`~repro.clarens.codecs.xmlrpc.XmlRpcCodec`) — the
  existing XML-RPC body format, byte-compatible with what the stdlib
  ``xmlrpc`` stack puts inside an HTTP POST.  The compatibility codec:
  a 2005-era SOAP/XML-RPC client's payloads work unchanged.
- ``json`` (:class:`~repro.clarens.codecs.json.CompactJsonCodec`) — a
  compact JSON encoding, typically 3–6x smaller and an order of
  magnitude cheaper to parse.  The codec for bandwidth-constrained
  clients (handheld devices, high-frequency G-Monitor-style portals).

Both carry exactly the wire value set of
:func:`~repro.clarens.serialization.to_wire`, so responses are
wire-identical across codecs — the loadtest's identity phase replays the
same schedule through each and asserts it.

Every codec implements the :class:`Codec` interface over *wire values*
(post-``to_wire`` structures): requests as ``(method, wire_token,
params)`` — the trace id piggybacks on the token field exactly as on the
HTTP transport — and responses as either a result value or a
:class:`~repro.clarens.errors.ClarensFault`.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Sequence, Tuple, Type

from repro.clarens.errors import ProtocolError


class Codec(abc.ABC):
    """One wire encoding of Clarens calls and responses.

    Implementations must be stateless and thread-safe: the async server
    encodes responses from worker-pool threads while the event loop
    decodes requests, all through one shared instance.
    """

    #: Registry/negotiation name (``"json"``, ``"xmlrpc"``).
    name: str = ""
    #: Advisory MIME type (reported by introspection, not on the wire).
    content_type: str = "application/octet-stream"

    @abc.abstractmethod
    def encode_request(
        self, method: str, wire_token: str, params: Sequence[Any]
    ) -> bytes:
        """Encode one call.  *params* must already be wire values."""

    @abc.abstractmethod
    def decode_request(self, data: bytes) -> Tuple[str, str, List[Any]]:
        """Decode a call into ``(method, wire_token, params)``.

        Raises :class:`~repro.clarens.errors.ProtocolError` on malformed
        payloads.
        """

    @abc.abstractmethod
    def encode_response(self, result: Any) -> bytes:
        """Encode a successful result (already a wire value)."""

    @abc.abstractmethod
    def encode_fault(self, code: int, message: str) -> bytes:
        """Encode a fault response."""

    @abc.abstractmethod
    def decode_response(self, data: bytes) -> Any:
        """Decode a response; raises the typed fault for fault bodies."""


def _registry() -> Dict[str, Codec]:
    # Imported lazily so ``repro.clarens.codecs`` has no import cycle
    # with the serialization module the codec implementations use.
    from repro.clarens.codecs.json import CompactJsonCodec
    from repro.clarens.codecs.xmlrpc import XmlRpcCodec

    out: Dict[str, Codec] = {}
    for cls in (CompactJsonCodec, XmlRpcCodec):  # type: Type[Codec]
        codec = cls()
        out[codec.name] = codec
    return out


_CODECS: Dict[str, Codec] = {}


def codec_names() -> List[str]:
    """Names of every registered codec, preferred (compact) first."""
    if not _CODECS:
        _CODECS.update(_registry())
    return list(_CODECS)


def get_codec(name: str) -> Codec:
    """The shared codec instance registered under *name*.

    Raises :class:`~repro.clarens.errors.ProtocolError` for unknown
    names, the same failure an impossible negotiation surfaces.
    """
    if not _CODECS:
        _CODECS.update(_registry())
    try:
        return _CODECS[name]
    except KeyError:
        raise ProtocolError(
            f"unknown codec {name!r} (have: {', '.join(_CODECS)})"
        ) from None


def negotiate(preferences: Sequence[str], supported: Sequence[str]) -> str:
    """Pick the first client-preferred codec the server also supports.

    The client's order wins (it knows its bandwidth constraints); raises
    :class:`~repro.clarens.errors.ProtocolError` when the sets are
    disjoint.
    """
    for name in preferences:
        if name in supported:
            return name
    raise ProtocolError(
        f"no common codec: client offers {list(preferences)!r}, "
        f"server supports {list(supported)!r}"
    )


__all__ = [
    "Codec",
    "codec_names",
    "get_codec",
    "negotiate",
]
