"""A Clarens-style Grid-enabled web services framework.

Clarens is the backbone of the GAE (§3): it "offers a web service framework
for hosting the GAE web services, and provides a common set of services for
authentication, access control, and for service lookup and discovery", with
clients speaking SOAP/XML-RPC "in a language-neutral manner".

This subpackage reproduces that framework in Python:

- :mod:`repro.clarens.registry` — service/method registration;
- :mod:`repro.clarens.auth` — login → HMAC-signed session tokens;
- :mod:`repro.clarens.acl` — per-service/method access control;
- :mod:`repro.clarens.server` — the :class:`ClarensHost` dispatcher, plus a
  real threaded XML-RPC HTTP server (stdlib ``xmlrpc``) used by the
  Figure 6 latency benchmark;
- :mod:`repro.clarens.middleware` — the call pipeline every dispatch flows
  through (tracing → metrics → auth → ACL → user middlewares → invoke);
- :mod:`repro.clarens.telemetry` — thread-safe call statistics with
  per-method latency percentiles, plus the bounded trace ring behind
  ``system.recent_calls``;
- :mod:`repro.clarens.client` — proxy objects over pluggable transports;
- :mod:`repro.clarens.transport` — in-process and XML-RPC transports;
- :mod:`repro.clarens.discovery` — the peer-to-peer lookup network used for
  dynamic service discovery (§3, [5]);
- :mod:`repro.clarens.serialization` — wire-safe marshalling helpers.
"""

from repro.clarens.acl import AccessControlList, AclRule
from repro.clarens.auth import ANONYMOUS, AuthService, Principal, UserDatabase
from repro.clarens.client import ClarensClient, ServiceProxy
from repro.clarens.discovery import DiscoveryNetwork, Peer
from repro.clarens.errors import (
    AuthenticationError,
    AuthorizationError,
    ClarensFault,
    MethodNotFound,
    RemoteFault,
    SerializationError,
    ServiceNotFound,
    TransportError,
)
from repro.clarens.middleware import CallContext, Middleware
from repro.clarens.registry import ServiceRegistry, clarens_method
from repro.clarens.serialization import MulticallResult, from_wire, to_wire
from repro.clarens.server import ClarensHost, XmlRpcServerHandle
from repro.clarens.telemetry import CallStats, TraceLog, TraceRecord, new_trace_id
from repro.clarens.transport import InProcessTransport, Transport, XmlRpcTransport

__all__ = [
    "ANONYMOUS",
    "AccessControlList",
    "AclRule",
    "AuthService",
    "AuthenticationError",
    "AuthorizationError",
    "CallContext",
    "CallStats",
    "ClarensClient",
    "ClarensFault",
    "ClarensHost",
    "DiscoveryNetwork",
    "InProcessTransport",
    "MethodNotFound",
    "Middleware",
    "MulticallResult",
    "Peer",
    "Principal",
    "RemoteFault",
    "SerializationError",
    "ServiceNotFound",
    "ServiceProxy",
    "ServiceRegistry",
    "TraceLog",
    "TraceRecord",
    "Transport",
    "TransportError",
    "UserDatabase",
    "XmlRpcServerHandle",
    "XmlRpcTransport",
    "clarens_method",
    "from_wire",
    "new_trace_id",
    "to_wire",
]
