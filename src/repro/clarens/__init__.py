"""A Clarens-style Grid-enabled web services framework.

Clarens is the backbone of the GAE (§3): it "offers a web service framework
for hosting the GAE web services, and provides a common set of services for
authentication, access control, and for service lookup and discovery", with
clients speaking SOAP/XML-RPC "in a language-neutral manner".

This subpackage reproduces that framework in Python:

- :mod:`repro.clarens.api` — **the public surface**; everything below is
  re-exported here and from this package;
- :mod:`repro.clarens.registry` — service/method registration;
- :mod:`repro.clarens.auth` — login → HMAC-signed session tokens;
- :mod:`repro.clarens.acl` — per-service/method access control;
- :mod:`repro.clarens.server` — the :class:`ClarensHost` dispatcher, plus a
  real threaded XML-RPC HTTP server (stdlib ``xmlrpc``) used by the
  Figure 6 latency benchmark;
- :mod:`repro.clarens.aio` — the asyncio framed-protocol server:
  persistent connections, request pipelining, codec negotiation;
- :mod:`repro.clarens.framing` — the length-prefixed frame format and
  HELLO/WELCOME handshake spoken by the async server;
- :mod:`repro.clarens.codecs` — negotiable wire codecs (XML-RPC bodies
  and a compact JSON encoding) for the framed transport;
- :mod:`repro.clarens.middleware` — the call pipeline every dispatch flows
  through (tracing → metrics → auth → ACL → user middlewares → invoke);
- :mod:`repro.clarens.telemetry` — thread-safe call statistics with
  per-method latency percentiles, plus the bounded trace ring behind
  ``system.recent_calls``;
- :mod:`repro.clarens.client` — proxy objects over pluggable transports;
- :mod:`repro.clarens.transport` — loopback, XML-RPC and async framed
  transports;
- :mod:`repro.clarens.discovery` — the peer-to-peer lookup network used for
  dynamic service discovery (§3, [5]);
- :mod:`repro.clarens.serialization` — wire-safe marshalling helpers.

The pre-redesign transport names (``InProcessTransport``,
``XmlRpcTransport``) are still importable from here but raise a
``DeprecationWarning``; use ``LoopbackTransport`` / ``SocketTransport``.
"""

import warnings as _warnings
from typing import Any as _Any

from repro.clarens.api import (  # noqa: F401  (re-exported surface)
    ANONYMOUS,
    AccessControlList,
    AclRule,
    AsyncSocketServerHandle,
    AsyncSocketTransport,
    AuthService,
    AuthenticationError,
    AuthorizationError,
    CallContext,
    CallStats,
    ClarensClient,
    ClarensFault,
    ClarensHost,
    Codec,
    DiscoveryNetwork,
    LoopbackTransport,
    MethodNotFound,
    Middleware,
    MulticallResult,
    Peer,
    Principal,
    ProtocolError,
    RemoteFault,
    SerializationError,
    ServiceNotFound,
    ServiceProxy,
    ServiceRegistry,
    SocketTransport,
    TraceLog,
    TraceRecord,
    Transport,
    TransportClosedError,
    TransportError,
    UserDatabase,
    XmlRpcServerHandle,
    clarens_method,
    codec_names,
    from_wire,
    get_codec,
    negotiate,
    new_trace_id,
    parse_framed_address,
    resolve_transport,
    to_wire,
)

#: Deprecated aliases kept for pre-redesign callers (warn on access).
_DEPRECATED_NAMES = {
    "InProcessTransport": "LoopbackTransport",
    "XmlRpcTransport": "SocketTransport",
}


def __getattr__(name: str) -> _Any:
    try:
        replacement = _DEPRECATED_NAMES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    _warnings.warn(
        f"{__name__}.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=2,
    )
    return globals()[replacement]


__all__ = [
    "ANONYMOUS",
    "AccessControlList",
    "AclRule",
    "AsyncSocketServerHandle",
    "AsyncSocketTransport",
    "AuthService",
    "AuthenticationError",
    "AuthorizationError",
    "CallContext",
    "CallStats",
    "ClarensClient",
    "ClarensFault",
    "ClarensHost",
    "Codec",
    "DiscoveryNetwork",
    "LoopbackTransport",
    "MethodNotFound",
    "Middleware",
    "MulticallResult",
    "Peer",
    "Principal",
    "ProtocolError",
    "RemoteFault",
    "SerializationError",
    "ServiceNotFound",
    "ServiceProxy",
    "ServiceRegistry",
    "SocketTransport",
    "TraceLog",
    "TraceRecord",
    "Transport",
    "TransportClosedError",
    "TransportError",
    "UserDatabase",
    "XmlRpcServerHandle",
    "clarens_method",
    "codec_names",
    "from_wire",
    "get_codec",
    "negotiate",
    "new_trace_id",
    "parse_framed_address",
    "resolve_transport",
    "to_wire",
]
