"""Client-side transports.

Two interchangeable implementations of one interface:

- :class:`InProcessTransport` — dispatches straight into a
  :class:`~repro.clarens.server.ClarensHost` in the same process.  Values
  still pass through :func:`~repro.clarens.serialization.to_wire`, so a
  service that works in-process is guaranteed to work over sockets.
- :class:`XmlRpcTransport` — speaks real XML-RPC over HTTP using the stdlib
  client; this is what the Figure 6 benchmark measures.

Both present ``call(method_path, params, token, trace_id)`` and translate
failures into the :class:`~repro.clarens.errors.ClarensFault` hierarchy, so
client code is transport-agnostic.  A caller-issued trace id reaches the
host's pipeline on both paths: in-process it is passed straight through,
over XML-RPC it piggybacks on the wire token field (see
:func:`~repro.clarens.serialization.encode_trace_token`).

Every transport is a context manager, and :meth:`Transport.close` is
idempotent — closing twice (or closing an in-process transport, which holds
no connection) is always safe.
"""

from __future__ import annotations

import abc
import functools
import socket
import xmlrpc.client
from typing import Any, List, Sequence

from repro.clarens.errors import TransportError, fault_from_code
from repro.clarens.serialization import encode_trace_token, from_wire, to_wire
from repro.clarens.server import ClarensHost


class Transport(abc.ABC):
    """Abstract client transport (a reusable, idempotently-closable one)."""

    #: Whether :meth:`close` has run; subclasses honour and set this.
    closed: bool = False

    @abc.abstractmethod
    def call(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
    ) -> Any:
        """Invoke ``service.method`` with *params* under *token*.

        *trace_id*, when non-empty, is propagated to the host so the call
        (and any ``system.multicall`` sub-calls) shows up under that id in
        ``system.recent_calls``.
        """

    def close(self) -> None:
        """Release any underlying connection (idempotent; no-op here)."""
        self.closed = True

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InProcessTransport(Transport):
    """Zero-copy-distance transport into a host in the same process.

    ``strict_wire`` (default True) runs parameters and results through the
    same marshalling as the socket transport, so serialization bugs surface
    in fast unit tests rather than in deployment.
    """

    def __init__(self, host: ClarensHost, strict_wire: bool = True) -> None:
        self.host = host
        self.strict_wire = strict_wire

    def call(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
    ) -> Any:
        if self.strict_wire:
            wire_params: List[Any] = [to_wire(p) for p in params]
        else:
            wire_params = list(params)
        result = self.host.dispatch(
            method_path, wire_params, token=token, trace_id=trace_id
        )
        return from_wire(result) if self.strict_wire else result


class XmlRpcTransport(Transport):
    """Real XML-RPC over HTTP.

    One transport wraps one ``ServerProxy`` and therefore one HTTP
    connection; it is **not** thread-safe.  Concurrent clients (as in the
    Figure 6 benchmark) should each own a transport.
    """

    def __init__(self, url: str, timeout_s: float = 30.0) -> None:
        self.url = url
        transport = xmlrpc.client.Transport()
        # Plumb a socket timeout through the stdlib transport.
        original_make_connection = transport.make_connection

        def make_connection(host: str):  # type: ignore[no-untyped-def]
            conn = original_make_connection(host)
            conn.timeout = timeout_s
            return conn

        transport.make_connection = make_connection  # type: ignore[method-assign]
        self._proxy = xmlrpc.client.ServerProxy(url, allow_none=True, transport=transport)

    def call(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
    ) -> Any:
        wire_params = [to_wire(p) for p in params]
        method = functools.reduce(getattr, method_path.split("."), self._proxy)
        try:
            result = method(encode_trace_token(token, trace_id), *wire_params)
        except xmlrpc.client.Fault as fault:
            raise fault_from_code(fault.faultCode, fault.faultString) from fault
        except (OSError, socket.timeout, xmlrpc.client.ProtocolError) as exc:
            raise TransportError(f"transport failure calling {method_path}: {exc}") from exc
        return from_wire(result)

    def close(self) -> None:
        """Drop the HTTP connection (safe to call more than once)."""
        if not self.closed:
            self._proxy("close")()  # type: ignore[operator]
            self.closed = True
