"""Client-side transports.

Three interchangeable implementations of one interface:

- :class:`LoopbackTransport` — dispatches straight into a
  :class:`~repro.clarens.server.ClarensHost` in the same process.  Values
  still pass through :func:`~repro.clarens.serialization.to_wire`, so a
  service that works in-process is guaranteed to work over sockets.
- :class:`SocketTransport` — speaks real XML-RPC over HTTP using the
  stdlib client; this is what the Figure 6 benchmark measures.  One
  connection, one request in flight at a time.
- :class:`AsyncSocketTransport` — a persistent framed connection to an
  :class:`~repro.clarens.aio.AsyncSocketServerHandle` with codec
  negotiation (:mod:`repro.clarens.codecs`) and request **pipelining**:
  :meth:`~Transport.call_pipelined` keeps a window of calls in flight on
  the one connection instead of paying a round trip each.

All present ``call(method_path, params, token, trace_id)`` and translate
failures into the :class:`~repro.clarens.errors.ClarensFault` hierarchy, so
client code is transport-agnostic.  A caller-issued trace id reaches the
host's pipeline on every path: in-process it is passed straight through,
over the socket transports it piggybacks on the wire token field (see
:func:`~repro.clarens.serialization.encode_trace_token`).

Every transport is a context manager, and :meth:`Transport.close` is
idempotent and safe to call from any thread — including while another
thread has calls in flight, which then fail with
:class:`~repro.clarens.errors.TransportClosedError` rather than hanging
or corrupting the stream.

The 2005-era names ``InProcessTransport`` and ``XmlRpcTransport`` remain
importable as deprecated aliases of :class:`LoopbackTransport` and
:class:`SocketTransport`.
"""

from __future__ import annotations

import abc
import functools
import socket
import threading
import warnings
import xmlrpc.client
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.clarens.codecs import Codec, codec_names, get_codec
from repro.clarens.errors import (
    ClarensFault,
    ProtocolError,
    TransportClosedError,
    TransportError,
    fault_from_code,
)
from repro.clarens.framing import (
    CALL,
    GOODBYE,
    HELLO,
    REPLY,
    WELCOME,
    decode_error,
    decode_welcome,
    encode_frame,
    encode_hello,
    read_frame_from,
)
from repro.clarens.framing import ERROR as ERROR_FRAME
from repro.clarens.serialization import encode_trace_token, from_wire, to_wire
from repro.clarens.server import ClarensHost


class Transport(abc.ABC):
    """Abstract client transport (a reusable, idempotently-closable one)."""

    #: Whether :meth:`close` has run; subclasses honour and set this.
    closed: bool = False
    #: True when :meth:`call_pipelined` overlaps requests on the wire
    #: (rather than falling back to sequential calls).
    supports_pipelining: bool = False

    @abc.abstractmethod
    def call(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
    ) -> Any:
        """Invoke ``service.method`` with *params* under *token*.

        *trace_id*, when non-empty, is propagated to the host so the call
        (and any ``system.multicall`` sub-calls) shows up under that id in
        ``system.recent_calls``.
        """

    def call_pipelined(
        self,
        calls: Sequence[Tuple[str, Sequence[Any]]],
        token: str = "",
        trace_id: str = "",
    ) -> List[Tuple[bool, Any]]:
        """Issue many calls, overlapping them when the transport can.

        *calls* is a sequence of ``(method_path, params)`` pairs.  Returns
        one ``(ok, value)`` pair per call **in order**: ``(True, result)``
        or ``(False, fault)`` with the typed
        :class:`~repro.clarens.errors.ClarensFault` — fault isolation, so
        one failing call does not poison its batch.  The base
        implementation runs the calls sequentially; transports with
        :attr:`supports_pipelining` keep a window in flight.
        """
        out: List[Tuple[bool, Any]] = []
        for method_path, params in calls:
            try:
                out.append(
                    (True, self.call(method_path, params, token=token, trace_id=trace_id))
                )
            except ClarensFault as exc:
                if isinstance(exc, (TransportError, ProtocolError)):
                    raise  # connection-level failure: the batch is dead
                out.append((False, exc))
        return out

    def close(self) -> None:
        """Release any underlying connection (idempotent; no-op here)."""
        self.closed = True

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class LoopbackTransport(Transport):
    """Zero-copy-distance transport into a host in the same process.

    ``strict_wire`` (default True) runs parameters and results through the
    same marshalling as the socket transports, so serialization bugs
    surface in fast unit tests rather than in deployment.
    """

    def __init__(self, host: ClarensHost, strict_wire: bool = True) -> None:
        self.host = host
        self.strict_wire = strict_wire

    def call(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
    ) -> Any:
        if self.closed:
            raise TransportClosedError("transport is closed")
        if self.strict_wire:
            wire_params: List[Any] = [to_wire(p) for p in params]
        else:
            wire_params = list(params)
        result = self.host.dispatch(
            method_path, wire_params, token=token, trace_id=trace_id
        )
        return from_wire(result) if self.strict_wire else result


class SocketTransport(Transport):
    """Real XML-RPC over HTTP.

    One transport wraps one ``ServerProxy`` and therefore one HTTP
    connection; it is **not** thread-safe.  Concurrent clients (as in the
    Figure 6 benchmark) should each own a transport.
    """

    def __init__(self, url: str, timeout_s: float = 30.0) -> None:
        self.url = url
        transport = xmlrpc.client.Transport()
        # Plumb a socket timeout through the stdlib transport.
        original_make_connection = transport.make_connection

        def make_connection(host: str):  # type: ignore[no-untyped-def]
            conn = original_make_connection(host)
            conn.timeout = timeout_s
            return conn

        transport.make_connection = make_connection  # type: ignore[method-assign]
        self._proxy = xmlrpc.client.ServerProxy(url, allow_none=True, transport=transport)

    def call(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
    ) -> Any:
        if self.closed:
            raise TransportClosedError("transport is closed")
        wire_params = [to_wire(p) for p in params]
        method = functools.reduce(getattr, method_path.split("."), self._proxy)
        try:
            result = method(encode_trace_token(token, trace_id), *wire_params)
        except xmlrpc.client.Fault as fault:
            raise fault_from_code(fault.faultCode, fault.faultString) from fault
        except (OSError, socket.timeout, xmlrpc.client.ProtocolError) as exc:
            if self.closed:
                raise TransportClosedError(
                    f"transport closed during call to {method_path}"
                ) from exc
            raise TransportError(f"transport failure calling {method_path}: {exc}") from exc
        return from_wire(result)

    def close(self) -> None:
        """Drop the HTTP connection (safe to call more than once)."""
        if not self.closed:
            self.closed = True
            self._proxy("close")()  # type: ignore[operator]


def parse_framed_address(
    address: Union[str, Tuple[str, int]]
) -> Tuple[str, int]:
    """Normalise a framed-server address to ``(host, port)``.

    Accepts an ``(host, port)`` tuple (e.g.
    :attr:`~repro.clarens.aio.AsyncSocketServerHandle.address`), a
    ``clarens://host:port`` URL, or a bare ``host:port`` string.
    """
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    text = str(address)
    if "//" in text:
        text = text.split("//", 1)[1]
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise TransportError(f"not a framed-server address: {address!r}")
    try:
        return host, int(port_text)
    except ValueError:
        raise TransportError(
            f"not a framed-server address: {address!r}"
        ) from None


class AsyncSocketTransport(Transport):
    """Persistent framed connection to the asyncio Clarens server.

    Connects, negotiates a codec (HELLO/WELCOME, see
    :mod:`repro.clarens.framing`) and then multiplexes calls over the one
    TCP connection.  :meth:`call` is a plain round trip;
    :meth:`call_pipelined` keeps up to ``pipeline_window`` requests in
    flight, matching replies (which may arrive out of order) to calls by
    request id.

    The wire is serialised by an internal lock, so a transport may be
    shared across threads — though each blocking round trip still admits
    one caller at a time; concurrency comes from pipelining, not from
    thread fan-out.  :meth:`close` is safe from any thread: in-flight
    calls fail with :class:`~repro.clarens.errors.TransportClosedError`.

    Parameters
    ----------
    address:
        Anything :func:`parse_framed_address` accepts.
    codec:
        Preferred codec name, or a preference-ordered sequence of names.
        Default: every registered codec, compact-JSON first.
    timeout_s:
        Socket timeout for connect and for each blocking read.
    pipeline_window:
        Default maximum calls in flight for :meth:`call_pipelined`.
        Keep at or below the server's per-connection ``max_inflight``.
    tracer:
        A :class:`~repro.observability.tracing.Tracer` (or compatible).
        When given, every call gets a client-side ``client:<method>``
        span opened at send time and closed when its reply arrives —
        pipelined calls therefore show their true overlap and
        out-of-order completion.  A batch with no caller trace id gets
        one minted so client and server spans correlate.
    """

    supports_pipelining = True

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        codec: Union[str, Sequence[str], None] = None,
        timeout_s: float = 30.0,
        pipeline_window: int = 64,
        tracer: Optional[Any] = None,
    ) -> None:
        self.tracer = tracer
        host, port = parse_framed_address(address)
        self.url = f"clarens://{host}:{port}"
        if codec is None:
            preferences: Tuple[str, ...] = tuple(codec_names())
        elif isinstance(codec, str):
            preferences = (codec,)
        else:
            preferences = tuple(codec)
        self._pipeline_window = max(1, pipeline_window)
        self._lock = threading.Lock()  # serialises all wire access
        self._close_lock = threading.Lock()
        self._request_id = 0
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            self.codec, self.server_name = self._handshake(preferences)
        except BaseException:
            self._sock.close()
            self.closed = True
            raise

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------
    def _handshake(self, preferences: Tuple[str, ...]) -> Tuple[Codec, str]:
        self._sock.sendall(encode_frame(HELLO, 0, encode_hello(preferences)))
        frame_type, _, payload = read_frame_from(self._read_exact)
        if frame_type == ERROR_FRAME:
            code, message = decode_error(payload)
            raise fault_from_code(code, message)
        if frame_type != WELCOME:
            raise ProtocolError(
                f"expected WELCOME, got frame type {frame_type}"
            )
        _, codec_name, server_name = decode_welcome(payload)
        return get_codec(codec_name), server_name

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
    ) -> Any:
        ok, value = self.call_pipelined(
            [(method_path, params)], token=token, trace_id=trace_id
        )[0]
        if not ok:
            raise value
        return value

    def call_pipelined(
        self,
        calls: Sequence[Tuple[str, Sequence[Any]]],
        token: str = "",
        trace_id: str = "",
        window: Optional[int] = None,
    ) -> List[Tuple[bool, Any]]:
        """Windowed pipelining over the framed connection.

        Encodes and sends up to *window* calls before reading the first
        reply, then keeps the window full as replies drain — one
        connection, many overlapping requests, no reply-ordering
        assumption.
        """
        limit = self._pipeline_window if window is None else max(1, window)
        tracer = self.tracer
        if tracer is not None and not trace_id:
            from repro.clarens.telemetry import new_trace_id

            trace_id = new_trace_id()
        wire_token = encode_trace_token(token, trace_id)
        codec = self.codec
        results: List[Optional[Tuple[bool, Any]]] = [None] * len(calls)
        spans: Dict[int, Any] = {}  # request id -> open client span
        try:
            with self._lock:
                self._ensure_open()
                pending: Dict[int, int] = {}  # request id -> slot
                next_slot = 0
                send_buffer: List[bytes] = []
                while next_slot < len(calls) or pending:
                    while next_slot < len(calls) and len(pending) < limit:
                        method_path, params = calls[next_slot]
                        self._request_id += 1
                        request_id = self._request_id
                        pending[request_id] = next_slot
                        send_buffer.append(
                            encode_frame(
                                CALL,
                                request_id,
                                codec.encode_request(
                                    method_path,
                                    wire_token,
                                    [to_wire(p) for p in params],
                                ),
                            )
                        )
                        if tracer is not None:
                            spans[request_id] = tracer.start_span(
                                f"client:{method_path}",
                                trace_id=trace_id,
                                attributes={
                                    "method": method_path,
                                    "codec": codec.name,
                                    "slot": next_slot,
                                },
                                activate=False,
                            )
                        next_slot += 1
                    if send_buffer:
                        self._send(b"".join(send_buffer))
                        send_buffer = []
                    if not pending:
                        break
                    frame_type, request_id, payload = read_frame_from(
                        self._read_exact
                    )
                    if frame_type == ERROR_FRAME:
                        code, message = decode_error(payload)
                        raise fault_from_code(code, message)
                    if frame_type != REPLY:
                        raise ProtocolError(
                            f"expected REPLY, got frame type {frame_type}"
                        )
                    slot = pending.pop(request_id, None)
                    if slot is None:
                        raise ProtocolError(
                            f"reply for unknown request id {request_id}"
                        )
                    try:
                        results[slot] = (
                            True, from_wire(codec.decode_response(payload))
                        )
                    except (TransportError, ProtocolError):
                        raise
                    except ClarensFault as fault:
                        results[slot] = (False, fault)
                    span = spans.pop(request_id, None)
                    if span is not None:
                        ok = results[slot] is not None and results[slot][0]
                        tracer.end_span(span, status="ok" if ok else "error")
        finally:
            # A transport failure mid-batch leaves spans open; close them
            # as errors so the trace shows which calls never completed.
            for span in spans.values():
                tracer.end_span(span, status="error")
        return results  # type: ignore[return-value]  # every slot filled

    # ------------------------------------------------------------------
    # wire primitives
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self.closed:
            raise TransportClosedError("transport is closed")

    def _send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except OSError as exc:
            if self.closed:
                raise TransportClosedError(
                    "transport closed while a call was in flight"
                ) from exc
            raise TransportError(f"send failed: {exc}") from exc

    def _read_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            try:
                chunk = self._sock.recv(n - len(buf))
            except OSError as exc:
                if self.closed:
                    raise TransportClosedError(
                        "transport closed while a call was in flight"
                    ) from exc
                raise TransportError(f"receive failed: {exc}") from exc
            if not chunk:
                if self.closed:
                    raise TransportClosedError(
                        "transport closed while a call was in flight"
                    )
                raise TransportError("connection closed by server")
            buf += chunk
        return bytes(buf)

    def close(self) -> None:
        """Close the connection; concurrent and repeat calls are safe.

        A polite GOODBYE is sent only when the wire is idle; otherwise the
        socket is shut down immediately, and any thread blocked inside
        :meth:`call` / :meth:`call_pipelined` gets a
        :class:`~repro.clarens.errors.TransportClosedError`.
        """
        with self._close_lock:
            if self.closed:
                return
            self.closed = True
        if self._lock.acquire(blocking=False):
            try:
                self._sock.sendall(encode_frame(GOODBYE, 0, b""))
            except OSError:
                pass
            finally:
                self._lock.release()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


# ----------------------------------------------------------------------
# deprecated 2005-era names
# ----------------------------------------------------------------------
_DEPRECATED_NAMES = {
    "InProcessTransport": "LoopbackTransport",
    "XmlRpcTransport": "SocketTransport",
}


def __getattr__(name: str) -> Any:
    try:
        replacement = _DEPRECATED_NAMES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"{__name__}.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=2,
    )
    return globals()[replacement]


__all__ = [
    "AsyncSocketTransport",
    "LoopbackTransport",
    "SocketTransport",
    "Transport",
    "parse_framed_address",
]
