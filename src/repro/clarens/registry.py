"""Service and method registration.

A Clarens host serves many *services*, each exposing a set of *methods*.
Services are ordinary Python objects; which methods are exposed is decided,
in order of precedence, by

1. an explicit ``methods=`` list at registration time,
2. ``@clarens_method`` decorations on the class, or
3. the fallback: every public callable attribute.

Each exposed method carries metadata (docstring, whether anonymous callers
are allowed) used by the dispatcher and by the introspection methods
(``system.listMethods`` and friends).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.clarens.errors import MethodNotFound, ServiceNotFound

_CLARENS_ATTR = "_clarens_exposed"


def clarens_method(
    func: Optional[Callable] = None,
    *,
    anonymous: bool = False,
    pass_principal: bool = False,
    pass_context: bool = False,
    cache: Optional[Any] = None,
) -> Callable:
    """Mark a method for exposure through a Clarens host.

    Parameters
    ----------
    anonymous:
        When true the method may be called without a session token (e.g.
        ``ping`` or a public lookup).
    pass_principal:
        When true the dispatcher injects the authenticated
        :class:`~repro.clarens.auth.Principal` as the first argument —
        how the steering service learns *who* is steering (§4.2.5).
    pass_context:
        When true the dispatcher injects the full in-flight
        :class:`~repro.clarens.middleware.CallContext` instead — how
        ``system.multicall`` propagates one trace id over a whole batch.
        Takes precedence over ``pass_principal``.
    cache:
        A :class:`~repro.clarens.readcache.ReadPolicy` declaring the
        method read-only and naming the epochs its answer depends on.
        Policy-bearing methods are served by ``ReadCacheMiddleware`` and
        are eligible for multicall coalescing.  Leave ``None`` (the
        default) for anything that mutates state or draws randomness.
    """

    def mark(f: Callable) -> Callable:
        setattr(f, _CLARENS_ATTR, {
            "anonymous": anonymous,
            "pass_principal": pass_principal,
            "pass_context": pass_context,
            "cache": cache,
        })
        return f

    if func is not None:
        return mark(func)
    return mark


@dataclass
class MethodEntry:
    """One exposed method."""

    name: str
    func: Callable[..., Any]
    doc: str = ""
    anonymous: bool = False
    pass_principal: bool = False
    pass_context: bool = False
    #: ReadPolicy when the method is a cacheable read, else None.
    cache: Optional[Any] = None

    def signature(self) -> str:
        """Human-readable call signature for introspection."""
        try:
            return f"{self.name}{inspect.signature(self.func)}"
        except (TypeError, ValueError):  # pragma: no cover - builtins
            return f"{self.name}(...)"


@dataclass
class ServiceEntry:
    """One registered service and its exposed methods."""

    name: str
    instance: Any
    methods: Dict[str, MethodEntry] = field(default_factory=dict)
    description: str = ""

    def method(self, method_name: str) -> MethodEntry:
        try:
            return self.methods[method_name]
        except KeyError:
            raise MethodNotFound(
                f"service {self.name!r} has no method {method_name!r}"
            ) from None


class ServiceRegistry:
    """The name → service map a Clarens host dispatches against."""

    def __init__(self) -> None:
        self._services: Dict[str, ServiceEntry] = {}

    def register(
        self,
        name: str,
        instance: Any,
        methods: Optional[List[str]] = None,
        description: str = "",
    ) -> ServiceEntry:
        """Register *instance* as service *name*.

        See the module docstring for how the exposed method set is chosen.
        Registering the same name twice is an error (use :meth:`unregister`
        first) — silently replacing a live service is how 2005-era grids
        got spoofed.
        """
        if name in self._services:
            raise ValueError(f"service {name!r} already registered")
        entry = ServiceEntry(name=name, instance=instance, description=description)
        if methods is not None:
            selected = methods
        else:
            decorated = [
                attr
                for attr in dir(instance)
                if not attr.startswith("_")
                and callable(getattr(instance, attr, None))
                and hasattr(getattr(instance, attr), _CLARENS_ATTR)
            ]
            if decorated:
                selected = decorated
            else:
                selected = [
                    attr
                    for attr in dir(instance)
                    if not attr.startswith("_") and callable(getattr(instance, attr, None))
                ]
        for method_name in selected:
            func = getattr(instance, method_name, None)
            if func is None or not callable(func):
                raise ValueError(
                    f"service {name!r}: {method_name!r} is not a callable attribute"
                )
            meta = getattr(func, _CLARENS_ATTR, {})
            entry.methods[method_name] = MethodEntry(
                name=method_name,
                func=func,
                doc=inspect.getdoc(func) or "",
                anonymous=bool(meta.get("anonymous", False)),
                pass_principal=bool(meta.get("pass_principal", False)),
                pass_context=bool(meta.get("pass_context", False)),
                cache=meta.get("cache"),
            )
        self._services[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a service (ServiceNotFound if absent)."""
        if name not in self._services:
            raise ServiceNotFound(f"no service {name!r}")
        del self._services[name]

    def service(self, name: str) -> ServiceEntry:
        """Look a service up (ServiceNotFound if absent)."""
        try:
            return self._services[name]
        except KeyError:
            raise ServiceNotFound(f"no service {name!r}") from None

    def has(self, name: str) -> bool:
        """Whether a service with this name is registered."""
        return name in self._services

    def names(self) -> List[str]:
        """Registered service names, sorted."""
        return sorted(self._services)

    def resolve(self, method_path: str) -> MethodEntry:
        """Resolve a dotted ``service.method`` path to its entry."""
        if "." not in method_path:
            raise MethodNotFound(
                f"method path {method_path!r} must look like 'service.method'"
            )
        service_name, method_name = method_path.rsplit(".", 1)
        return self.service(service_name).method(method_name)
