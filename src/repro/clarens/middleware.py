"""The middleware pipeline every Clarens call flows through.

The host's old hard-coded auth → ACL → invoke sequence is now an explicit
chain of middlewares operating on one :class:`CallContext`.  A middleware
is any callable ``(ctx, call_next) -> result``: it may inspect or mutate
the context, short-circuit by raising (or returning without calling
``call_next``), and observe the result or fault on the way back out.

The built-in chain, outermost first::

    TracingMiddleware     # stamps timings, records a TraceRecord
    MetricsMiddleware     # feeds CallStats (counts + latency reservoirs)
    AuthenticationMiddleware   # token -> Principal (skipped when pre-set)
    AclMiddleware         # anonymous/ACL enforcement
    ReadCacheMiddleware   # epoch-keyed read cache (repro.clarens.readcache)
    ... user middlewares added via ClarensHost.add_middleware() ...
    <terminal invoker>    # registry lookup + method invocation + to_wire

This is the DIRACx-style instrumented pipeline: every GAE service inherits
tracing and per-method latency metrics with zero changes of its own.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Sequence

from repro.clarens.auth import Principal
from repro.clarens.errors import (
    AuthenticationError,
    AuthorizationError,
    ClarensFault,
)
from repro.clarens.telemetry import CallStats, TraceLog, TraceRecord

#: A middleware: receives the call context and the next handler in the chain.
Middleware = Callable[["CallContext", Callable[["CallContext"], Any]], Any]


class CallContext:
    """Everything the pipeline knows about one in-flight call.

    Created by :meth:`ClarensHost.dispatch` (or by ``system.multicall``
    for sub-calls, which share the parent's trace id) and threaded through
    every middleware down to the terminal invoker.
    """

    __slots__ = (
        "method_path",
        "params",
        "token",
        "trace_id",
        "transport",
        "principal",
        "entry",
        "started",
        "duration_ms",
        "outcome",
        "served_from",
        "fault_code",
        "fault_message",
        "metadata",
    )

    def __init__(
        self,
        method_path: str,
        params: Sequence[Any],
        token: str = "",
        trace_id: str = "",
        transport: str = "inproc",
        principal: Optional[Principal] = None,
        started: float = 0.0,
    ) -> None:
        self.method_path = method_path
        self.params = params
        self.token = token
        self.trace_id = trace_id
        self.transport = transport
        #: Resolved by auth middleware (None until then, unless pre-set by
        #: ``invoke_as`` / multicall sub-dispatch).
        self.principal = principal
        #: Resolved MethodEntry, cached by the ACL middleware.
        self.entry: Any = None
        self.started = started
        self.duration_ms = 0.0
        self.outcome = ""          # "" while in flight; "ok"/"fault"/"error" after
        #: "execute" normally; "cache" when ReadCacheMiddleware answered,
        #: "coalesced" when multicall deduplication did.
        self.served_from = "execute"
        self.fault_code = 0
        self.fault_message = ""
        #: Scratch space for user middlewares (created lazily).
        self.metadata: Optional[Dict[str, Any]] = None

    def meta(self) -> Dict[str, Any]:
        """The metadata dict, created on first use."""
        if self.metadata is None:
            self.metadata = {}
        return self.metadata

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CallContext({self.method_path!r}, trace={self.trace_id!r}, "
            f"transport={self.transport!r}, outcome={self.outcome!r})"
        )


def build_pipeline(
    middlewares: Sequence[Middleware],
    terminal: Callable[[CallContext], Any],
) -> Callable[[CallContext], Any]:
    """Compose *middlewares* (outermost first) around *terminal*."""
    handler = terminal
    for mw in reversed(list(middlewares)):
        def make(mw: Middleware, nxt: Callable[[CallContext], Any]):
            def handle(ctx: CallContext) -> Any:
                return mw(ctx, nxt)
            return handle
        handler = make(mw, handler)
    return handler


# ----------------------------------------------------------------------
# built-in middlewares
# ----------------------------------------------------------------------
class AuthenticationMiddleware:
    """Resolves ``ctx.token`` to ``ctx.principal`` (token validation).

    Skipped when a principal was pre-bound (``invoke_as`` and multicall
    sub-calls authenticate once for the whole batch).
    """

    def __init__(self, auth: Any) -> None:
        self._auth = auth

    def __call__(self, ctx: CallContext, call_next: Callable[[CallContext], Any]) -> Any:
        if ctx.principal is None:
            ctx.principal = self._auth.validate(ctx.token)
        return call_next(ctx)


class AclMiddleware:
    """Enforces the anonymous flag and the host's access-control list."""

    def __init__(self, registry: Any, acl: Any) -> None:
        self._registry = registry
        self._acl = acl

    def __call__(self, ctx: CallContext, call_next: Callable[[CallContext], Any]) -> Any:
        entry = ctx.entry
        if entry is None:
            entry = ctx.entry = self._registry.resolve(ctx.method_path)
        if not entry.anonymous:
            principal = ctx.principal
            if principal is None or principal.is_anonymous:
                raise AuthenticationError(
                    f"{ctx.method_path} requires a session token"
                )
            if not self._acl.check(principal, ctx.method_path):
                raise AuthorizationError(
                    f"user {principal.user!r} may not call {ctx.method_path}"
                )
        return call_next(ctx)


class MetricsMiddleware:
    """Feeds :class:`CallStats`: counts, fault counts, and latency."""

    def __init__(self, stats: CallStats) -> None:
        self.stats = stats

    def __call__(self, ctx: CallContext, call_next: Callable[[CallContext], Any]) -> Any:
        t0 = time.perf_counter()
        ok = False
        try:
            result = call_next(ctx)
            ok = True
            return result
        finally:
            self.stats.record(
                ctx.method_path,
                ok,
                time.perf_counter() - t0,
                served_from=ctx.served_from,
                transport=ctx.transport,
            )


class TracingMiddleware:
    """Stamps call timing/outcome and records finished calls in a ring.

    Outermost by default, so its duration covers the whole pipeline and
    its record reflects the final outcome after every other middleware.
    """

    def __init__(self, log: TraceLog) -> None:
        self.log = log

    def __call__(self, ctx: CallContext, call_next: Callable[[CallContext], Any]) -> Any:
        t0 = time.perf_counter()
        try:
            result = call_next(ctx)
            ctx.outcome = "ok"
            return result
        except ClarensFault as exc:
            ctx.outcome = "fault"
            ctx.fault_code = exc.code
            ctx.fault_message = exc.message
            raise
        except BaseException as exc:  # non-Clarens escape (shutdown etc.)
            ctx.outcome = "error"
            ctx.fault_code = 500
            ctx.fault_message = str(exc)
            raise
        finally:
            ctx.duration_ms = (time.perf_counter() - t0) * 1000.0
            principal = ctx.principal
            self.log.append(TraceRecord(
                trace_id=ctx.trace_id,
                method=ctx.method_path,
                transport=ctx.transport,
                principal=principal.user if principal is not None else "",
                started=ctx.started,
                duration_ms=ctx.duration_ms,
                outcome=ctx.outcome,
                code=ctx.fault_code,
                error=ctx.fault_message,
                served_from=ctx.served_from,
            ))


__all__ = [
    "AclMiddleware",
    "AuthenticationMiddleware",
    "CallContext",
    "MetricsMiddleware",
    "Middleware",
    "TracingMiddleware",
    "build_pipeline",
]
