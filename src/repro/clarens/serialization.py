"""Wire-safe marshalling for the XML-RPC transport.

XML-RPC understands a small closed set of types: bool, int, float, str,
bytes, ISO dates, arrays and string-keyed structs (plus nil when
``allow_none`` is on).  Services, however, naturally return dataclasses,
enums, tuples and numpy scalars.  :func:`to_wire` lowers rich values into
the wire set recursively; :func:`from_wire` is the (structural) inverse used
on receipt.

The in-process transport runs values through the same functions so that the
two transports are observationally identical — a service that works in-sim
cannot break when moved onto real sockets.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.clarens.errors import SerializationError

# XML-RPC's int is 32-bit signed; wider ints must travel as doubles or strings.
_XMLRPC_INT_MIN = -(2**31)
_XMLRPC_INT_MAX = 2**31 - 1


def to_wire(value: Any) -> Any:
    """Lower *value* into XML-RPC-representable types.

    - dataclasses → structs (dicts) with a ``_type`` tag,
    - enums → their ``value``,
    - tuples/sets → arrays,
    - numpy scalars → Python scalars, numpy arrays → nested lists,
    - dict keys are coerced to str (XML-RPC structs require string keys),
    - ints outside the 32-bit range → floats.

    Raises :class:`SerializationError` for values with no representation
    (e.g. functions, arbitrary objects).
    """
    if value is None or isinstance(value, (bool, str, bytes)):
        return value
    if isinstance(value, enum.Enum):
        return to_wire(value.value)
    if isinstance(value, (np.integer,)):
        value = int(value)
    if isinstance(value, (np.floating,)):
        value = float(value)
    if isinstance(value, int):
        if _XMLRPC_INT_MIN <= value <= _XMLRPC_INT_MAX:
            return value
        return float(value)
    if isinstance(value, float):
        return value
    if isinstance(value, np.ndarray):
        return [to_wire(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {"_type": type(value).__name__}
        for f in dataclasses.fields(value):
            if f.name.startswith("_"):
                continue
            out[f.name] = to_wire(getattr(value, f.name))
        return out
    if isinstance(value, dict):
        return {str(k): to_wire(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [to_wire(v) for v in items]
    raise SerializationError(
        f"cannot marshal {type(value).__name__} value {value!r} onto the wire"
    )


def from_wire(value: Any) -> Any:
    """Structural identity pass over received wire values.

    XML-RPC already delivers plain Python types; this hook exists so both
    transports share one decode path (and so tests can assert the
    ``to_wire``/``from_wire`` round trip is stable).
    """
    if isinstance(value, dict):
        return {k: from_wire(v) for k, v in value.items()}
    if isinstance(value, list):
        return [from_wire(v) for v in value]
    return value


@dataclasses.dataclass
class MulticallResult:
    """One ``system.multicall`` sub-call outcome.

    Travels the wire as an ordinary dataclass struct (``_type`` tag plus
    fields, see :func:`to_wire`); :meth:`from_wire` rehydrates it on the
    client so callers deal with a typed value instead of an ad-hoc dict.
    ``trace_id`` is the batch's shared trace id, so every sub-call can be
    found in the host's ``system.recent_calls`` ring.
    """

    ok: bool
    result: Any = None
    code: int = 0
    error: str = ""
    trace_id: str = ""

    @classmethod
    def from_wire(cls, value: Any) -> "MulticallResult":
        """Rehydrate a wire struct (tolerates the legacy tag-less shape)."""
        if isinstance(value, MulticallResult):
            return value
        if not isinstance(value, dict) or "ok" not in value:
            raise SerializationError(
                f"not a multicall result struct: {value!r}"
            )
        return cls(
            ok=bool(value["ok"]),
            result=value.get("result"),
            code=int(value.get("code", 0)),
            error=str(value.get("error", "")),
            trace_id=str(value.get("trace_id", "")),
        )


# ----------------------------------------------------------------------
# trace-id propagation over the XML-RPC wire
# ----------------------------------------------------------------------
# The Clarens wire protocol puts the session token first in every call's
# parameter list.  Rather than change the method signatures (which would
# break 2005-era clients), a trace id piggybacks on that slot with a
# prefix no HMAC token can produce: ``!t=<trace-id>!<token>``.
_TRACE_TOKEN_PREFIX = "!t="


def encode_trace_token(token: str, trace_id: str) -> str:
    """Fold *trace_id* into the wire token field (identity when empty)."""
    if not trace_id:
        return token
    if "!" in trace_id:
        raise SerializationError(f"trace id {trace_id!r} may not contain '!'")
    return f"{_TRACE_TOKEN_PREFIX}{trace_id}!{token}"


def decode_trace_token(wire_token: str) -> Tuple[str, Optional[str]]:
    """Split a wire token field into ``(token, trace_id-or-None)``."""
    if not wire_token.startswith(_TRACE_TOKEN_PREFIX):
        return wire_token, None
    body = wire_token[len(_TRACE_TOKEN_PREFIX):]
    trace_id, sep, token = body.partition("!")
    if not sep:
        return wire_token, None
    return token, trace_id


# ----------------------------------------------------------------------
# JSON-representable view of wire values (the compact-JSON codec's half)
# ----------------------------------------------------------------------
# XML-RPC's wire set includes ``bytes``; JSON's does not.  Bytes travel as
# a two-element array tagged by a sentinel first element.  The sentinel
# starts with NUL, which no sane payload string uses — but payloads are
# adversarial (hypothesis says so), so any *list* whose first element is
# itself a sentinel string gets escape-tagged too.  Both sides can skip
# the recursive walk entirely when the JSON text contains no ``\u0000``
# escape, which is every real payload (see CompactJsonCodec).
_JSON_BYTES_TAG = "\x00b64"
_JSON_ESCAPE_TAG = "\x00esc"
_JSON_TAGS = (_JSON_BYTES_TAG, _JSON_ESCAPE_TAG)


def to_jsonable(value: Any) -> Any:
    """Lower a wire value (post-:func:`to_wire`) into JSON-only types."""
    if isinstance(value, bytes):
        import base64

        return [_JSON_BYTES_TAG, base64.b64encode(value).decode("ascii")]
    if isinstance(value, list):
        items = [to_jsonable(v) for v in value]
        if items and isinstance(items[0], str) and items[0] in _JSON_TAGS:
            return [_JSON_ESCAPE_TAG, *items]
        return items
    if isinstance(value, dict):
        return {k: to_jsonable(v) for k, v in value.items()}
    return value


def from_jsonable(value: Any) -> Any:
    """Invert :func:`to_jsonable` (bytes untagging, list unescaping)."""
    if isinstance(value, list):
        if value and value[0] == _JSON_BYTES_TAG:
            import base64

            return base64.b64decode(value[1])
        if value and value[0] == _JSON_ESCAPE_TAG:
            return [from_jsonable(v) for v in value[1:]]
        return [from_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: from_jsonable(v) for k, v in value.items()}
    return value


def check_wire_safe(value: Any) -> None:
    """Assert *value* is already wire-representable (post-``to_wire``)."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return
    if isinstance(value, list):
        for v in value:
            check_wire_safe(v)
        return
    if isinstance(value, dict):
        for k, v in value.items():
            if not isinstance(k, str):
                raise SerializationError(f"struct key {k!r} is not a string")
            check_wire_safe(v)
        return
    raise SerializationError(f"{type(value).__name__} is not wire-safe")
