"""Epoch-keyed read-path caching for the Clarens RPC surface.

The GAE's services are read-dominated: clients and the steering Optimizer
poll ``job_status``, queue positions, and runtime/queue estimates far more
often than state actually changes.  Following the MonALISA cached-snapshot
serving model, repeat reads are served from **versioned snapshots that are
invalidated by state-change events, not TTLs**:

- every mutating subsystem (simulation clock, scheduler, per-site Condor
  pools, monitoring DB, task history, at-submission estimates, accounting,
  MonALISA) bumps a named **epoch counter** in an :class:`EpochRegistry`
  whenever its state changes (see :func:`wire_epochs`);
- read methods declare, at registration time, which epochs their answer
  depends on (``@clarens_method(cache=ReadPolicy(depends_on=(...)))``);
- :class:`ReadCacheMiddleware` sits in the host pipeline right after ACL
  enforcement and serves a repeat call whose ``(method, canonical-args,
  epoch-vector)`` key is unchanged straight from the :class:`ReadCache`.

Because a cached entry is the *post-marshalling* wire value stored under
the exact epoch vector it was computed at, a hit is **bit-identical** to
what re-executing the method would have produced: any state change that
could alter the answer bumps a depended-on epoch, which changes the key
and forces re-execution.  There is no staleness window.

Cached wire values are shared, not copied — both transports already copy
on receipt (``from_wire`` rebuilds every container) and marshalled results
are treated as immutable everywhere in this codebase.

The same cache also backs **request coalescing**: ``system.multicall``
deduplicates identical read-policy sub-calls within one batch (executing
once, answering many), and the webui's hot pages memoize their rendered
payloads under pseudo-method names via :meth:`ReadCache.cached`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CANONICAL_EPOCHS",
    "EpochRegistry",
    "ReadCache",
    "ReadCacheMiddleware",
    "ReadPolicy",
    "canonical_args",
    "wire_epochs",
]

#: The canonical epoch taxonomy the full GAE wiring registers
#: (:func:`wire_epochs`).  ``tools/check_docs.py`` verifies every name is
#: documented in docs/ARCHITECTURE.md's epoch table.  ``pool:<site>`` is a
#: per-site family: one epoch per execution site, named ``pool:siteA`` etc.
CANONICAL_EPOCHS: Tuple[Tuple[str, str], ...] = (
    ("clock", "simulated time advanced (elapsed runtimes may differ)"),
    ("scheduler", "job planned/submitted/completed or staging progressed"),
    ("pool:<site>", "a site pool's job ads changed (state, priority, flock)"),
    ("monitoring", "monitoring DB upserted a task record"),
    ("history", "a completed-task record entered the estimator history"),
    ("estimates", "an at-submission runtime estimate was recorded"),
    ("accounting", "a quota was set, reserved, committed, or released"),
    ("monalisa", "a metric sample or job-state event was published"),
)


class EpochRegistry:
    """Named, monotonically increasing epoch counters (thread-safe).

    An epoch is bumped by its owning subsystem on every state change; a
    read's cache key embeds the current values of every epoch it depends
    on, so bumping any of them invalidates the cached answer by key
    mismatch.  Registering a new epoch (e.g. a site joining) also changes
    every wildcard-expanded vector, conservatively invalidating dependents.
    """

    def __init__(self) -> None:
        self._epochs: Dict[str, int] = {}
        self._lock = threading.Lock()
        # name-prefix -> sorted matching names, rebuilt when the name set
        # changes; lets vector() expand "pool:*" without rescanning.
        self._prefix_cache: Dict[str, Tuple[str, ...]] = {}

    def register(self, name: str) -> None:
        """Ensure *name* exists (at 0).  Idempotent."""
        with self._lock:
            if name not in self._epochs:
                self._epochs[name] = 0
                self._prefix_cache.clear()

    def bump(self, name: str) -> int:
        """Increment an epoch (auto-registering it); returns the new value."""
        with self._lock:
            value = self._epochs.get(name)
            if value is None:
                self._prefix_cache.clear()
                value = 0
            self._epochs[name] = value + 1
            return value + 1

    def bumper(self, name: str) -> Callable[..., None]:
        """A listener-friendly closure that bumps *name*, ignoring arguments.

        Registers the epoch immediately so introspection sees it before the
        first event fires.
        """
        self.register(name)

        def bump(*_args: Any, **_kwargs: Any) -> None:
            self.bump(name)

        return bump

    def get(self, name: str) -> int:
        """Current value of an epoch (0 when never registered)."""
        with self._lock:
            return self._epochs.get(name, 0)

    def names(self) -> List[str]:
        """Every registered epoch name, sorted."""
        with self._lock:
            return sorted(self._epochs)

    def snapshot(self) -> Dict[str, int]:
        """All epochs as a plain dict (wire-safe)."""
        with self._lock:
            return dict(self._epochs)

    def vector(self, depends_on: Sequence[str]) -> Tuple[int, ...]:
        """The current values of the named epochs, as a hashable tuple.

        A name ending in ``*`` expands to every registered epoch with that
        prefix, in sorted name order — ``pool:*`` covers all site pools.
        Unregistered exact names read as 0 (they invalidate correctly once
        the subsystem registers and starts bumping).
        """
        with self._lock:
            out: List[int] = []
            for name in depends_on:
                if name.endswith("*"):
                    prefix = name[:-1]
                    matches = self._prefix_cache.get(prefix)
                    if matches is None:
                        matches = tuple(
                            sorted(n for n in self._epochs if n.startswith(prefix))
                        )
                        self._prefix_cache[prefix] = matches
                    # Vector length changes when a new member registers, so
                    # every dependent key conservatively misses.
                    out.extend(self._epochs[n] for n in matches)
                else:
                    out.append(self._epochs.get(name, 0))
            return tuple(out)


@dataclass(frozen=True)
class ReadPolicy:
    """Declares a method read-only and names the epochs its answer reads.

    ``depends_on`` entries are epoch names; a trailing ``*`` is a prefix
    wildcard (``pool:*`` = every site pool).  Over-declaring dependencies
    costs only hit rate; *under*-declaring would serve stale answers, so
    when in doubt a method should depend on more epochs, not fewer.
    """

    depends_on: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.depends_on:
            raise ValueError("ReadPolicy needs at least one epoch dependency")
        for name in self.depends_on:
            if not name or name == "*":
                raise ValueError(f"invalid epoch dependency {name!r}")


_UNCACHEABLE = object()


def canonical_args(params: Sequence[Any]) -> Any:
    """A hashable canonical form of a call's positional parameters.

    Lists/tuples become tuples, dicts become sorted item tuples (all wire
    structs are string-keyed), scalars pass through.  Returns ``None`` for
    parameter sets with no canonical form (unhashable leaves) — the caller
    bypasses the cache for those.
    """
    frozen = _freeze(params)
    return None if frozen is _UNCACHEABLE else frozen


def _freeze(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (list, tuple)):
        out = []
        for v in value:
            f = _freeze(v)
            if f is _UNCACHEABLE:
                return _UNCACHEABLE
            out.append(f)
        return tuple(out)
    if isinstance(value, dict):
        items = []
        try:
            keys = sorted(value)
        except TypeError:
            return _UNCACHEABLE
        for k in keys:
            f = _freeze(value[k])
            if f is _UNCACHEABLE:
                return _UNCACHEABLE
            items.append((k, f))
        return ("__dict__", tuple(items))
    return _UNCACHEABLE


class _MethodCounters:
    """Per-method hit/miss/invalidation/coalesced counts (+ bound metrics)."""

    __slots__ = ("hits", "misses", "invalidations", "coalesced", "bound")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.coalesced = 0
        self.bound: Dict[str, Any] = {}

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "coalesced": self.coalesced,
        }


class ReadCache:
    """The epoch-keyed result cache behind :class:`ReadCacheMiddleware`.

    Entries live under ``(method, canonical-args)`` and remember the epoch
    vector they were computed at; a lookup whose current vector differs is
    an **invalidation** (the entry is dropped and recomputed), so stale
    results never accumulate.  Capacity is bounded by LRU eviction.
    """

    _MISS = object()

    def __init__(
        self,
        epochs: EpochRegistry,
        capacity: int = 4096,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("read-cache capacity must be positive")
        self.epochs = epochs
        self.capacity = capacity
        self.enabled = enabled
        self.evictions = 0
        self._entries: "OrderedDict[Tuple[str, Any], Tuple[Tuple[int, ...], Any]]" = (
            OrderedDict()
        )
        self._counters: Dict[str, _MethodCounters] = {}
        self._lock = threading.Lock()
        self._registry = None  # MetricsRegistry once bound

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def bind_metrics(self, registry: Any) -> None:
        """Mirror per-method counters into a ``MetricsRegistry``.

        Creates ``gae_rpc_cache_{hits,misses,invalidations,coalesced}_total``
        counters labelled by method, plus ``gae_rpc_cache_evictions_total``.
        """
        with self._lock:
            self._registry = registry
            self._eviction_counter = registry.counter(
                "gae_rpc_cache_evictions_total", "read-cache LRU evictions"
            ).bind()
            for method, counters in self._counters.items():
                self._bind_method(method, counters)

    def _bind_method(self, method: str, counters: _MethodCounters) -> None:
        # Called under self._lock with a registry present.
        for kind in ("hits", "misses", "invalidations", "coalesced"):
            counter = self._registry.counter(
                f"gae_rpc_cache_{kind}_total", f"read-cache {kind} by method"
            )
            counters.bound[kind] = counter.bind(method=method)
            existing = getattr(counters, kind)
            if existing:
                counters.bound[kind].inc(existing)

    def _counters_for(self, method: str) -> _MethodCounters:
        # Called under self._lock.
        counters = self._counters.get(method)
        if counters is None:
            counters = self._counters[method] = _MethodCounters()
            if self._registry is not None:
                self._bind_method(method, counters)
        return counters

    def _count(self, method: str, kind: str) -> None:
        with self._lock:
            counters = self._counters_for(method)
            setattr(counters, kind, getattr(counters, kind) + 1)
            bound = counters.bound.get(kind)
        if bound is not None:
            bound.inc()

    def note_coalesced(self, method: str) -> None:
        """Record that a multicall sub-call was answered by deduplication."""
        self._count(method, "coalesced")

    # ------------------------------------------------------------------
    # the cache proper
    # ------------------------------------------------------------------
    def lookup(self, method: str, args_key: Any, vector: Tuple[int, ...]) -> Any:
        """The cached value, or :attr:`ReadCache._MISS`.

        Counts a hit, a miss, or an invalidation (entry present but
        computed under an older epoch vector — dropped here, overwritten
        by the recompute's :meth:`store`).
        """
        key = (method, args_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_vector, value = entry
                if stored_vector == vector:
                    self._entries.move_to_end(key)
                    counters = self._counters_for(method)
                    counters.hits += 1
                    bound = counters.bound.get("hits")
                    if bound is not None:
                        bound.inc()
                    return value
                del self._entries[key]
                kind = "invalidations"
            else:
                kind = "misses"
            counters = self._counters_for(method)
            setattr(counters, kind, getattr(counters, kind) + 1)
            bound = counters.bound.get(kind)
        if bound is not None:
            bound.inc()
        return ReadCache._MISS

    def store(self, method: str, args_key: Any, vector: Tuple[int, ...], value: Any) -> None:
        """Remember a freshly computed wire value under its epoch vector."""
        key = (method, args_key)
        with self._lock:
            self._entries[key] = (vector, value)
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            if evicted:
                self.evictions += evicted
                bound = getattr(self, "_eviction_counter", None)
        if evicted and self._registry is not None and bound is not None:
            bound.inc(evicted)

    def cached(
        self,
        method: str,
        params: Sequence[Any],
        depends_on: Sequence[str],
        compute: Callable[[], Any],
    ) -> Any:
        """Serve ``compute()`` through the cache under a pseudo-method name.

        The webui's hot endpoints use this to share the RPC cache without
        going through the middleware; a disabled cache just computes.
        """
        if not self.enabled:
            return compute()
        args_key = canonical_args(list(params))
        if args_key is None:
            return compute()
        vector = self.epochs.vector(depends_on)
        value = self.lookup(method, args_key, vector)
        if value is not ReadCache._MISS:
            return value
        value = compute()
        self.store(method, args_key, vector, value)
        return value

    def clear(self) -> int:
        """Drop every entry; returns how many were held."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, Any]:
        """Wire-safe introspection struct (the ``system.cache`` payload)."""
        with self._lock:
            per_method = {m: c.as_dict() for m, c in self._counters.items()}
            size = len(self._entries)
            evictions = self.evictions
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "entries": size,
            "evictions": evictions,
            "per_method": per_method,
            "epochs": self.epochs.snapshot(),
        }


class ReadCacheMiddleware:
    """Serves repeat reads from the :class:`ReadCache`.

    Sits right after ACL enforcement (authentication and authorization
    always run per call) and before user middlewares and the terminal
    invoker.  Only methods registered with a ``cache=ReadPolicy(...)``
    participate; everything else flows through untouched.  Faults are
    never cached.  Hits stamp ``ctx.served_from = "cache"`` so telemetry
    keeps cached and executed latency series apart.
    """

    def __init__(self, cache: ReadCache) -> None:
        self.cache = cache

    def __call__(self, ctx: Any, call_next: Callable[[Any], Any]) -> Any:
        cache = self.cache
        entry = ctx.entry
        if not cache.enabled or entry is None:
            return call_next(ctx)
        policy: Optional[ReadPolicy] = getattr(entry, "cache", None)
        if policy is None or entry.pass_context:
            return call_next(ctx)
        args_key = canonical_args(ctx.params)
        if args_key is None:
            return call_next(ctx)
        if entry.pass_principal:
            # The answer may depend on who is asking.
            principal = ctx.principal
            args_key = (principal.user if principal is not None else "", args_key)
        vector = cache.epochs.vector(policy.depends_on)
        value = cache.lookup(ctx.method_path, args_key, vector)
        if value is not ReadCache._MISS:
            ctx.served_from = "cache"
            return value
        result = call_next(ctx)
        cache.store(ctx.method_path, args_key, vector, result)
        return result


# ----------------------------------------------------------------------
# epoch wiring
# ----------------------------------------------------------------------
def wire_epochs(
    epochs: EpochRegistry,
    *,
    sim: Any = None,
    scheduler: Any = None,
    pools: Optional[Dict[str, Any]] = None,
    db_manager: Any = None,
    history: Any = None,
    estimate_db: Any = None,
    quotas: Any = None,
    monalisa: Any = None,
) -> EpochRegistry:
    """Subscribe epoch bumps to every mutating subsystem's event seams.

    Everything is optional so partial rigs (a bare host in a unit test)
    can wire just what they have.  The epoch names are the canonical
    taxonomy in :data:`CANONICAL_EPOCHS`; per-site pool epochs are named
    ``pool:<site>``.  Duck-typed on the listener seams each subsystem
    already exposes, so this module needs no imports from the rest of the
    GAE.
    """
    if sim is not None:
        # Any clock advance can change elapsed runtimes (and everything
        # derived from them), even when no event fired — run_until lands
        # the clock on its target regardless.
        sim.clock.on_advance.append(epochs.bumper("clock"))
    if scheduler is not None:
        bump = epochs.bumper("scheduler")
        scheduler.plan_listeners.append(bump)
        scheduler.submission_listeners.append(bump)
        scheduler.completion_listeners.append(bump)
        scheduler.staging_listeners.append(bump)
    for name, pool in sorted((pools or {}).items()):
        bump = epochs.bumper(f"pool:{name}")
        pool.on_state_change.append(bump)
        pool.on_complete.append(bump)
        pool.on_failed.append(bump)
        pool.on_forwarded.append(bump)
    if db_manager is not None:
        db_manager.update_listeners.append(epochs.bumper("monitoring"))
    if history is not None:
        history.listeners.append(epochs.bumper("history"))
    if estimate_db is not None:
        estimate_db.subscribe(epochs.bumper("estimates"))
    if quotas is not None:
        quotas.listeners.append(epochs.bumper("accounting"))
    if monalisa is not None:
        bump = epochs.bumper("monalisa")
        monalisa.subscribe_metrics(bump)
        monalisa.subscribe_job_states(bump)
    return epochs
