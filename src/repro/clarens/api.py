"""The single public surface of the Clarens framework.

Import from here (or from :mod:`repro.clarens`, which re-exports this
module) rather than from the implementation modules — the submodule
layout is free to change between versions; this surface is not.

The surface groups into:

- **hosting** — :class:`ClarensHost` plus the two server front ends:
  :class:`XmlRpcServerHandle` (threaded HTTP/XML-RPC, one thread per
  connection) and :class:`AsyncSocketServerHandle` (asyncio framed
  protocol: persistent connections, pipelining, codec negotiation);
- **clients** — :class:`ClarensClient` / :class:`ServiceProxy` over a
  :class:`Transport`: :class:`LoopbackTransport` (in-process),
  :class:`SocketTransport` (XML-RPC over HTTP) and
  :class:`AsyncSocketTransport` (framed, pipelined);
  :func:`resolve_transport` maps endpoint strings to transports;
- **codecs** — the negotiable wire encodings of the framed transport
  (:func:`get_codec`, :func:`codec_names`, :func:`negotiate`);
- **framework plumbing** — registry, auth, ACL, middleware, telemetry,
  discovery, serialization helpers and the fault hierarchy.

The pre-redesign names ``InProcessTransport`` and ``XmlRpcTransport``
remain importable from :mod:`repro.clarens` (not from here) and warn with
``DeprecationWarning``.
"""

from __future__ import annotations

from repro.clarens.acl import AccessControlList, AclRule
from repro.clarens.aio import AsyncSocketServerHandle
from repro.clarens.auth import ANONYMOUS, AuthService, Principal, UserDatabase
from repro.clarens.client import ClarensClient, ServiceProxy, resolve_transport
from repro.clarens.codecs import Codec, codec_names, get_codec, negotiate
from repro.clarens.discovery import DiscoveryNetwork, Peer
from repro.clarens.errors import (
    AuthenticationError,
    AuthorizationError,
    ClarensFault,
    MethodNotFound,
    ProtocolError,
    RemoteFault,
    SerializationError,
    ServiceNotFound,
    TransportClosedError,
    TransportError,
)
from repro.clarens.middleware import CallContext, Middleware
from repro.clarens.registry import ServiceRegistry, clarens_method
from repro.clarens.serialization import MulticallResult, from_wire, to_wire
from repro.clarens.server import ClarensHost, XmlRpcServerHandle
from repro.clarens.telemetry import CallStats, TraceLog, TraceRecord, new_trace_id
from repro.clarens.transport import (
    AsyncSocketTransport,
    LoopbackTransport,
    SocketTransport,
    Transport,
    parse_framed_address,
)

__all__ = [
    "ANONYMOUS",
    "AccessControlList",
    "AclRule",
    "AsyncSocketServerHandle",
    "AsyncSocketTransport",
    "AuthService",
    "AuthenticationError",
    "AuthorizationError",
    "CallContext",
    "CallStats",
    "ClarensClient",
    "ClarensFault",
    "ClarensHost",
    "Codec",
    "DiscoveryNetwork",
    "LoopbackTransport",
    "MethodNotFound",
    "Middleware",
    "MulticallResult",
    "Peer",
    "Principal",
    "ProtocolError",
    "RemoteFault",
    "SerializationError",
    "ServiceNotFound",
    "ServiceProxy",
    "ServiceRegistry",
    "SocketTransport",
    "TraceLog",
    "TraceRecord",
    "Transport",
    "TransportClosedError",
    "TransportError",
    "UserDatabase",
    "XmlRpcServerHandle",
    "clarens_method",
    "codec_names",
    "from_wire",
    "get_codec",
    "negotiate",
    "new_trace_id",
    "parse_framed_address",
    "resolve_transport",
    "to_wire",
]
