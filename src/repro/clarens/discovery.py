"""Peer-to-peer service lookup and discovery.

Clarens "enables users and services to dynamically discover other services
and resources within the GAE through a peer-to-peer based lookup service"
(§3, [5]).  We reproduce the mechanism: Clarens hosts form an unstructured
peer network; a lookup floods outward from the querying peer with a TTL,
each peer answering from its local registry and forwarding to neighbours.

Results are deterministic: peers forward to neighbours in registration
order and de-duplicate by host name, so tests can assert exact outcomes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.clarens.errors import ServiceNotFound
from repro.clarens.server import ClarensHost


@dataclass(frozen=True)
class LookupResult:
    """One discovered service instance."""

    host_name: str
    service_name: str
    hops: int


class Peer:
    """A Clarens host participating in the discovery network."""

    def __init__(self, host: ClarensHost) -> None:
        self.host = host
        self.neighbours: List["Peer"] = []

    @property
    def name(self) -> str:
        return self.host.name

    def connect(self, other: "Peer") -> None:
        """Create a bidirectional peering (idempotent)."""
        if other is self:
            raise ValueError("a peer cannot neighbour itself")
        if other not in self.neighbours:
            self.neighbours.append(other)
        if self not in other.neighbours:
            other.neighbours.append(self)

    def local_lookup(self, service_name: str) -> bool:
        """Whether this peer's host serves *service_name* locally."""
        return self.host.registry.has(service_name)


class DiscoveryNetwork:
    """The collection of peers plus the flooding lookup algorithm."""

    def __init__(self) -> None:
        self._peers: Dict[str, Peer] = {}

    def add_host(self, host: ClarensHost) -> Peer:
        """Wrap a host in a peer and add it to the network."""
        if host.name in self._peers:
            raise ValueError(f"peer {host.name!r} already in the network")
        peer = Peer(host)
        self._peers[host.name] = peer
        return peer

    def peer(self, name: str) -> Peer:
        """Look a peer up by host name."""
        try:
            return self._peers[name]
        except KeyError:
            raise ServiceNotFound(f"no peer named {name!r}") from None

    def connect(self, a: str, b: str) -> None:
        """Peer two hosts by name."""
        self.peer(a).connect(self.peer(b))

    def peers(self) -> List[str]:
        """All peer names, sorted."""
        return sorted(self._peers)

    # ------------------------------------------------------------------
    def find(
        self, service_name: str, start: str, ttl: int = 3
    ) -> List[LookupResult]:
        """TTL-limited flood lookup from peer *start*.

        Returns every instance of *service_name* reachable within *ttl*
        hops, closest first (breadth-first), ties broken by host name.
        """
        if ttl < 0:
            raise ValueError(f"ttl must be non-negative, got {ttl}")
        origin = self.peer(start)
        results: List[LookupResult] = []
        visited: Set[str] = {origin.name}
        frontier: deque = deque([(origin, 0)])
        while frontier:
            peer, hops = frontier.popleft()
            if peer.local_lookup(service_name):
                results.append(
                    LookupResult(host_name=peer.name, service_name=service_name, hops=hops)
                )
            if hops >= ttl:
                continue
            for neighbour in peer.neighbours:
                if neighbour.name not in visited:
                    visited.add(neighbour.name)
                    frontier.append((neighbour, hops + 1))
        results.sort(key=lambda r: (r.hops, r.host_name))
        return results

    def find_one(self, service_name: str, start: str, ttl: int = 3) -> LookupResult:
        """The closest instance (ServiceNotFound when none is reachable)."""
        results = self.find(service_name, start, ttl=ttl)
        if not results:
            raise ServiceNotFound(
                f"service {service_name!r} not reachable from {start!r} within ttl={ttl}"
            )
        return results[0]
