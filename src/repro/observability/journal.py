"""Append-only structured journal of job lifecycle events.

Every interesting transition in a job's life — from submission through
scheduling, dispatch, steering verbs, faults, recovery, and output
retrieval — is recorded as a typed :class:`JournalEvent` stamped with
simulation time and the job's trace context.  ``timeline(task_id)``
reconstructs the per-task story in order; the JSONL export (see
:mod:`repro.observability.export`) serialises the same rows.

The event taxonomy lives in :class:`EventType`; ``tools/check_docs.py``
verifies that ``docs/ARCHITECTURE.md`` documents every member, so the
enum and the docs cannot drift apart.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Optional

from repro.store.base import StateStore
from repro.store.registry import OBSERVABILITY_JOURNAL, namespace_record

__all__ = [
    "EventJournal",
    "EventType",
    "JournalEvent",
    "JOURNAL_SCHEMA_VERSION",
    "OutOfOrderError",
]

#: Version of the journal row schema.  Version 2 adds the event-sourced
#: write path: ``estimate-recorded``, ``monitoring-updated``,
#: ``metric-published`` and ``history-recorded`` rows that downstream
#: consumers fold into their state (see :mod:`repro.observability.eventbus`).
JOURNAL_SCHEMA_VERSION = 2


class OutOfOrderError(ValueError):
    """An imported journal stream violated monotonic ``seq`` order."""


class EventType(str, enum.Enum):
    """Typed lifecycle events a job can emit.

    The two ``health-*`` members are not job events: the health-rule
    engine (:mod:`repro.observability.health`) records rule transitions
    in the same journal, with the rule name in ``task_id``, so chaos
    campaigns can read *when* the system degraded and recovered from the
    one event stream every other post-hoc analysis already uses.
    """

    SUBMITTED = "submitted"
    SCHEDULED = "scheduled"
    DISPATCHED = "dispatched"
    STARTED = "started"
    PAUSED = "paused"
    RESUMED = "resumed"
    PRIORITY_CHANGED = "priority-changed"
    MOVED = "moved"
    FLOCK_FORWARDED = "flock-forwarded"
    FAILED = "failed"
    RECOVERED = "recovered"
    KILLED = "killed"
    COMPLETED = "completed"
    OUTPUT_RETRIEVED = "output-retrieved"
    HEALTH_FIRING = "health-firing"
    HEALTH_RESOLVED = "health-resolved"
    # Journal-schema v2: state-change events consumed by the event-sourced
    # write path (repro.observability.eventbus).  Each carries the full
    # payload a consumer needs to fold the change into its store.
    ESTIMATE_RECORDED = "estimate-recorded"
    MONITORING_UPDATED = "monitoring-updated"
    METRIC_PUBLISHED = "metric-published"
    HISTORY_RECORDED = "history-recorded"


#: Shared empty mapping for the (very common) attribute-less event, so a
#: journal at capacity does not hold one throwaway dict per row.
_NO_ATTRIBUTES: Dict[str, Any] = MappingProxyType({})  # type: ignore[assignment]


@dataclass(frozen=True, slots=True)
class JournalEvent:
    """One immutable journal row."""

    seq: int
    time: float
    type: EventType
    task_id: str
    job_id: Optional[str] = None
    site: Optional[str] = None
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "type": self.type.value,
            "task_id": self.task_id,
            "job_id": self.job_id,
            "site": self.site,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "attributes": dict(self.attributes),
        }


class EventJournal:
    """Thread-safe, bounded, append-only event store.

    ``capacity`` bounds memory like the tracer's span store; ``seq`` is a
    monotonically increasing tie-breaker so events recorded at the same
    simulation instant keep their causal recording order.
    """

    def __init__(self, clock: Callable[[], float], capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self._events: deque = deque(maxlen=capacity)
        self._seq = itertools.count()
        self.capacity = capacity
        self.listeners: List[Callable[[JournalEvent], None]] = []
        self._head_seq = -1

    @property
    def head_seq(self) -> int:
        """``seq`` of the most recently recorded event, ``-1`` when empty.

        Unlike ``self._events[-1].seq`` this survives eviction-free and
        is what incremental checkpoints use as the high-water mark.
        """
        return self._head_seq

    def record(
        self,
        type: EventType,
        task_id: str,
        *,
        job_id: Optional[str] = None,
        site: Optional[str] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        time: Optional[float] = None,
        **attributes: Any,
    ) -> JournalEvent:
        event = JournalEvent(
            seq=next(self._seq),
            time=self._clock() if time is None else time,
            type=type if type.__class__ is EventType else EventType(type),
            task_id=task_id,
            job_id=job_id,
            site=site,
            trace_id=trace_id,
            span_id=span_id,
            attributes=attributes if attributes else _NO_ATTRIBUTES,
        )
        # deque.append is atomic under the GIL; readers use _snapshot().
        self._events.append(event)
        self._head_seq = event.seq
        for listener in self.listeners:
            listener(event)
        return event

    def _snapshot(self) -> List[JournalEvent]:
        while True:
            try:
                return list(self._events)
            except RuntimeError:  # a concurrent append moved the deque under us
                continue

    # -- queries -------------------------------------------------------

    def events(
        self,
        *,
        type: Optional[EventType] = None,
        task_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[JournalEvent]:
        snapshot = self._snapshot()
        if type is not None:
            snapshot = [e for e in snapshot if e.type is EventType(type)]
        if task_id is not None:
            snapshot = [e for e in snapshot if e.task_id == task_id]
        if limit is not None:
            snapshot = snapshot[-limit:]
        return snapshot

    def timeline(self, task_id: str) -> List[JournalEvent]:
        """Every event for one task, in (time, seq) order."""
        return sorted(self.events(task_id=task_id), key=lambda e: (e.time, e.seq))

    def events_since(self, seq: int) -> List[JournalEvent]:
        """Every retained event with ``seq`` strictly greater than ``seq``.

        The tail a consumer replays to catch its cursor up to the head,
        and the delta an incremental checkpoint persists.
        """
        return [e for e in self._snapshot() if e.seq > seq]

    def task_ids(self) -> List[str]:
        snapshot = self._snapshot()
        seen: List[str] = []
        known = set()
        for e in snapshot:
            if e.task_id not in known:
                known.add(e.task_id)
                seen.append(e.task_id)
        return seen

    def __len__(self) -> int:
        return len(self._events)  # len() is atomic under the GIL

    # -- persistence (state-store backend) ------------------------------

    def save_to(self, store: StateStore) -> int:
        """Write every retained event into ``observability.journal``."""
        store.register_namespace(namespace_record(OBSERVABILITY_JOURNAL))
        store.clear(OBSERVABILITY_JOURNAL)
        return store.put_many(
            OBSERVABILITY_JOURNAL,
            ((f"{e.seq:012d}", e.to_wire()) for e in self._snapshot()),
        )

    def load_from(self, store: StateStore) -> int:
        """Replace contents from ``observability.journal``.

        Events are appended directly (listeners do **not** fire — a
        restore replays state, not events) and the sequence counter is
        re-seeded past the highest restored ``seq`` so new events keep
        the monotonic order.  A stream whose ``seq`` values are not
        strictly increasing is rejected with :class:`OutOfOrderError`
        before any row is applied — a corrupt or hand-spliced store must
        not silently produce a journal consumers cannot fold.
        """
        rows = [row for _, row in store.items(OBSERVABILITY_JOURNAL)]
        last_seq = -1
        for row in rows:
            if row["seq"] <= last_seq:
                raise OutOfOrderError(
                    f"journal import: seq {row['seq']} after {last_seq} "
                    "violates monotonic order"
                )
            last_seq = row["seq"]
        self._events.clear()
        max_seq = -1
        for row in rows:
            attributes = row["attributes"] or _NO_ATTRIBUTES
            event = JournalEvent(
                seq=row["seq"],
                time=row["time"],
                type=EventType(row["type"]),
                task_id=row["task_id"],
                job_id=row["job_id"],
                site=row["site"],
                trace_id=row["trace_id"],
                span_id=row["span_id"],
                attributes=attributes,
            )
            self._events.append(event)
            max_seq = max(max_seq, event.seq)
        self._seq = itertools.count(max_seq + 1)
        self._head_seq = max_seq
        return len(self._events)
