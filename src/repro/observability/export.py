"""JSONL export of spans and journal events, plus schema validation.

The export format is line-delimited JSON: a ``meta`` header row, then
one row per span and one per journal event, each tagged with ``kind``.
The shape is pinned by ``docs/schemas/trace_export.schema.json``; CI
runs the tiny demo, exports, and validates every row against that
schema so the wire format cannot drift silently.

The validator implements the small JSON-Schema subset the checked-in
schema uses (``type``, ``properties``, ``required``, ``enum``,
``items``, ``oneOf``, ``const``) — no third-party dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.observability.journal import (
    JOURNAL_SCHEMA_VERSION,
    EventJournal,
    OutOfOrderError,
)
from repro.observability.tracing import Tracer

__all__ = [
    "EXPORT_SCHEMA_VERSION",
    "ExportValidationError",
    "export_observability",
    "load_export",
    "validate_export_file",
]

#: /2 adds the journal row-schema version to the meta header and the
#: strict monotonic-``seq`` ordering guarantee for event rows (imports
#: reject violations — see :func:`load_export`).
EXPORT_SCHEMA_VERSION = "gae-trace-export/2"


class ExportValidationError(ValueError):
    """An export row does not match the trace-export schema."""


def export_observability(
    path: Union[str, Path],
    tracer: Tracer,
    journal: EventJournal,
    *,
    trace_id: Optional[str] = None,
    sim_now: Optional[float] = None,
) -> int:
    """Write spans + events to *path* as JSONL; returns the row count.

    With ``trace_id`` only that trace's spans (and the events stamped
    with it) are exported; by default everything in the bounded stores
    goes out.
    """
    spans = tracer.spans(trace_id)
    events = journal.events()
    if trace_id is not None:
        events = [e for e in events if e.trace_id == trace_id]
    rows: List[Dict[str, Any]] = [
        {
            "kind": "meta",
            "schema": EXPORT_SCHEMA_VERSION,
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "sim_now": sim_now,
            "span_count": len(spans),
            "event_count": len(events),
        }
    ]
    rows.extend({"kind": "span", **span.to_wire()} for span in spans)
    rows.extend({"kind": "event", **event.to_wire()} for event in events)
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, separators=(",", ":")) + "\n")
    return len(rows)


def load_export(path: Union[str, Path]) -> Dict[str, List[Dict[str, Any]]]:
    """Read a JSONL export back into ``{"meta": [...], "span": [...], "event": [...]}``.

    Event rows must arrive in strictly increasing ``seq`` order — the
    journal is a monotonically sequenced log, and an out-of-order stream
    (a corrupt or hand-spliced export) is rejected with
    :class:`~repro.observability.journal.OutOfOrderError` rather than
    silently producing a log consumers cannot fold.
    """
    out: Dict[str, List[Dict[str, Any]]] = {"meta": [], "span": [], "event": []}
    last_seq: Optional[int] = None
    with Path(path).open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ExportValidationError(f"line {line_no}: invalid JSON: {exc}") from exc
            kind = row.get("kind")
            if kind not in out:
                raise ExportValidationError(f"line {line_no}: unknown row kind {kind!r}")
            if kind == "event":
                seq = row.get("seq")
                if last_seq is not None and isinstance(seq, int) and seq <= last_seq:
                    raise OutOfOrderError(
                        f"line {line_no}: event seq {seq} after {last_seq} "
                        "violates monotonic order"
                    )
                if isinstance(seq, int):
                    last_seq = seq
            out[kind].append(row)
    return out


# ----------------------------------------------------------------------
# minimal JSON-Schema checker
# ----------------------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check(value: Any, schema: Dict[str, Any], path: str) -> List[str]:
    errors: List[str] = []
    if "oneOf" in schema:
        branches = schema["oneOf"]
        branch_errors = []
        for branch in branches:
            errs = _check(value, branch, path)
            if not errs:
                return []
            branch_errors.append(errs)
        flat = "; ".join(e for errs in branch_errors for e in errs[:1])
        return [f"{path}: no oneOf branch matched ({flat})"]
    if "const" in schema and value != schema["const"]:
        return [f"{path}: expected {schema['const']!r}, got {value!r}"]
    if "enum" in schema and value not in schema["enum"]:
        return [f"{path}: {value!r} not in enum {schema['enum']!r}"]
    type_spec = schema.get("type")
    if type_spec is not None:
        types = type_spec if isinstance(type_spec, list) else [type_spec]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            return [f"{path}: expected type {type_spec}, got {type(value).__name__}"]
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                errors.extend(_check(value[key], subschema, f"{path}.{key}"))
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(_check(item, schema["items"], f"{path}[{i}]"))
    return errors


def validate_export_file(path: Union[str, Path], schema_path: Union[str, Path]) -> int:
    """Validate every JSONL row in *path* against the row schema.

    Returns the number of validated rows; raises
    :class:`ExportValidationError` on the first bad row, on a missing
    meta header, or on an empty file.
    """
    schema = json.loads(Path(schema_path).read_text(encoding="utf-8"))
    count = 0
    saw_meta = False
    with Path(path).open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ExportValidationError(f"line {line_no}: invalid JSON: {exc}") from exc
            errors = _check(row, schema, f"line {line_no}")
            if errors:
                raise ExportValidationError("; ".join(errors))
            if isinstance(row, dict) and row.get("kind") == "meta":
                if line_no != 1:
                    raise ExportValidationError(f"line {line_no}: meta row must come first")
                saw_meta = True
            count += 1
    if count == 0:
        raise ExportValidationError(f"{path}: empty export")
    if not saw_meta:
        raise ExportValidationError(f"{path}: missing meta header row")
    return count
