"""Unified metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per GAE collects named instruments from
steering, monitoring, estimators, condor and accounting, so a single
``system.observability`` call (or the webui ``/metrics`` endpoint) can
expose them all.  Histograms reuse the sliding-window
:class:`~repro.clarens.telemetry.LatencyReservoir` behind ``CallStats``
rather than growing a second percentile implementation.

Naming convention (documented in docs/ARCHITECTURE.md): metric names are
``gae_<area>_<what>[_total]`` — snake_case, ``gae_`` prefix, ``_total``
suffix for monotonic counters — and labels are lowercase identifiers
(``site``, ``command``, ``state``...).  Values are simulation-domain
unless the name says otherwise.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clarens.telemetry import LatencyReservoir, percentile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    # The 0- and 1-label cases dominate the instrumentation hot path;
    # skip the sort for them (a 1-tuple is trivially sorted).
    if not labels:
        return ()
    if len(labels) == 1:
        [(k, v)] = labels.items()
        return ((k, str(v)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


class _Instrument:
    """Shared bookkeeping: name, help text, per-labelset storage, lock."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def snapshot(self) -> Dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError

    def prometheus_lines(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class _BoundCounter:
    """A counter pre-bound to one labelset — the allocation-free hot path."""

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: LabelKey) -> None:
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        counter, key = self._counter, self._key
        with counter._lock:
            counter._values[key] = counter._values.get(key, 0.0) + amount


class Counter(_Instrument):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def bind(self, **labels: Any) -> _BoundCounter:
        """A handle with the labelset resolved once, for per-event call sites."""
        return _BoundCounter(self, _label_key(labels))

    def export_state(self) -> Dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "kind": self.kind,
            "help": self.help,
            "values": [[[list(pair) for pair in k], v] for k, v in values.items()],
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        with self._lock:
            self._values = {
                tuple((k, v) for k, v in pairs): float(value)
                for pairs, value in state["values"]
            }

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "kind": self.kind,
            "help": self.help,
            "values": {_label_str(k) or "": v for k, v in sorted(values.items())},
        }

    def prometheus_lines(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        with self._lock:
            values = dict(self._values)
        for key, value in sorted(values.items()):
            lines.append(f"{self.name}{_label_str(key)} {value:g}")
        return lines


class Gauge(_Instrument):
    """Point-in-time value; set explicitly or backed by a callable."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}
        self._fn = fn

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        if self._fn is not None and not labels:
            return float(self._fn())
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def export_state(self) -> Dict[str, Any]:
        # Only explicitly-set values travel; fn-backed values recompute
        # from whatever live object the gauge observes after a restore.
        with self._lock:
            values = dict(self._values)
        return {
            "kind": self.kind,
            "help": self.help,
            "values": [[[list(pair) for pair in k], v] for k, v in values.items()],
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        with self._lock:
            self._values = {
                tuple((k, v) for k, v in pairs): float(value)
                for pairs, value in state["values"]
            }

    def _current(self) -> Dict[LabelKey, float]:
        with self._lock:
            values = dict(self._values)
        if self._fn is not None:
            values[()] = float(self._fn())
        return values

    def total(self) -> float:
        """Sum over every labelset (including the fn-backed value)."""
        return sum(self._current().values())

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "values": {_label_str(k) or "": v for k, v in sorted(self._current().items())},
        }

    def prometheus_lines(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        for key, value in sorted(self._current().items()):
            lines.append(f"{self.name}{_label_str(key)} {value:g}")
        return lines


class _HistogramSeries:
    __slots__ = ("count", "sum", "max", "reservoir")

    def __init__(self, cap: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.reservoir = LatencyReservoir(cap)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        self.reservoir.add(value)

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {"count": float(self.count), "sum": self.sum, "max": self.max}
        samples = self.reservoir.samples
        if samples:
            ordered = sorted(samples)
            out["p50"] = percentile(ordered, 50)
            out["p95"] = percentile(ordered, 95)
            out["p99"] = percentile(ordered, 99)
        return out

    def export_state(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "samples": list(self.reservoir.samples),
            "next": self.reservoir._next,
        }

    @classmethod
    def from_state(cls, cap: int, state: Dict[str, Any]) -> "_HistogramSeries":
        series = cls(cap)
        series.count = int(state["count"])
        series.sum = float(state["sum"])
        series.max = float(state["max"])
        series.reservoir.samples = [float(v) for v in state["samples"]]
        series.reservoir._next = int(state["next"])
        return series


class _BoundHistogram:
    """A histogram pre-bound to one labelset — the allocation-free hot path."""

    __slots__ = ("_histogram", "_key")

    def __init__(self, histogram: "Histogram", key: LabelKey) -> None:
        self._histogram = histogram
        self._key = key

    def observe(self, value: float) -> None:
        histogram, key = self._histogram, self._key
        with histogram._lock:
            series = histogram._series.get(key)
            if series is None:
                series = histogram._series[key] = _HistogramSeries(histogram._cap)
            series.observe(value)


class Histogram(_Instrument):
    """Distribution summary over a sliding reservoir of observations."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", reservoir_cap: int = 512) -> None:
        super().__init__(name, help)
        self._series: Dict[LabelKey, _HistogramSeries] = {}
        self._cap = reservoir_cap

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(self._cap)
            series.observe(value)

    def bind(self, **labels: Any) -> "_BoundHistogram":
        """A handle with the labelset resolved once, for per-event call sites."""
        return _BoundHistogram(self, _label_key(labels))

    def export_state(self) -> Dict[str, Any]:
        with self._lock:
            series = {k: s.export_state() for k, s in self._series.items()}
        return {
            "kind": self.kind,
            "help": self.help,
            "cap": self._cap,
            "series": [[[list(pair) for pair in k], s] for k, s in series.items()],
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        with self._lock:
            self._cap = int(state.get("cap", self._cap))
            self._series = {
                tuple((k, v) for k, v in pairs): _HistogramSeries.from_state(self._cap, s)
                for pairs, s in state["series"]
            }

    def summary(self, **labels: Any) -> Dict[str, float]:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.summary() if series is not None else {}

    def total_count(self) -> float:
        """Observation count summed over every labelset."""
        with self._lock:
            return float(sum(s.count for s in self._series.values()))

    def merged_summary(self) -> Dict[str, float]:
        """Count/sum/max plus p50/p95/p99 over all labelsets' reservoirs."""
        with self._lock:
            series = list(self._series.values())
            merged: List[float] = []
            for s in series:
                merged.extend(s.reservoir.samples)
            out: Dict[str, float] = {
                "count": float(sum(s.count for s in series)),
                "sum": sum(s.sum for s in series),
                "max": max((s.max for s in series), default=0.0),
            }
        if merged:
            ordered = sorted(merged)
            out["p50"] = percentile(ordered, 50)
            out["p95"] = percentile(ordered, 95)
            out["p99"] = percentile(ordered, 99)
        return out

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            summaries = {k: s.summary() for k, s in self._series.items()}
        return {
            "kind": self.kind,
            "help": self.help,
            "values": {_label_str(k) or "": v for k, v in sorted(summaries.items())},
        }

    def prometheus_lines(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} summary"]
        with self._lock:
            summaries = sorted((k, s.summary()) for k, s in self._series.items())
        for key, summary in summaries:
            base = dict(key)
            for q, field in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                if field in summary:
                    quantile_key = _label_key({**base, "quantile": q})
                    lines.append(f"{self.name}{_label_str(quantile_key)} {summary[field]:g}")
            lines.append(f"{self.name}_sum{_label_str(key)} {summary['sum']:g}")
            lines.append(f"{self.name}_count{_label_str(key)} {summary['count']:g}")
        return lines


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Asking twice for the same name returns the same instrument; asking
    for an existing name with a different kind raises ``ValueError`` so
    two services cannot silently fight over one series.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs: Any):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, fn=fn)

    def histogram(self, name: str, help: str = "", reservoir_cap: int = 512) -> Histogram:
        return self._get_or_create(Histogram, name, help, reservoir_cap=reservoir_cap)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """Wire-safe snapshot of every instrument, keyed by name."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def prometheus_lines(self) -> List[str]:
        """Prometheus text-exposition lines for every instrument."""
        with self._lock:
            instruments = [inst for _, inst in sorted(self._instruments.items())]
        lines: List[str] = []
        for inst in instruments:
            lines.extend(inst.prometheus_lines())
        return lines

    # -- persistence (state-store backend) ------------------------------

    def save_to(self, store: "StateStore") -> int:
        """Write every instrument's state into ``observability.metrics``."""
        from repro.store.registry import OBSERVABILITY_METRICS, namespace_record

        store.register_namespace(namespace_record(OBSERVABILITY_METRICS))
        store.clear(OBSERVABILITY_METRICS)
        with self._lock:
            instruments = dict(self._instruments)
        return store.put_many(
            OBSERVABILITY_METRICS,
            ((name, inst.export_state()) for name, inst in instruments.items()),
        )

    def load_from(self, store: "StateStore") -> int:
        """Restore instrument values from ``observability.metrics``.

        Instruments already registered (the normal case after rebuilding
        a GAE) get their values replaced in place, preserving any bound
        handles and gauge callables; unknown names are re-created from
        the stored kind/help.
        """
        from repro.store.registry import OBSERVABILITY_METRICS

        classes = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        n = 0
        for name, state in store.items(OBSERVABILITY_METRICS):
            cls = classes[state["kind"]]
            inst = self._get_or_create(cls, name, state.get("help", ""))
            inst.import_state(state)
            n += 1
        return n
