"""The event-sourced core: the journal as the authoritative write path.

Until PR 9 the :class:`~repro.observability.journal.EventJournal` merely
*observed* the system — accounting, the monitoring DB, MonALISA, and the
estimator history each mutated their own state directly.  This module
inverts that: every lifecycle state change is journalled **first** and the
downstream stores become replayable *consumers* whose state is a pure fold
over the sequenced log.

Wiring (see :func:`repro.gae.build_gae`):

- :class:`EventCore` owns the consumer registry and appends one dispatch
  listener to the journal; its ``emit_*`` methods are installed on the
  producers' seams (``EstimatorService.estimate_sink``,
  ``HistoryRecorder.sink``, ``DBManager.emit``,
  ``MonALISARepository.emit``).  A producer whose seam is ``None`` keeps
  its original direct write path, so stand-alone objects and old tests
  are untouched.
- Each :class:`JournalConsumer` folds the event kinds it cares about into
  its backing store, tracks a monotone ``cursor`` (the highest journal
  ``seq`` it has seen), and can **rebuild** its state from a baseline plus
  the journal tail — :meth:`JournalConsumer.verify` checks the rebuilt
  fingerprint is bit-identical to the live one.
- Incremental checkpoints (:mod:`repro.store.checkpoint`) persist the
  per-consumer cursors (``eventcore.cursors`` namespace) and restore a
  consumer as *base snapshot + quiet replay of the journal tail*.

The consumer table in ``docs/ARCHITECTURE.md`` is drift-gated against
:data:`CONSUMER_NAMES` by ``tools/check_docs.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.core.estimators.queue_time import RuntimeEstimateDB
from repro.core.monitoring.records import MonitoringRecord
from repro.monalisa.repository import JobStateEvent, MonALISARepository
from repro.observability.journal import (
    JOURNAL_SCHEMA_VERSION,
    EventJournal,
    EventType,
    JournalEvent,
)

__all__ = [
    "CONSUMER_NAMES",
    "DERIVED_EVENT_TYPES",
    "EventCore",
    "JournalConsumer",
    "EstimatorConsumer",
    "MonitoringConsumer",
    "MonALISAConsumer",
    "AccountingConsumer",
]

#: Journal-schema-v2 event kinds that *carry* a state change (as opposed
#: to merely describing a lifecycle transition).  Kept here so tests and
#: the CLI can separate the classic lifecycle timeline from the
#: event-sourced write traffic.
DERIVED_EVENT_TYPES: FrozenSet[EventType] = frozenset(
    {
        EventType.ESTIMATE_RECORDED,
        EventType.MONITORING_UPDATED,
        EventType.METRIC_PUBLISHED,
        EventType.HISTORY_RECORDED,
    }
)

#: Registration order of the shipped consumers (monitoring before
#: monalisa: the SQL upsert lands before the derived MonALISA publish,
#: matching the pre-event-sourced ``DBManager.update`` ordering).
CONSUMER_NAMES: Tuple[str, ...] = (
    "estimators",
    "monitoring",
    "monalisa",
    "accounting",
)


class JournalConsumer:
    """Base class: a store that is a pure fold over the event log.

    Subclasses define ``kinds`` (the event types they fold) and
    ``namespaces`` (the store namespaces holding their materialised
    state — skipped by incremental checkpoints), and implement the live
    fold (:meth:`apply`), the quiet fold (:meth:`replay` — no
    cross-subsystem fan-out, used when restoring from snapshot + tail),
    and the rebuild/verify pair.

    The ``cursor`` advances on *every* dispatched event — not just
    interesting ones — so ``lag = journal.head_seq - cursor`` is a
    meaningful staleness measure for every consumer.
    """

    name: str = ""
    kinds: FrozenSet[EventType] = frozenset()
    namespaces: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self._cursor = -1
        self.events_applied = 0
        self.baseline_seq = -1

    @property
    def cursor(self) -> int:
        """Highest journal ``seq`` this consumer has observed."""
        return self._cursor

    def note(self, event: JournalEvent) -> None:
        """Advance the cursor past an event this consumer ignores."""
        self._cursor = event.seq

    def apply(self, event: JournalEvent) -> None:
        """Fold one event into live state (with normal fan-out)."""
        raise NotImplementedError

    def replay(self, event: JournalEvent) -> None:
        """Fold one event quietly (no listeners / cross-subsystem pubs).

        Used when an incremental restore replays the journal tail on top
        of a base snapshot: the *state* must advance, but subscribers
        must not observe the same event twice.
        """
        raise NotImplementedError

    # -- rebuild / verification ----------------------------------------
    def rebaseline(self, journal: EventJournal) -> None:
        """Capture the current live state as the fold origin.

        Needed because not all state is journal-derived: pre-seeded
        history, imported traces, and checkpoint restores all install
        state that predates the retained log.  After ``rebaseline`` the
        invariant is ``fold(baseline, events_since(baseline_seq)) ==
        live state``.
        """
        self.baseline_seq = journal.head_seq
        self._capture_baseline()

    def _capture_baseline(self) -> None:
        raise NotImplementedError

    def live_fingerprint(self) -> Any:
        """A JSON-safe, bit-exact digest of the live store."""
        raise NotImplementedError

    def rebuild(self, journal: EventJournal) -> Any:
        """Fingerprint obtained by folding baseline + journal tail."""
        events = [
            e
            for e in journal.events_since(self.baseline_seq)
            if e.type in self.kinds
        ]
        return self._fold_fingerprint(events)

    def _fold_fingerprint(self, events: List[JournalEvent]) -> Any:
        raise NotImplementedError

    def covered_by(self, journal: EventJournal) -> bool:
        """Whether the retained log still reaches back to the baseline."""
        retained = journal.events()
        if not retained:
            return True
        return retained[0].seq <= self.baseline_seq + 1

    def verify(self, journal: EventJournal) -> Dict[str, Any]:
        """Rebuild from the journal and compare with the live state."""
        covered = self.covered_by(journal)
        rebuilt = self.rebuild(journal)
        live = self.live_fingerprint()
        return {
            "consumer": self.name,
            "identical": rebuilt == live,
            "covered": covered,
            "baseline_seq": self.baseline_seq,
            "cursor": self._cursor,
            "events_applied": self.events_applied,
        }


def _record_row(record: TaskRecord) -> Dict[str, Any]:
    return dataclasses.asdict(record)


def _task_record(event: JournalEvent) -> TaskRecord:
    """Rebuild the TaskRecord a ``history-recorded`` event carries."""
    return TaskRecord(site=event.site or "", **event.attributes)


def _monitoring_record(event: JournalEvent) -> MonitoringRecord:
    """Rebuild the MonitoringRecord a ``monitoring-updated`` event carries."""
    return MonitoringRecord(
        task_id=event.task_id,
        job_id=event.job_id,
        site=event.site,
        **event.attributes,
    )


class EstimatorConsumer(JournalConsumer):
    """Folds at-submission estimates and task-history rows.

    Backs :class:`RuntimeEstimateDB` (``estimate-recorded``) and
    :class:`HistoryRepository` (``history-recorded``) — the two stores
    behind ``estimator.estimate_runtime`` and the §6.2 queue-time scan.
    """

    name = "estimators"
    kinds = frozenset({EventType.ESTIMATE_RECORDED, EventType.HISTORY_RECORDED})
    namespaces = ("estimator.runtime", "estimator.history")

    def __init__(self, estimate_db: RuntimeEstimateDB, history: HistoryRepository) -> None:
        super().__init__()
        self.estimate_db = estimate_db
        self.history = history
        self._base_estimates: Dict[str, float] = {}
        self._base_records: List[Dict[str, Any]] = []

    def apply(self, event: JournalEvent) -> None:
        self.events_applied += 1
        if event.type is EventType.ESTIMATE_RECORDED:
            self.estimate_db.record(event.task_id, event.attributes["value"])
        else:
            self.history.add(_task_record(event))

    def replay(self, event: JournalEvent) -> None:
        self.events_applied += 1
        if event.type is EventType.ESTIMATE_RECORDED:
            self.estimate_db.record(
                event.task_id, event.attributes["value"], notify=False
            )
        else:
            self.history.add(_task_record(event), notify=False)

    def _capture_baseline(self) -> None:
        self._base_estimates = self.estimate_db.as_dict()
        self._base_records = [_record_row(r) for r in self.history.records()]

    def live_fingerprint(self) -> Any:
        return {
            "estimates": self.estimate_db.as_dict(),
            "records": [_record_row(r) for r in self.history.records()],
        }

    def _fold_fingerprint(self, events: List[JournalEvent]) -> Any:
        estimates = dict(self._base_estimates)
        records = list(self._base_records)
        for event in events:
            if event.type is EventType.ESTIMATE_RECORDED:
                estimates[event.task_id] = float(event.attributes["value"])
            else:
                records.append(_record_row(_task_record(event)))
        return {"estimates": estimates, "records": records}


class MonitoringConsumer(JournalConsumer):
    """Folds ``monitoring-updated`` events into the §5.4 DBManager.

    The event payload is the full :class:`MonitoringRecord` (wire-safe),
    so the SQL upsert + history insert the live path performs is exactly
    reproducible from the log.
    """

    name = "monitoring"
    kinds = frozenset({EventType.MONITORING_UPDATED})
    namespaces = ("monitoring.jobs",)

    def __init__(self, db_manager) -> None:
        super().__init__()
        self.db_manager = db_manager
        self._base_state: Dict[str, Any] = {"monitoring": [], "history": []}

    def apply(self, event: JournalEvent) -> None:
        self.events_applied += 1
        self.db_manager.apply_record(_monitoring_record(event))

    def replay(self, event: JournalEvent) -> None:
        self.events_applied += 1
        self.db_manager.apply_record(_monitoring_record(event), notify=False)

    def _capture_baseline(self) -> None:
        self._base_state = self.db_manager.export_state()

    def live_fingerprint(self) -> Any:
        return self.db_manager.export_state()

    def _fold_fingerprint(self, events: List[JournalEvent]) -> Any:
        # Fold through a scratch DBManager so AUTOINCREMENT history seqs
        # and row order are produced by the same SQL the live path runs.
        from repro.core.monitoring.db_manager import DBManager

        with DBManager(":memory:") as scratch:
            scratch.import_state(self._base_state)
            for event in events:
                scratch.apply_record(_monitoring_record(event), notify=False)
            return scratch.export_state()


def _series_key(farm: str, metric: str) -> str:
    return f"{farm}\x1f{metric}"


class MonALISAConsumer(JournalConsumer):
    """Folds metric samples and job-state events into MonALISA.

    ``metric-published`` appends one time-series sample;
    ``monitoring-updated`` derives the job-state publish the DBManager
    used to perform inline — the consumer ordering (monitoring before
    monalisa) preserves the old SQL-then-publish sequence.
    """

    name = "monalisa"
    kinds = frozenset({EventType.METRIC_PUBLISHED, EventType.MONITORING_UPDATED})
    namespaces = ("monalisa.timeseries", "monalisa.events")

    def __init__(self, repository: MonALISARepository) -> None:
        super().__init__()
        self.repository = repository
        self._base_series: Dict[str, List[List[float]]] = {}
        self._base_events: List[Dict[str, Any]] = []

    @staticmethod
    def _job_event(event: JournalEvent) -> JobStateEvent:
        a = event.attributes
        return JobStateEvent(
            time=a["snapshot_time"],
            task_id=event.task_id,
            job_id=event.job_id,
            site=event.site,
            state=a["status"],
            progress=a["progress"],
        )

    def apply(self, event: JournalEvent) -> None:
        self.events_applied += 1
        if event.type is EventType.METRIC_PUBLISHED:
            a = event.attributes
            self.repository._apply_publish(
                a["farm"], a["metric"], a["sample_time"], a["value"]
            )
        else:
            self.repository.publish_job_state(self._job_event(event))

    def replay(self, event: JournalEvent) -> None:
        self.events_applied += 1
        if event.type is EventType.METRIC_PUBLISHED:
            a = event.attributes
            self.repository._apply_publish(
                a["farm"], a["metric"], a["sample_time"], a["value"], notify=False
            )
        else:
            self.repository._apply_job_state(self._job_event(event), notify=False)

    @staticmethod
    def _event_row(e: JobStateEvent) -> Dict[str, Any]:
        return {
            "time": e.time,
            "task_id": e.task_id,
            "job_id": e.job_id,
            "site": e.site,
            "state": e.state,
            "progress": e.progress,
        }

    def _snapshot_series(self) -> Dict[str, List[List[float]]]:
        out: Dict[str, List[List[float]]] = {}
        for (farm, metric), ts in self.repository._series.items():
            out[_series_key(farm, metric)] = [[t, v] for t, v in ts.samples()]
        return out

    def _capture_baseline(self) -> None:
        self._base_series = self._snapshot_series()
        self._base_events = [
            self._event_row(e) for e in self.repository.job_events()
        ]

    def live_fingerprint(self) -> Any:
        return {
            "series": self._snapshot_series(),
            "events": [self._event_row(e) for e in self.repository.job_events()],
        }

    def _fold_fingerprint(self, events: List[JournalEvent]) -> Any:
        series = {key: [list(s) for s in samples] for key, samples in self._base_series.items()}
        rows = list(self._base_events)
        for event in events:
            if event.type is EventType.METRIC_PUBLISHED:
                a = event.attributes
                series.setdefault(_series_key(a["farm"], a["metric"]), []).append(
                    [float(a["sample_time"]), float(a["value"])]
                )
            else:
                rows.append(self._event_row(self._job_event(event)))
        return {"series": series, "events": rows}


class AccountingConsumer(JournalConsumer):
    """Shadow fold of the per-site queue accounting books (§6.2).

    The live :class:`~repro.core.estimators.queue_time.QueueAccounting`
    instances hear raw pool callbacks; this consumer folds the *journal's*
    view of the same transitions (``dispatched`` events carry the frozen
    priority/elapsed payload) into shadow books mirroring the live
    ``_upsert``/``_discard`` insertion order, so the shadow's per-band
    contribution maps — and hence the :func:`math.fsum` band totals —
    are bit-identical for every journal-covered (scheduler-planned)
    workload.  Tasks submitted around the scheduler never journal a
    ``dispatched`` event and are deliberately absent from the shadow.

    ``replay`` is a no-op: a checkpoint restore rebuilds the live books
    wholesale from the rehydrated pools (``QueueAccounting.reseed``), and
    :meth:`rebaseline` then syncs the shadow from them.
    """

    name = "accounting"
    kinds = frozenset(
        {
            EventType.DISPATCHED,
            EventType.ESTIMATE_RECORDED,
            EventType.PRIORITY_CHANGED,
            EventType.STARTED,
            EventType.RESUMED,
            EventType.PAUSED,
            EventType.MOVED,
            EventType.KILLED,
            EventType.FAILED,
            EventType.COMPLETED,
            EventType.FLOCK_FORWARDED,
        }
    )
    namespaces = ()

    _DISCARD_KINDS = frozenset(
        {
            EventType.STARTED,
            EventType.RESUMED,
            EventType.PAUSED,
            EventType.MOVED,
            EventType.KILLED,
            EventType.FAILED,
            EventType.COMPLETED,
            EventType.FLOCK_FORWARDED,
        }
    )

    def __init__(self, services: Dict[str, Any], estimate_db: RuntimeEstimateDB) -> None:
        """``services`` maps site name -> ExecutionService (each carrying
        a ``queue_accounting`` attached by the estimator service)."""
        super().__init__()
        self.services = services
        self.estimate_db = estimate_db
        self._state = self._empty_state()
        self._base: Dict[str, Any] = self._empty_state()

    # -- shadow-book state ---------------------------------------------
    @staticmethod
    def _empty_state() -> Dict[str, Any]:
        return {
            "estimates": {},   # task -> at-submission estimate
            "elapsed": {},     # task -> elapsed frozen at dispatch
            "site_of": {},     # task -> site currently queued at
            "band_of": {},     # task -> priority band
            "books": {},       # site -> band -> {task: contribution}
            "missing": {},     # site -> band -> set of tasks w/o estimate
        }

    def _fallback_for(self, site: Optional[str]) -> Optional[float]:
        service = self.services.get(site or "")
        acct = getattr(service, "queue_accounting", None)
        return getattr(acct, "fallback_runtime_s", None)

    @staticmethod
    def _discard(state: Dict[str, Any], task_id: str) -> None:
        site = state["site_of"].pop(task_id, None)
        band = state["band_of"].pop(task_id, None)
        if site is None or band is None:
            return
        bands = state["books"].get(site, {})
        entries = bands.get(band)
        if entries is None:
            return
        entries.pop(task_id, None)
        state["missing"].get(site, {}).get(band, set()).discard(task_id)
        if not entries:
            # Mirror QueueAccounting._discard: an emptied band vanishes.
            bands.pop(band, None)
            state["missing"].get(site, {}).pop(band, None)

    def _upsert(
        self, state: Dict[str, Any], site: str, task_id: str, band: int, elapsed: float
    ) -> None:
        self._discard(state, task_id)
        entries = state["books"].setdefault(site, {}).setdefault(band, {})
        if task_id in state["estimates"]:
            estimated: Optional[float] = state["estimates"][task_id]
        else:
            estimated = self._fallback_for(site)
        if estimated is None:
            entries[task_id] = 0.0
            state["missing"].setdefault(site, {}).setdefault(band, set()).add(task_id)
        else:
            entries[task_id] = max(0.0, estimated - elapsed)
        state["site_of"][task_id] = site
        state["band_of"][task_id] = band
        state["elapsed"][task_id] = elapsed

    def _fold(self, state: Dict[str, Any], event: JournalEvent) -> None:
        kind = event.type
        task_id = event.task_id
        if kind is EventType.ESTIMATE_RECORDED:
            value = float(event.attributes["value"])
            state["estimates"][task_id] = value
            site = state["site_of"].get(task_id)
            if site is not None:
                band = state["band_of"][task_id]
                elapsed = state["elapsed"].get(task_id, 0.0)
                state["books"][site][band][task_id] = max(0.0, value - elapsed)
                state["missing"].get(site, {}).get(band, set()).discard(task_id)
        elif kind is EventType.DISPATCHED:
            attrs = event.attributes
            if event.site is None or "priority" not in attrs:
                return  # pre-v2 row (no payload): not foldable
            self._upsert(
                state, event.site, task_id,
                int(attrs["priority"]), float(attrs["elapsed"]),
            )
        elif kind is EventType.PRIORITY_CHANGED:
            site = state["site_of"].get(task_id)
            if site is None:
                return  # priority changed while not queued: nothing filed
            elapsed = state["elapsed"].get(task_id, 0.0)
            self._upsert(
                state, site, task_id, int(event.attributes["new"]), elapsed
            )
        elif kind in self._DISCARD_KINDS:
            self._discard(state, task_id)

    # -- consumer protocol ---------------------------------------------
    def apply(self, event: JournalEvent) -> None:
        self.events_applied += 1
        self._fold(self._state, event)

    def replay(self, event: JournalEvent) -> None:  # see class docstring
        self.events_applied += 1

    @staticmethod
    def _fingerprint_of(state: Dict[str, Any]) -> Any:
        books = {}
        for site in sorted(state["books"]):
            bands = state["books"][site]
            missing = state["missing"].get(site, {})
            if not bands and not any(missing.values()):
                # A site whose books emptied out reads the same as one
                # never filed to; the fold only materialises the latter.
                continue
            books[site] = {
                "bands": {
                    str(band): [[task, value] for task, value in entries.items()]
                    for band, entries in bands.items()
                },
                "missing": {
                    str(band): sorted(tasks)
                    for band, tasks in missing.items()
                    if tasks
                },
            }
        return books

    @staticmethod
    def _copy_state(state: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "estimates": dict(state["estimates"]),
            "elapsed": dict(state["elapsed"]),
            "site_of": dict(state["site_of"]),
            "band_of": dict(state["band_of"]),
            "books": {
                site: {band: dict(entries) for band, entries in bands.items()}
                for site, bands in state["books"].items()
            },
            "missing": {
                site: {band: set(tasks) for band, tasks in missing.items()}
                for site, missing in state["missing"].items()
            },
        }

    def _capture_baseline(self) -> None:
        # Sync the shadow from the live books (covers restores, where the
        # live side was reseeded from the rehydrated pools) and keep a
        # frozen copy as the fold origin.
        state = self._empty_state()
        state["estimates"] = self.estimate_db.as_dict()
        for site in sorted(self.services):
            acct = getattr(self.services[site], "queue_accounting", None)
            if acct is None:
                continue
            pool = acct.service.pool
            for band, entries in acct._bands.items():
                shadow = state["books"].setdefault(site, {})[band] = {}
                for task_id, value in entries.items():
                    shadow[task_id] = value
                    state["site_of"][task_id] = site
                    state["band_of"][task_id] = band
                    try:
                        state["elapsed"][task_id] = pool.ad(task_id).elapsed_runtime()
                    except Exception:
                        state["elapsed"][task_id] = 0.0
            for band, tasks in acct._missing.items():
                if tasks:
                    state["missing"].setdefault(site, {})[band] = set(tasks)
        self._state = state
        self._base = self._copy_state(state)

    def live_fingerprint(self) -> Any:
        state = self._empty_state()
        for site in sorted(self.services):
            acct = getattr(self.services[site], "queue_accounting", None)
            if acct is None:
                continue
            state["books"][site] = {
                band: dict(entries) for band, entries in acct._bands.items()
            }
            state["missing"][site] = {
                band: set(tasks) for band, tasks in acct._missing.items()
            }
        return self._fingerprint_of(state)

    def shadow_fingerprint(self) -> Any:
        """The shadow books as folded live (diagnostics / CLI)."""
        return self._fingerprint_of(self._state)

    def _fold_fingerprint(self, events: List[JournalEvent]) -> Any:
        state = self._copy_state(self._base)
        for event in events:
            self._fold(state, event)
        return self._fingerprint_of(state)


class EventCore:
    """Registry + dispatcher: the journal's consumer fan-out.

    ``install()`` appends exactly one listener to the journal; events are
    dispatched to consumers in registration order (deterministic — the
    ordering guarantees in each consumer's docstring depend on it).
    """

    def __init__(
        self,
        journal: EventJournal,
        trace_context: Optional[Callable[[str], Tuple[Optional[str], Optional[str]]]] = None,
    ) -> None:
        self.journal = journal
        self.consumers: Dict[str, JournalConsumer] = {}
        self._trace_context = trace_context
        self._installed = False

    def register(self, consumer: JournalConsumer) -> JournalConsumer:
        if consumer.name in self.consumers:
            raise ValueError(f"consumer {consumer.name!r} already registered")
        self.consumers[consumer.name] = consumer
        return consumer

    def install(self) -> "EventCore":
        """Attach the dispatch listener (idempotent)."""
        if not self._installed:
            self.journal.listeners.append(self._dispatch)
            self._installed = True
        return self

    def _dispatch(self, event: JournalEvent) -> None:
        for consumer in self.consumers.values():
            if event.type in consumer.kinds:
                consumer.apply(event)
            consumer.note(event)

    # -- producer seams (journal-first write path) ----------------------
    def _context(self, task_id: str) -> Tuple[Optional[str], Optional[str]]:
        if self._trace_context is None:
            return (None, None)
        return self._trace_context(task_id)

    def emit_estimate(self, task_id: str, value: float) -> None:
        """``EstimatorService.estimate_sink`` target."""
        trace_id, span_id = self._context(task_id)
        self.journal.record(
            EventType.ESTIMATE_RECORDED, task_id,
            trace_id=trace_id, span_id=span_id, value=float(value),
        )

    def emit_history(self, record: TaskRecord, task_id: str) -> None:
        """``HistoryRecorder.sink`` target.

        The record's ``site`` rides on the event envelope (not the
        attributes) — consumers rebuild the full record from both.
        """
        trace_id, span_id = self._context(task_id)
        attrs = _record_row(record)
        attrs.pop("site")
        self.journal.record(
            EventType.HISTORY_RECORDED, task_id, site=record.site or None,
            trace_id=trace_id, span_id=span_id, **attrs,
        )

    def emit_monitoring(self, record: MonitoringRecord) -> None:
        """``DBManager.emit`` target.

        ``task_id``/``job_id``/``site`` live on the event envelope; the
        remaining record fields are the attributes.
        """
        trace_id, span_id = self._context(record.task_id)
        attrs = dataclasses.asdict(record)
        attrs.pop("task_id")
        attrs.pop("job_id")
        attrs.pop("site")
        self.journal.record(
            EventType.MONITORING_UPDATED, record.task_id,
            job_id=record.job_id, site=record.site,
            trace_id=trace_id, span_id=span_id, **attrs,
        )

    def emit_metric(self, farm: str, metric: str, time: float, value: float) -> None:
        """``MonALISARepository.emit`` target."""
        self.journal.record(
            EventType.METRIC_PUBLISHED, f"{farm}/{metric}", site=farm,
            farm=farm, metric=metric, sample_time=float(time), value=float(value),
        )

    # -- restore / verification ----------------------------------------
    def replay_tail(self, events: List[JournalEvent]) -> int:
        """Quietly fold a journal tail into every consumer (restore path).

        Events must arrive in ``seq`` order; each consumer folds the
        kinds it owns and advances its cursor past everything.
        """
        for event in events:
            for consumer in self.consumers.values():
                if event.type in consumer.kinds:
                    consumer.replay(event)
                consumer.note(event)
        return len(events)

    def rebaseline_all(self) -> None:
        """Re-anchor every consumer's fold origin at the current state."""
        for consumer in self.consumers.values():
            consumer.rebaseline(self.journal)
            consumer._cursor = self.journal.head_seq

    def verify_all(self) -> List[Dict[str, Any]]:
        return [c.verify(self.journal) for c in self.consumers.values()]

    def cursors(self) -> Dict[str, int]:
        return {name: c.cursor for name, c in self.consumers.items()}

    def snapshot(self) -> Dict[str, Any]:
        """Wire-safe summary for ``system.consumers``.

        Restore-invariant by design: a restored GAE answers identically
        to the live one at the barrier, so process-local diagnostics
        (``events_applied``, ``baseline_seq``) are exposed only through
        :meth:`verify_all` and the ``journal replay`` CLI.
        """
        head = self.journal.head_seq
        return {
            "enabled": True,
            "journal_head_seq": head,
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "consumers": [
                {
                    "name": c.name,
                    "kinds": sorted(k.value for k in c.kinds),
                    "namespaces": list(c.namespaces),
                    "cursor": c.cursor,
                    "lag": max(0, head - c.cursor),
                }
                for c in self.consumers.values()
            ],
        }

    def bind_metrics(self, metrics) -> None:
        """Register per-consumer cursor/lag gauges (fn-backed)."""
        for name, consumer in self.consumers.items():
            metrics.gauge(
                f"gae_consumer_{name}_cursor",
                f"journal seq high-water mark of the {name} consumer",
                fn=lambda c=consumer: float(c.cursor),
            )
            metrics.gauge(
                f"gae_consumer_{name}_lag",
                f"events the {name} consumer is behind the journal head",
                fn=lambda c=consumer: float(max(0, self.journal.head_seq - c.cursor)),
            )
