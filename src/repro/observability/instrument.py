"""Wiring that threads tracing, the journal, and metrics through a GAE.

:class:`GAEInstrumentation` owns one :class:`Tracer`, one
:class:`EventJournal` and one :class:`MetricsRegistry` per GAE and
subscribes them to every layer a job touches:

- ``scheduler.plan_listeners`` — a new job opens a ``job:<id>`` root
  span and one ``task:<id>`` span per task (all sharing a fresh trace
  id), plus *submitted*/*scheduled* journal events;
- ``scheduler.staging_listeners`` — input stage-in and checkpoint-image
  transfers become timed ``stage-in:*`` spans;
- each site pool's ``on_state_change``/``on_forwarded`` — dispatch,
  start, pause, resume, flock, move, failure and completion become
  phase spans (``queue@site``, ``run@site``, ``paused@site``) and
  journal events, including the flock forwards;
- the steering ``CommandProcessor`` — every verb runs inside a
  ``steer:<verb>`` span *on the job's trace*; if the verb arrived via a
  Clarens RPC, :meth:`Tracer.adopt_current_trace` re-homes the open RPC
  span so the call, the command, and the resulting pool events share
  one trace id end to end;
- Backup & Recovery — resubmissions become *recovered* events; salvaged
  files and archived execution states become *output-retrieved* events;
- the MonALISA repository — the first publish of each new task state
  becomes a ``monalisa:publish`` span under the task;
- execution services — ``fail``/``recover`` drive the
  ``gae_execution_service_up`` gauge.

:class:`ObservabilityMiddleware` is the Clarens end of the same story:
installed via ``host.add_middleware``, it opens an ``rpc:<method>`` span
per dispatched call under the call's wire trace id.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.clarens.middleware import CallContext
from repro.clarens.telemetry import new_trace_id
from repro.gridsim.job import JobState
from repro.observability.health import HealthEngine
from repro.observability.journal import EventJournal, EventType
from repro.observability.metrics import MetricsRegistry
from repro.observability.telemetry import TelemetryPipeline
from repro.observability.tracing import Span, Tracer
from repro.store.registry import OBSERVABILITY_TELEMETRY, namespace_record

__all__ = ["GAEInstrumentation", "ObservabilityMiddleware"]


class ObservabilityMiddleware:
    """Clarens middleware: one ``rpc:<method>`` span per dispatched call.

    The span lives under the *call's* trace id (client-propagated or
    minted by the PR-1 tracing middleware); multicall sub-calls nest
    because the parent RPC span is still active on the thread.
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def __call__(self, ctx: CallContext, call_next) -> Any:
        span = self.tracer.start_span(
            f"rpc:{ctx.method_path}",
            trace_id=ctx.trace_id,
            attributes={"method": ctx.method_path, "transport": ctx.transport},
        )
        try:
            result = call_next(ctx)
        except BaseException:
            self.tracer.end_span(span, status="error")
            raise
        self.tracer.end_span(span, status="ok")
        return result


class _TaskTrace:
    """Per-task tracing state."""

    __slots__ = (
        "trace_id",
        "job_id",
        "root",
        "root_ctx",
        "phase",
        "last_state",
        "last_priority",
        "site",
        "queued_at",
        "flock_span",
        "published_states",
    )

    def __init__(self, trace_id: str, job_id: str, root: Span, priority: int) -> None:
        self.trace_id = trace_id
        self.job_id = job_id
        self.root = root
        self.root_ctx = root.context  # immutable for task roots; cached for the hot path
        self.phase: Optional[Span] = None
        self.last_state: Optional[JobState] = None
        self.last_priority = priority
        self.site: Optional[str] = None
        self.queued_at: Optional[float] = None
        self.flock_span: Optional[Span] = None
        self.published_states: Set[str] = set()


class _JobTrace:
    __slots__ = ("trace_id", "span", "pending", "task_ids")

    def __init__(self, trace_id: str, span: Span, pending: Set[str]) -> None:
        self.trace_id = trace_id
        self.span = span
        self.pending = pending
        # ``pending`` shrinks as tasks finish; keep the full membership so
        # closing the job span stays O(tasks in this job), not O(all tasks).
        self.task_ids = frozenset(pending)


class GAEInstrumentation:
    """One GAE's tracer + journal + metrics, and all their subscriptions."""

    def __init__(
        self,
        sim,
        *,
        span_capacity: int = 8192,
        journal_capacity: int = 100_000,
        telemetry: bool = True,
        telemetry_window_s: float = 60.0,
        telemetry_retain: int = 256,
        health_rules=None,
    ) -> None:
        self.sim = sim
        clock = lambda: sim.now  # noqa: E731 - tiny clock adapter
        self.tracer = Tracer(clock, capacity=span_capacity)
        self.journal = EventJournal(clock, capacity=journal_capacity)
        self.metrics = MetricsRegistry()
        self._tasks: Dict[str, _TaskTrace] = {}
        self._jobs: Dict[str, _JobTrace] = {}
        #: The event-sourced consumer registry; installed by build_gae
        #: (None for partially-wired rigs and stand-alone tests).
        self.eventcore = None
        self.telemetry: Optional[TelemetryPipeline] = None
        self.health: Optional[HealthEngine] = None
        if telemetry:
            self.telemetry = TelemetryPipeline(
                sim,
                self.metrics,
                self.journal,
                window_s=telemetry_window_s,
                retain=telemetry_retain,
            ).attach()
            self.health = HealthEngine(self.telemetry, self.journal, rules=health_rules)

        m = self.metrics
        self._jobs_planned = m.counter("gae_scheduler_jobs_planned_total", "jobs planned")
        self._tasks_planned = m.counter("gae_scheduler_tasks_planned_total", "tasks planned")
        self._events_total = m.counter("gae_task_events_total", "journal events by type")
        self._commands_total = m.counter(
            "gae_steering_commands_total", "steering verbs by command and outcome"
        )
        self._flocks_total = m.counter("gae_condor_flock_forwards_total", "flock forwards")
        self._recovery_total = m.counter(
            "gae_recovery_notifications_total", "backup & recovery client notifications"
        )
        self._monalisa_publish_total = m.counter(
            "gae_monalisa_job_state_publish_total", "job-state events published to MonALISA"
        )
        self._queue_wait = m.histogram(
            "gae_task_queue_wait_seconds", "sim seconds from dispatch to start"
        )
        self._run_time = m.histogram(
            "gae_task_run_seconds", "sim seconds from start to completion"
        )
        self._service_up = m.gauge(
            "gae_execution_service_up", "1 while the site's execution service answers pings"
        )
        m.gauge(
            "gae_observability_spans", "spans in the bounded store", fn=lambda: len(self.tracer)
        )
        m.gauge(
            "gae_observability_events", "events in the journal", fn=lambda: len(self.journal)
        )
        # Pre-bound label handles keep the per-event hot path allocation-free.
        self._jobs_planned_b = self._jobs_planned.bind()
        self._tasks_planned_b = self._tasks_planned.bind()
        self._monalisa_publish_b = self._monalisa_publish_total.bind()
        self._queue_wait_by_site: Dict[str, Any] = {}
        self._run_time_by_site: Dict[str, Any] = {}
        self._flocks_by_site: Dict[str, Any] = {}
        self._phase_names: Dict[str, Tuple[str, str, str]] = {}
        events_by_type = {t: self._events_total.bind(type=t.value) for t in EventType}
        self.journal.listeners.append(lambda event: events_by_type[event.type].inc())

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(
        self,
        grid,
        steering=None,
        monitoring=None,
        accounting=None,
        estimators=None,
        monalisa=None,
    ) -> "GAEInstrumentation":
        """Subscribe to every observable seam of an assembled GAE.

        ``grid`` is required; the services are optional so partial rigs
        (scheduler-only tests, bare grids) can still be instrumented.
        """
        scheduler = grid.scheduler
        scheduler.plan_listeners.append(self._on_plan)
        scheduler.staging_listeners.append(self._on_staging)

        for name in sorted(grid.sites):
            site = grid.sites[name]
            self._site_handles(name)

            def on_state(ad, _site=name):
                self._on_state(_site, ad)

            def on_forwarded(ad, _site=name):
                self._on_forwarded(_site, ad)

            site.pool.on_state_change.append(on_state)
            site.pool.on_forwarded.append(on_forwarded)

        for name in sorted(grid.execution_services):
            service = grid.execution_services[name]
            self._service_up.set(1.0, site=name)
            service.lifecycle_listeners.append(
                lambda svc, up: self._service_up.set(1.0 if up else 0.0, site=svc.site.name)
            )

        if steering is not None:
            processor = steering.command_processor
            processor.span_factory = self.command_span
            processor.listeners.append(self._on_command)
            recovery = steering.backup_recovery
            recovery.notification_listeners.append(self._on_recovery_note)
            recovery.salvage_listeners.append(
                lambda task_id, files: self._on_output_retrieved(task_id, "salvage", len(files))
            )
            recovery.archive_listeners.append(
                lambda task_id, state: self._on_output_retrieved(
                    task_id, "archive", len(state.get("output_files", []) or [])
                )
            )
        if monalisa is not None:
            monalisa.subscribe_job_states(self._on_monalisa_publish)
            if self.health is not None:
                self.health.attach_monalisa(monalisa)
        if estimators is not None:
            self.metrics.gauge(
                "gae_estimator_history_records",
                "task-history rows feeding the runtime estimator",
                fn=lambda: float(estimators.history_size()),
            )
            transfer = getattr(estimators, "transfer", None)
            if transfer is not None:
                # The iperf bandwidth memo's counters, observable like
                # everything else (one fn-backed gauge per event kind).
                for kind in ("hits", "misses", "expirations", "evictions"):
                    self.metrics.gauge(
                        f"gae_transfer_probe_cache_{kind}",
                        f"iperf bandwidth-memo {kind}",
                        fn=lambda _kind=kind: float(
                            getattr(transfer.cache_stats, _kind)
                        ),
                    )
        if monitoring is not None:
            self.metrics.gauge(
                "gae_monitoring_records",
                "monitoring DB rows (one per observed task)",
                fn=lambda: float(len(monitoring.db_manager)),
            )
        if accounting is not None:
            self.metrics.gauge(
                "gae_accounting_ledger_entries",
                "quota ledger entries (reservations committed or released)",
                fn=lambda: float(len(accounting.quotas.ledger)),
            )
        return self

    def middleware(self) -> ObservabilityMiddleware:
        """The Clarens middleware that feeds this instrumentation's tracer."""
        return ObservabilityMiddleware(self.tracer)

    # ------------------------------------------------------------------
    # scheduler hooks
    # ------------------------------------------------------------------
    def _on_plan(self, plan, job) -> None:
        if job.job_id in self._jobs:
            return  # re-plan after a move/resubmit: the trace already exists
        trace_id = new_trace_id()
        job_span = self.tracer.start_span(
            f"job:{job.job_id}",
            trace_id=trace_id,
            attributes={"job_id": job.job_id, "tasks": len(job.tasks)},
            activate=False,
        )
        jt = _JobTrace(trace_id, job_span, {t.task_id for t in job.tasks})
        self._jobs[job.job_id] = jt
        self._jobs_planned_b.inc()
        for task in job.tasks:
            root = self.tracer.start_span(
                f"task:{task.task_id}",
                trace_id=trace_id,
                parent=job_span.context,
                attributes={"task_id": task.task_id, "owner": task.spec.owner},
                activate=False,
            )
            tt = _TaskTrace(trace_id, job.job_id, root, task.priority)
            self._tasks[task.task_id] = tt
            self._tasks_planned_b.inc()
            site = plan.site_for(task.task_id)
            self.journal.record(
                EventType.SUBMITTED, task.task_id, job_id=job.job_id,
                trace_id=trace_id, span_id=root.span_id,
            )
            sched = self.tracer.instant(
                "schedule", trace_id=trace_id, parent=root.context,
                attributes={"site": site},
            )
            self.journal.record(
                EventType.SCHEDULED, task.task_id, job_id=job.job_id, site=site,
                trace_id=trace_id, span_id=sched.span_id,
            )

    def _on_staging(self, task, site: str, delay: float, kind: str) -> None:
        tt = self._tasks.get(task.task_id)
        if tt is None:
            return
        self.tracer.instant(
            f"stage-in:{kind}",
            trace_id=tt.trace_id,
            parent=tt.root_ctx,
            attributes={"site": site, "kind": kind, "delay_s": delay},
            end=self.sim.now + delay,
        )

    # ------------------------------------------------------------------
    # pool hooks
    # ------------------------------------------------------------------
    def _site_handles(self, site: str) -> Tuple[str, str, str]:
        """Cached per-site phase-span names and bound metric handles."""
        names = self._phase_names.get(site)
        if names is None:
            names = self._phase_names[site] = (
                f"queue@{site}", f"run@{site}", f"paused@{site}"
            )
            self._queue_wait_by_site[site] = self._queue_wait.bind(site=site)
            self._run_time_by_site[site] = self._run_time.bind(site=site)
            self._flocks_by_site[site] = self._flocks_total.bind(**{"from": site})
        return names

    def _close_phase(self, tt: _TaskTrace, status: str = "ok") -> None:
        if tt.phase is not None:
            self.tracer.end_span(tt.phase, status=status)
            tt.phase = None

    def _open_phase(self, tt: _TaskTrace, name: str, **attributes: Any) -> Span:
        tt.phase = self.tracer.start_span(
            name, trace_id=tt.trace_id, parent=tt.root_ctx,
            attributes=attributes, activate=False,
        )
        return tt.phase

    def _record(self, type: EventType, tt: _TaskTrace, task_id: str, site=None, **attrs) -> None:
        span = tt.phase if tt.phase is not None else tt.root
        self.journal.record(
            type, task_id, job_id=tt.job_id, site=site,
            trace_id=tt.trace_id, span_id=span.span_id, **attrs,
        )

    def _on_state(self, site: str, ad) -> None:
        tt = self._tasks.get(ad.task_id)
        if tt is None:
            return  # submitted around the scheduler; not ours to trace
        state = ad.state
        if state is tt.last_state and site == tt.site:
            if ad.priority != tt.last_priority:
                self._record(
                    EventType.PRIORITY_CHANGED, tt, ad.task_id, site=site,
                    old=tt.last_priority, new=ad.priority,
                )
                tt.last_priority = ad.priority
            return
        queue_name, run_name, paused_name = self._site_handles(site)
        if state is JobState.QUEUED:
            self._close_phase(tt)
            self._open_phase(tt, queue_name, site=site)
            tt.queued_at = self.sim.now
            if tt.flock_span is not None:
                tt.flock_span.set_attribute("to", site)
                tt.flock_span = None
            # priority/elapsed ride along so the event-sourced accounting
            # consumer can fold the queue books from the journal alone.
            self._record(
                EventType.DISPATCHED, tt, ad.task_id, site=site,
                priority=ad.priority, elapsed=ad.elapsed_runtime(),
            )
        elif state is JobState.RUNNING:
            resumed = tt.last_state is JobState.PAUSED
            if not resumed and tt.queued_at is not None:
                self._queue_wait_by_site[site].observe(self.sim.now - tt.queued_at)
                tt.queued_at = None
            self._close_phase(tt)
            self._open_phase(tt, run_name, site=site)
            self._record(
                EventType.RESUMED if resumed else EventType.STARTED,
                tt, ad.task_id, site=site,
            )
        elif state is JobState.PAUSED:
            self._close_phase(tt)
            self._open_phase(tt, paused_name, site=site)
            self._record(EventType.PAUSED, tt, ad.task_id, site=site)
        elif state is JobState.MOVED:
            self._record(EventType.MOVED, tt, ad.task_id, site=site)
            self._close_phase(tt)
        elif state is JobState.KILLED:
            self._record(EventType.KILLED, tt, ad.task_id, site=site)
            self._close_phase(tt, status="killed")
            self.tracer.end_span(tt.root, status="killed")
            self._finish_job_task(tt, ad.task_id)
        elif state is JobState.FAILED:
            self._record(EventType.FAILED, tt, ad.task_id, site=site)
            self._close_phase(tt, status="failed")
            # The root stays open: Backup & Recovery may resubmit.
        elif state is JobState.COMPLETED:
            if tt.phase is not None:
                self._run_time_by_site[site].observe(self.sim.now - tt.phase.start)
            self._record(EventType.COMPLETED, tt, ad.task_id, site=site)
            self._close_phase(tt)
            self.tracer.end_span(tt.root, status="ok")
            self._finish_job_task(tt, ad.task_id)
        tt.last_state = state
        tt.last_priority = ad.priority
        if state in (JobState.QUEUED, JobState.RUNNING, JobState.PAUSED):
            tt.site = site

    def _finish_job_task(self, tt: _TaskTrace, task_id: str) -> None:
        jt = self._jobs.get(tt.job_id)
        if jt is None:
            return
        jt.pending.discard(task_id)
        if not jt.pending:
            status = "ok" if tt.root.status == "ok" else "error"
            all_ok = all(
                self._tasks[tid].root.status == "ok"
                for tid in jt.task_ids
                if tid in self._tasks
            )
            self.tracer.end_span(jt.span, status="ok" if all_ok else status)

    def _on_forwarded(self, site: str, ad) -> None:
        tt = self._tasks.get(ad.task_id)
        if tt is None:
            return
        self._close_phase(tt)
        tt.flock_span = self.tracer.instant(
            "flock", trace_id=tt.trace_id, parent=tt.root_ctx,
            attributes={"from": site},
        )
        self._record(EventType.FLOCK_FORWARDED, tt, ad.task_id, site=site)
        self._site_handles(site)
        self._flocks_by_site[site].inc()
        # Force the follow-up QUEUED at the target pool to register as a
        # fresh dispatch even though the ad state never left QUEUED.
        tt.last_state = None

    # ------------------------------------------------------------------
    # steering hooks
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def command_span(self, command: str, task_id: str) -> Iterator[None]:
        """Span factory installed on the steering ``CommandProcessor``.

        Re-homes any open RPC spans onto the task's job trace (the join
        between a Clarens call trace and the job lifecycle trace), then
        runs the verb inside a ``steer:<verb>`` span.
        """
        tt = self._tasks.get(task_id)
        if tt is None:
            with self.tracer.span(
                f"steer:{command}", attributes={"command": command, "task_id": task_id}
            ):
                yield
            return
        self.tracer.adopt_current_trace(tt.trace_id)
        current = self.tracer.current_span()
        if current is not None and current.trace_id == tt.trace_id:
            if current.parent_id is None and current is not tt.root:
                # An adopted RPC span: hang it under the task so the
                # rendered tree shows rpc -> steer -> pool events.
                current.parent_id = tt.root.span_id
            parent = current.context
        else:
            parent = tt.root_ctx
        with self.tracer.span(
            f"steer:{command}",
            trace_id=tt.trace_id,
            parent=parent,
            attributes={"command": command, "task_id": task_id},
        ):
            yield

    def _on_command(self, result) -> None:
        self._commands_total.inc(
            command=result.command, outcome="ok" if result.ok else "error"
        )
        if (
            result.ok
            and result.command == "kill"
            and "staging" in result.detail
        ):
            # Killed while staging in: no pool event ever fires, so the
            # journal would otherwise miss the terminal transition.
            tt = self._tasks.get(result.task_id)
            if tt is not None and tt.last_state is not JobState.KILLED:
                self._record(EventType.KILLED, tt, result.task_id, detail=result.detail)
                self._close_phase(tt, status="killed")
                self.tracer.end_span(tt.root, status="killed")
                self._finish_job_task(tt, result.task_id)
                tt.last_state = JobState.KILLED

    # ------------------------------------------------------------------
    # backup & recovery / monalisa hooks
    # ------------------------------------------------------------------
    def _on_recovery_note(self, note) -> None:
        self._recovery_total.inc(kind=note.kind)
        if note.kind == "resubmission" and "resubmitted to" in note.detail:
            tt = self._tasks.get(note.task_id)
            if tt is None:
                return
            self._record(
                EventType.RECOVERED, tt, note.task_id, site=note.site,
                detail=note.detail,
            )

    def _on_output_retrieved(self, task_id: str, source: str, file_count: int) -> None:
        tt = self._tasks.get(task_id)
        if tt is None:
            return
        self._record(
            EventType.OUTPUT_RETRIEVED, tt, task_id, site=tt.site,
            source=source, files=file_count,
        )

    def _on_monalisa_publish(self, event) -> None:
        self._monalisa_publish_b.inc()
        tt = self._tasks.get(event.task_id)
        if tt is None:
            return
        if event.state in tt.published_states:
            return  # one span per new state keeps the store bounded
        tt.published_states.add(event.state)
        self.tracer.instant(
            "monalisa:publish",
            trace_id=tt.trace_id,
            parent=tt.root_ctx,
            attributes={"farm": event.site, "state": event.state},
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def trace_id_of(self, task_id: str) -> Optional[str]:
        tt = self._tasks.get(task_id)
        return tt.trace_id if tt is not None else None

    def trace_context_of(self, task_id: str) -> Tuple[Optional[str], Optional[str]]:
        """(trace_id, root span_id) for a tracked task, else (None, None).

        The event core stamps journal-schema-v2 events with this, so a
        task's derived events share its lifecycle trace.
        """
        tt = self._tasks.get(task_id)
        if tt is None:
            return (None, None)
        return (tt.trace_id, tt.root.span_id)

    def render_trace(self, task_id: str) -> Optional[str]:
        """ASCII span tree for the trace the task belongs to."""
        trace_id = self.trace_id_of(task_id)
        if trace_id is None:
            return None
        return self.tracer.render(trace_id)

    def timeline_wire(self, task_id: str) -> List[Dict[str, Any]]:
        return [e.to_wire() for e in self.journal.timeline(task_id)]

    def snapshot(self) -> Dict[str, Any]:
        """Wire-safe summary for the ``system.observability`` method."""
        return {
            "enabled": True,
            "spans": len(self.tracer),
            "span_capacity": self.tracer.capacity,
            "events": len(self.journal),
            "event_capacity": self.journal.capacity,
            "tasks_traced": len(self._tasks),
            "jobs_traced": len(self._jobs),
            "metrics": self.metrics.snapshot(),
            "telemetry": self.telemetry_summary(),
            "consumers": (
                self.eventcore.snapshot()
                if self.eventcore is not None
                else {"enabled": False}
            ),
        }

    def telemetry_summary(self) -> Dict[str, Any]:
        """Small wire-safe summary of the windowed pipeline (never the data)."""
        if self.telemetry is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "window_s": self.telemetry.window_s,
            "windows_closed": self.telemetry.windows_closed,
            "series": len(self.telemetry.names()),
            "health_rules": len(self.health.rules) if self.health is not None else 0,
            "health_firing": self.health.firing() if self.health is not None else [],
        }

    def health_snapshot(self) -> Dict[str, Any]:
        """Wire-safe health state for ``system.health`` / CLI / webui."""
        if self.health is None:
            return {"enabled": False}
        return self.health.snapshot()

    def start_telemetry(self) -> None:
        """Arm the window tick (no-op when telemetry is disabled)."""
        if self.telemetry is not None:
            self.telemetry.start()

    def stop_telemetry(self) -> None:
        if self.telemetry is not None:
            self.telemetry.stop()

    # ------------------------------------------------------------------
    # persistence (checkpoint/restore)
    # ------------------------------------------------------------------
    def save_to(self, store) -> None:
        """Persist journal, spans, metric values, and telemetry windows."""
        self.journal.save_to(store)
        self.tracer.save_to(store)
        self.metrics.save_to(store)
        if self.telemetry is not None:
            store.register_namespace(namespace_record(OBSERVABILITY_TELEMETRY))
            store.clear(OBSERVABILITY_TELEMETRY)
            rows = [("pipeline", self.telemetry.export_state())]
            if self.health is not None:
                rows.append(("health", self.health.export_state()))
            store.put_many(OBSERVABILITY_TELEMETRY, rows)

    def export_tracking(self) -> Dict[str, Any]:
        """Serializable live task/job trace-tracking state.

        Spans are referenced by id; :meth:`import_tracking` re-links them
        against the restored span store.
        """

        def span_id(span: Optional[Span]) -> Optional[str]:
            return span.span_id if span is not None else None

        tasks = []
        for task_id, tt in self._tasks.items():
            tasks.append([task_id, {
                "trace_id": tt.trace_id,
                "job_id": tt.job_id,
                "root": tt.root.span_id,
                "phase": span_id(tt.phase),
                "last_state": tt.last_state.value if tt.last_state is not None else None,
                "last_priority": tt.last_priority,
                "site": tt.site,
                "queued_at": tt.queued_at,
                "flock_span": span_id(tt.flock_span),
                "published_states": sorted(tt.published_states),
            }])
        jobs = []
        for job_id, jt in self._jobs.items():
            jobs.append([job_id, {
                "trace_id": jt.trace_id,
                "span": jt.span.span_id,
                "pending": sorted(jt.pending),
                "task_ids": sorted(jt.task_ids),
            }])
        return {"tasks": tasks, "jobs": jobs}

    def import_tracking(self, state: Dict[str, Any], spans_by_id: Dict[str, Span]) -> None:
        """Rebuild ``_tasks``/``_jobs`` from :meth:`export_tracking` output."""

        def resolve(sid: Optional[str], name: str, trace_id: str) -> Optional[Span]:
            if sid is None:
                return None
            span = spans_by_id.get(sid)
            if span is None:
                # Evicted from the bounded span store before the
                # checkpoint: keep tracking alive with a detached stub.
                span = Span(name, trace_id=trace_id, span_id=sid, parent_id=None, start=0.0)
            return span

        self._tasks = {}
        for task_id, w in state["tasks"]:
            root = resolve(w["root"], f"task:{task_id}", w["trace_id"])
            tt = _TaskTrace(w["trace_id"], w["job_id"], root, w["last_priority"])
            tt.phase = resolve(w["phase"], "phase", w["trace_id"])
            tt.last_state = (
                JobState(w["last_state"]) if w["last_state"] is not None else None
            )
            tt.site = w["site"]
            tt.queued_at = w["queued_at"]
            tt.flock_span = resolve(w["flock_span"], "flock", w["trace_id"])
            tt.published_states = set(w["published_states"])
            self._tasks[task_id] = tt
        self._jobs = {}
        for job_id, w in state["jobs"]:
            span = resolve(w["span"], f"job:{job_id}", w["trace_id"])
            jt = _JobTrace(w["trace_id"], span, set(w["task_ids"]))
            jt.pending = set(w["pending"])
            self._jobs[job_id] = jt

    def load_from(self, store, tracking: Optional[Dict[str, Any]] = None) -> None:
        """Restore journal, spans, metric values, and (optionally) tracking."""
        self.journal.load_from(store)
        spans_by_id = self.tracer.load_from(store)
        self.metrics.load_from(store)
        if self.telemetry is not None:
            # Pre-telemetry checkpoints lack the namespace; registering it
            # (idempotent) makes the read well-defined and empty.
            store.register_namespace(namespace_record(OBSERVABILITY_TELEMETRY))
            rows = dict(store.items(OBSERVABILITY_TELEMETRY))
            if "pipeline" in rows:
                self.telemetry.import_state(rows["pipeline"])
            if self.health is not None and rows.get("health") is not None:
                self.health.import_state(rows["health"])
        if tracking is not None:
            self.import_tracking(tracking, spans_by_id)
