"""Declarative health rules evaluated continuously over telemetry windows.

De Sarkar et al.'s integrated performance-analysis framework layers
rule-driven online analysis over raw sensors; this module is that layer
for the GAE.  A :class:`HealthRule` declares *what healthy looks like*
over the :class:`~repro.observability.telemetry.TelemetryPipeline`
windows; the :class:`HealthEngine` evaluates every rule each time a
window closes (i.e. on simulation clock ticks), runs a small
ok → firing → resolved state machine per rule, and reports transitions
three ways at once:

- ``health-firing`` / ``health-resolved`` events in the
  :class:`~repro.observability.journal.EventJournal` (rule name in
  ``task_id``), so scenario scoring and timelines see them;
- a ``health`` farm in MonALISA (``rule.<name>`` stepping 0/1 each
  window), so the monitoring repository can chart degradation windows;
- the live :meth:`HealthEngine.snapshot` behind the ``system.health``
  Clarens RPC, ``gae-repro health``, and the webui ``/health`` page.

Rule taxonomy (pinned against docs/ARCHITECTURE.md by
``tools/check_docs.py``):

- ``threshold`` — reduce a series over the last ``windows`` windows and
  compare against a bound (e.g. p95 queue depth >= 50);
- ``delta`` — compare the change between the first and last of the last
  ``windows`` windows (e.g. completed total stalls: delta <= 0);
- ``burn_rate`` — SLO error-budget burn: the bad/(bad+good) ratio over
  the last ``windows`` windows divided by ``budget``, firing when the
  budget is burning ``threshold`` times too fast.

Everything is derived from simulation time and deterministic series, so
two same-seed runs transition at identical instants (the scenario
artifact pins this bit-for-bit).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.observability.journal import EventJournal, EventType
from repro.observability.telemetry import REDUCERS

__all__ = [
    "HealthEngine",
    "HealthRule",
    "HealthRuleError",
    "RULE_KINDS",
    "default_health_rules",
]

#: Rule kinds the engine can evaluate (docs table is checked against this).
RULE_KINDS: Tuple[str, ...] = ("threshold", "delta", "burn_rate")

_OPS = ("<", "<=", ">", ">=")

_SEVERITIES = ("info", "warning", "critical")


class HealthRuleError(ValueError):
    """Raised for malformed health-rule declarations (path-qualified)."""


def _compare(value: float, op: str, threshold: float) -> bool:
    if op == "<":
        return value < threshold
    if op == "<=":
        return value <= threshold
    if op == ">":
        return value > threshold
    return value >= threshold


@dataclass(frozen=True)
class HealthRule:
    """One declarative health rule over telemetry window series."""

    name: str
    kind: str
    series: str = ""
    op: str = ">="
    threshold: float = 0.0
    reducer: str = "last"
    windows: int = 1
    for_windows: int = 1
    clear_windows: int = 1
    severity: str = "warning"
    # burn_rate only:
    good_series: str = ""
    bad_series: str = ""
    budget: float = 0.1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "rule") -> None:
        if not self.name:
            raise HealthRuleError(f"{path}.name: required")
        if self.kind not in RULE_KINDS:
            raise HealthRuleError(
                f"{path}.kind: unknown kind {self.kind!r} "
                f"(known: {', '.join(RULE_KINDS)})"
            )
        if self.op not in _OPS:
            raise HealthRuleError(f"{path}.op: must be one of {', '.join(_OPS)}")
        if self.reducer not in REDUCERS:
            raise HealthRuleError(
                f"{path}.reducer: unknown reducer {self.reducer!r} "
                f"(known: {', '.join(REDUCERS)})"
            )
        if self.severity not in _SEVERITIES:
            raise HealthRuleError(
                f"{path}.severity: must be one of {', '.join(_SEVERITIES)}"
            )
        if self.windows < 1:
            raise HealthRuleError(f"{path}.windows: must be >= 1")
        if self.for_windows < 1:
            raise HealthRuleError(f"{path}.for_windows: must be >= 1")
        if self.clear_windows < 1:
            raise HealthRuleError(f"{path}.clear_windows: must be >= 1")
        if self.kind == "burn_rate":
            if not self.good_series or not self.bad_series:
                raise HealthRuleError(
                    f"{path}: burn_rate needs good_series and bad_series"
                )
            if self.budget <= 0:
                raise HealthRuleError(f"{path}.budget: must be positive")
        elif not self.series:
            raise HealthRuleError(f"{path}.series: required for kind {self.kind!r}")

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "rule") -> "HealthRule":
        if not isinstance(data, dict):
            raise HealthRuleError(
                f"{path}: expected an object, got {type(data).__name__}"
            )
        known = {
            "name", "kind", "series", "op", "threshold", "reducer", "windows",
            "for_windows", "clear_windows", "severity", "good_series",
            "bad_series", "budget",
        }
        unknown = set(data) - known
        if unknown:
            raise HealthRuleError(f"{path}: unknown keys {sorted(unknown)}")
        for key in ("name", "kind", "series", "op", "reducer", "severity",
                    "good_series", "bad_series"):
            if key in data and not isinstance(data[key], str):
                raise HealthRuleError(f"{path}.{key}: expected a string")
        for key in ("threshold", "budget"):
            if key in data and (
                isinstance(data[key], bool)
                or not isinstance(data[key], (int, float))
            ):
                raise HealthRuleError(f"{path}.{key}: expected a number")
        for key in ("windows", "for_windows", "clear_windows"):
            if key in data and (
                isinstance(data[key], bool) or not isinstance(data[key], int)
            ):
                raise HealthRuleError(f"{path}.{key}: expected an integer")
        kwargs = {key: data[key] for key in known if key in data}
        kwargs.setdefault("name", "")
        kwargs.setdefault("kind", "")
        for key in ("threshold", "budget"):
            if key in kwargs:
                kwargs[key] = float(kwargs[key])
        try:
            return cls(**kwargs)
        except HealthRuleError as exc:
            # __post_init__ validated with the default "rule" prefix;
            # re-qualify with the caller's path.
            raise HealthRuleError(str(exc).replace("rule.", f"{path}.", 1)) from None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe dict (``from_dict`` round-trips exactly)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "series": self.series,
            "op": self.op,
            "threshold": self.threshold,
            "reducer": self.reducer,
            "windows": self.windows,
            "for_windows": self.for_windows,
            "clear_windows": self.clear_windows,
            "severity": self.severity,
            "good_series": self.good_series,
            "bad_series": self.bad_series,
            "budget": self.budget,
        }

    # -- evaluation ----------------------------------------------------

    def evaluate(self, telemetry: Any) -> Tuple[Optional[float], bool]:
        """``(observed value, breached?)`` against *telemetry* windows.

        A rule whose series has no samples yet observes ``None`` and is
        never breached — absence of data is not an alert.
        """
        if self.kind == "burn_rate":
            good = telemetry.value(self.good_series, "sum", self.windows)
            bad = telemetry.value(self.bad_series, "sum", self.windows)
            if bad is None:
                return None, False
            total = (good or 0.0) + bad
            if total <= 0:
                return None, False
            burn = (bad / total) / self.budget
            return burn, _compare(burn, self.op, self.threshold)
        reducer = "delta" if self.kind == "delta" else self.reducer
        value = telemetry.value(self.series, reducer, self.windows)
        if value is None:
            return None, False
        return value, _compare(value, self.op, self.threshold)


def default_health_rules() -> Tuple[HealthRule, ...]:
    """The built-in rule set every observable GAE starts with."""
    return (
        HealthRule(
            name="task-failures",
            kind="threshold",
            series="journal.failed.count",
            op=">=",
            threshold=1.0,
            severity="critical",
            clear_windows=2,
        ),
        HealthRule(
            name="throughput-collapse",
            kind="delta",
            series="journal.completed.count",
            op="<=",
            threshold=-3.0,
            windows=3,
            severity="info",
        ),
        HealthRule(
            name="failure-burn-rate",
            kind="burn_rate",
            good_series="journal.completed.count",
            bad_series="journal.failed.count",
            budget=0.1,
            op=">=",
            threshold=1.0,
            windows=6,
            severity="warning",
            clear_windows=3,
        ),
    )


class _RuleState:
    """Mutable evaluation state for one rule."""

    __slots__ = (
        "state", "since", "value", "breached_streak", "ok_streak",
        "transitions", "evaluations",
    )

    def __init__(self) -> None:
        self.state = "ok"
        self.since = 0.0
        self.value: Optional[float] = None
        self.breached_streak = 0
        self.ok_streak = 0
        self.transitions: deque = deque(maxlen=64)
        self.evaluations = 0

    def export_state(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "since": self.since,
            "value": self.value,
            "breached_streak": self.breached_streak,
            "ok_streak": self.ok_streak,
            "evaluations": self.evaluations,
            "transitions": [dict(t) for t in self.transitions],
        }

    @classmethod
    def from_state(cls, data: Dict[str, Any]) -> "_RuleState":
        out = cls()
        out.state = str(data["state"])
        out.since = float(data["since"])
        out.value = data["value"]
        out.breached_streak = int(data["breached_streak"])
        out.ok_streak = int(data["ok_streak"])
        out.evaluations = int(data.get("evaluations", 0))
        out.transitions = deque((dict(t) for t in data["transitions"]), maxlen=64)
        return out


class HealthEngine:
    """Evaluates a rule set against the telemetry windows on every tick."""

    def __init__(
        self,
        telemetry: Any,
        journal: Optional[EventJournal] = None,
        *,
        rules: Optional[Sequence[Union[HealthRule, Dict[str, Any]]]] = None,
        monalisa: Optional[Any] = None,
    ) -> None:
        self.telemetry = telemetry
        self.journal = journal
        self.monalisa = monalisa
        self.rules: Tuple[HealthRule, ...] = tuple(
            rule if isinstance(rule, HealthRule)
            else HealthRule.from_dict(rule, f"rules[{i}]")
            for i, rule in enumerate(
                default_health_rules() if rules is None else rules
            )
        )
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise HealthRuleError(f"duplicate rule names in {names}")
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        telemetry.attach_health(self)

    def attach_monalisa(self, monalisa: Any) -> None:
        self.monalisa = monalisa

    # -- evaluation ----------------------------------------------------

    def evaluate(self, t_end: float) -> None:
        """One evaluation pass at window boundary *t_end* (sim seconds)."""
        for rule in self.rules:
            state = self._states[rule.name]
            value, breached = rule.evaluate(self.telemetry)
            state.value = value
            state.evaluations += 1
            if breached:
                state.breached_streak += 1
                state.ok_streak = 0
            else:
                state.ok_streak += 1
                state.breached_streak = 0
            if state.state == "ok" and state.breached_streak >= rule.for_windows:
                self._transition(rule, state, "firing", t_end)
            elif state.state == "firing" and state.ok_streak >= rule.clear_windows:
                self._transition(rule, state, "resolved", t_end)
            if self.monalisa is not None:
                self.monalisa.publish(
                    "health", f"rule.{rule.name}", t_end,
                    1.0 if state.state == "firing" else 0.0,
                )

    def _transition(
        self, rule: HealthRule, state: _RuleState, to: str, t_end: float
    ) -> None:
        state.state = "firing" if to == "firing" else "ok"
        state.since = t_end
        state.transitions.append(
            {"to": to, "time_s": t_end, "value": state.value}
        )
        if self.journal is not None:
            self.journal.record(
                EventType.HEALTH_FIRING if to == "firing"
                else EventType.HEALTH_RESOLVED,
                rule.name,
                time=t_end,
                rule_kind=rule.kind,
                severity=rule.severity,
                value=state.value,
                threshold=rule.threshold,
            )

    # -- queries -------------------------------------------------------

    def firing(self) -> List[str]:
        return [
            rule.name for rule in self.rules
            if self._states[rule.name].state == "firing"
        ]

    def transitions(self) -> List[Dict[str, Any]]:
        """Every recorded transition, in (time, rule order) order."""
        out: List[Dict[str, Any]] = []
        for rule in self.rules:
            for t in self._states[rule.name].transitions:
                out.append({"rule": rule.name, **t})
        out.sort(key=lambda t: t["time_s"])
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Wire-safe live state for ``system.health`` / CLI / webui."""
        return {
            "enabled": True,
            "window_s": self.telemetry.window_s,
            "windows_closed": self.telemetry.windows_closed,
            "firing": len(self.firing()),
            "rules": [
                {
                    **rule.to_dict(),
                    "state": self._states[rule.name].state,
                    "since_s": self._states[rule.name].since,
                    "value": self._states[rule.name].value,
                    "evaluations": self._states[rule.name].evaluations,
                    "transitions": [
                        dict(t) for t in self._states[rule.name].transitions
                    ],
                }
                for rule in self.rules
            ],
        }

    # -- persistence ---------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "states": {
                name: state.export_state()
                for name, state in sorted(self._states.items())
            },
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        """Restore rule definitions and per-rule state machines."""
        self.rules = tuple(
            HealthRule.from_dict(r, f"rules[{i}]")
            for i, r in enumerate(state["rules"])
        )
        self._states = {
            name: _RuleState.from_state(body)
            for name, body in state["states"].items()
        }
        for rule in self.rules:
            self._states.setdefault(rule.name, _RuleState())
