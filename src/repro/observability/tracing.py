"""Spans and a simulation-clock-aware tracer.

Extends the ``new_trace_id`` scheme from :mod:`repro.clarens.telemetry`
with real spans: a :class:`Span` carries (trace_id, span_id, parent_id,
sim-time start/end, attributes, status), and a thread-safe
:class:`Tracer` keeps a bounded in-memory store of them plus a
per-thread stack of *active* spans so nested instrumentation points can
parent themselves correctly without threading a context object through
every call signature.

Timestamps come from an injected ``clock`` callable — in the GAE this is
``sim.clock`` (simulation seconds), so span durations line up with the
journal and with every queue/run time the estimators see.

The one unusual verb is :meth:`Tracer.adopt_current_trace`: a Clarens
RPC opens its spans under the *call's* trace id before anyone knows
which job it concerns; once the steering command processor resolves the
task, it re-homes the open span stack onto the job's trace so the RPC,
the steering verb, and the resulting pool events share one trace.
"""

from __future__ import annotations

import itertools
import random
import threading
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.clarens.telemetry import new_trace_id

__all__ = ["Span", "SpanContext", "Tracer", "render_span_tree"]

_SPAN_PREFIX = f"{random.getrandbits(24):06x}"
_SPAN_COUNTER = itertools.count(1)


def new_span_id() -> str:
    """Process-unique span id, same flavour as ``new_trace_id``."""
    return f"{_SPAN_PREFIX}-s{next(_SPAN_COUNTER):x}"


class SpanContext(Tuple[str, str, Optional[str]]):
    """Immutable (trace_id, span_id, parent_id) triple for propagation."""

    __slots__ = ()

    def __new__(cls, trace_id: str, span_id: str, parent_id: Optional[str] = None):
        return tuple.__new__(cls, (trace_id, span_id, parent_id))

    @property
    def trace_id(self) -> str:
        return self[0]

    @property
    def span_id(self) -> str:
        return self[1]

    @property
    def parent_id(self) -> Optional[str]:
        return self[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace_id={self[0]!r}, span_id={self[1]!r}, parent_id={self[2]!r})"


class Span:
    """One timed operation within a trace.

    ``trace_id`` is deliberately mutable: :meth:`Tracer.adopt_current_trace`
    re-homes open RPC spans onto a job trace once the target task is known.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "end", "status", "attributes")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "open"
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, self.parent_id)

    @property
    def duration_s(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def finish(self, end: float, status: str = "ok") -> None:
        if self.end is None:
            self.end = end
            self.status = status

    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe dict, the shape used by the JSONL export."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, status={self.status})"


class _ActiveStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[Span] = []


class Tracer:
    """Thread-safe bounded span store with a per-thread active-span stack."""

    def __init__(self, clock: Callable[[], float], capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self._spans: deque = deque(maxlen=capacity)
        self._active = _ActiveStack()
        self.capacity = capacity

    # -- span lifecycle ------------------------------------------------

    def start_span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent: Optional[SpanContext] = None,
        attributes: Optional[Dict[str, Any]] = None,
        start: Optional[float] = None,
        activate: bool = True,
    ) -> Span:
        """Open a span.

        Parentage, in priority order: explicit ``parent`` context, else
        the current thread's active span *if it belongs to the same
        trace*, else root.  ``trace_id`` defaults to the parent's, or a
        fresh ``new_trace_id()`` for a brand-new trace.
        """
        if parent is None:
            current = self.current_span()
            if current is not None and (trace_id is None or current.trace_id == trace_id):
                parent = current.context
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else new_trace_id()
        parent_id = parent.span_id if parent is not None and parent.trace_id == trace_id else None
        span = Span(
            name,
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            start=self._clock() if start is None else start,
            attributes=attributes,
        )
        # deque.append is atomic under the GIL; readers use _snapshot().
        self._spans.append(span)
        if activate:
            self._active.stack.append(span)
        return span

    def end_span(self, span: Span, status: str = "ok", end: Optional[float] = None) -> None:
        span.finish(self._clock() if end is None else end, status)
        stack = self._active.stack
        if span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()

    def span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent: Optional[SpanContext] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> "_SpanHandle":
        """Context manager: opens on ``__enter__``, closes on ``__exit__``
        with status ``error`` if an exception escaped."""
        return _SpanHandle(self, name, trace_id, parent, attributes)

    def instant(
        self,
        name: str,
        *,
        trace_id: str,
        parent: Optional[SpanContext] = None,
        attributes: Optional[Dict[str, Any]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        status: str = "ok",
    ) -> Span:
        """Record an already-finished (possibly zero-length) span."""
        span = self.start_span(
            name, trace_id=trace_id, parent=parent, attributes=attributes, start=start, activate=False
        )
        span.finish(span.start if end is None else end, status)
        return span

    # -- ambient context -----------------------------------------------

    def current_span(self) -> Optional[Span]:
        stack = self._active.stack
        return stack[-1] if stack else None

    def adopt_current_trace(self, trace_id: str) -> List[str]:
        """Re-home every open span on this thread's stack onto ``trace_id``.

        Returns the original trace ids that were replaced (deduplicated,
        outermost first) so callers can record the join in attributes.
        """
        replaced: List[str] = []
        for span in self._active.stack:
            if span.trace_id != trace_id:
                if span.trace_id not in replaced:
                    replaced.append(span.trace_id)
                span.attributes.setdefault("adopted_from", span.trace_id)
                span.trace_id = trace_id
        return replaced

    # -- queries -------------------------------------------------------

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        snapshot = self._snapshot()
        if trace_id is None:
            return snapshot
        return [s for s in snapshot if s.trace_id == trace_id]

    def _snapshot(self) -> List[Span]:
        while True:
            try:
                return list(self._spans)
            except RuntimeError:  # a concurrent append moved the deque under us
                continue

    def __len__(self) -> int:
        return len(self._spans)  # len() is atomic under the GIL

    def render(self, trace_id: str) -> str:
        """ASCII span tree for one trace (see :func:`render_span_tree`)."""
        return render_span_tree([s.to_wire() for s in self.spans(trace_id)])

    # -- persistence (state-store backend) ------------------------------

    def save_to(self, store: "StateStore") -> int:
        """Write every retained span into ``observability.tracing``."""
        from repro.store.registry import OBSERVABILITY_TRACING, namespace_record

        store.register_namespace(namespace_record(OBSERVABILITY_TRACING))
        store.clear(OBSERVABILITY_TRACING)
        return store.put_many(
            OBSERVABILITY_TRACING,
            ((f"{i:012d}", s.to_wire()) for i, s in enumerate(self._snapshot())),
        )

    def load_from(self, store: "StateStore") -> Dict[str, Span]:
        """Replace the span store from ``observability.tracing``.

        Returns restored spans by span id so instrumentation can re-link
        its live task/job traces.  Nothing lands on any active stack —
        restored spans are data, not open work on this thread.
        """
        from repro.store.registry import OBSERVABILITY_TRACING

        self._spans.clear()
        by_id: Dict[str, Span] = {}
        for _, row in store.items(OBSERVABILITY_TRACING):
            span = Span(
                row["name"],
                trace_id=row["trace_id"],
                span_id=row["span_id"],
                parent_id=row["parent_id"],
                start=row["start"],
                attributes=row["attributes"],
            )
            span.end = row["end"]
            span.status = row["status"]
            self._spans.append(span)
            by_id[span.span_id] = span
        return by_id


class _SpanHandle:
    __slots__ = ("_tracer", "_name", "_trace_id", "_parent", "_attributes", "span")

    def __init__(self, tracer, name, trace_id, parent, attributes) -> None:
        self._tracer = tracer
        self._name = name
        self._trace_id = trace_id
        self._parent = parent
        self._attributes = attributes
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.start_span(
            self._name, trace_id=self._trace_id, parent=self._parent, attributes=self._attributes
        )
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.span is not None:
            self._tracer.end_span(self.span, status="error" if exc_type else "ok")


def render_span_tree(spans: List[Dict[str, Any]]) -> str:
    """Render wire-format spans (``Span.to_wire`` dicts) as an ASCII tree.

    Works on exported JSONL rows as well as live tracer output, so the
    CLI ``trace`` subcommand and the webui share one renderer.  Children
    are ordered by start time; orphans (parent outside the slice, e.g.
    evicted from the bounded store) are promoted to roots.
    """
    if not spans:
        return "(no spans)"
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(s)
    for kids in children.values():
        kids.sort(key=lambda s: (s["start"], s["span_id"]))

    lines: List[str] = []

    def fmt(s: Dict[str, Any]) -> str:
        end = s.get("end")
        if end is None:
            timing = f"t={s['start']:.1f}s .. open"
        elif end == s["start"]:
            timing = f"t={s['start']:.1f}s"
        else:
            timing = f"t={s['start']:.1f}s +{end - s['start']:.1f}s"
        status = s.get("status", "open")
        extra = ""
        attrs = s.get("attributes") or {}
        keys = [k for k in ("site", "from", "to", "command", "method", "farm") if k in attrs]
        if keys:
            extra = " " + " ".join(f"{k}={attrs[k]}" for k in keys)
        return f"{s['name']}  [{timing}] {status}{extra}"

    def walk(parent_id: Optional[str], prefix: str) -> None:
        kids = children.get(parent_id, [])
        for i, s in enumerate(kids):
            last = i == len(kids) - 1
            if prefix == "" and parent_id is None:
                lines.append(fmt(s))
                walk(s["span_id"], "  ")
            else:
                branch = "`-" if last else "|-"
                lines.append(f"{prefix}{branch} {fmt(s)}")
                walk(s["span_id"], prefix + ("   " if last else "|  "))

    walk(None, "")
    return "\n".join(lines)


def _iter_traces(spans: List[Span]) -> Iterator[str]:  # pragma: no cover - helper
    seen = set()
    for s in spans:
        if s.trace_id not in seen:
            seen.add(s.trace_id)
            yield s.trace_id
