"""End-to-end observability for the GAE: spans, event journal, metrics.

The paper's Job Monitoring Service (§5) exists so users can ask "what is
my job doing right now, and why?".  PR 1 instrumented the Clarens RPC
boundary; this package follows a job the rest of the way — through the
scheduler, the Condor pools (including flock forwards), the execution
services, steering, Backup & Recovery and the MonALISA publish — as one
correlated trace:

- :mod:`repro.observability.tracing` — ``Span``/``SpanContext`` and a
  thread-safe, bounded, simulation-clock-aware ``Tracer``;
- :mod:`repro.observability.journal` — an append-only ``EventJournal``
  of typed lifecycle events with per-task timeline reconstruction;
- :mod:`repro.observability.metrics` — a unified ``MetricsRegistry`` of
  counters/gauges/histograms (reusing the Clarens latency-reservoir
  code) with Prometheus-style text exposition;
- :mod:`repro.observability.instrument` — ``GAEInstrumentation``, the
  wiring that subscribes all of the above to a built GAE, plus the
  ``ObservabilityMiddleware`` that joins Clarens call trace ids with
  job traces;
- :mod:`repro.observability.export` — JSONL export of spans + journal
  events, validated against ``docs/schemas/trace_export.schema.json``.
"""

from repro.observability.export import (
    ExportValidationError,
    export_observability,
    load_export,
    validate_export_file,
)
from repro.observability.instrument import GAEInstrumentation, ObservabilityMiddleware
from repro.observability.journal import EventJournal, EventType, JournalEvent
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.tracing import Span, SpanContext, Tracer, render_span_tree

__all__ = [
    "Counter",
    "EventJournal",
    "EventType",
    "ExportValidationError",
    "GAEInstrumentation",
    "Gauge",
    "Histogram",
    "JournalEvent",
    "MetricsRegistry",
    "ObservabilityMiddleware",
    "Span",
    "SpanContext",
    "Tracer",
    "export_observability",
    "load_export",
    "render_span_tree",
    "validate_export_file",
]
