"""Streaming telemetry: windowed aggregation over metrics and the journal.

The registry and journal built in PR 3 are point-in-time: a counter
holds its current value and the journal holds raw events, so nothing can
answer "what was the failure *rate* five minutes ago?" while a run is
still going.  :class:`TelemetryPipeline` closes that gap: it samples
every :class:`~repro.observability.metrics.MetricsRegistry` instrument
and counts journal events onto **sim-clock-aligned windows**, keeping
each resulting series in a bounded ring buffer that speaks the
:class:`repro.monalisa.TimeSeries` dialect (non-decreasing ``(time,
value)`` samples, ``window(t0, t1)`` slices, ``as_timeseries()``).

Series naming, for a window width ``w`` closing at boundary ``t``:

- ``journal.<event-type>.count`` — events of that type in ``[t-w, t)``;
- ``journal.<event-type>.rate``  — ``count / w`` (events per second);
- ``journal.<event-type>.total`` — cumulative count since the origin;
- ``metric.<name>.total`` / ``.rate``   — counter value and per-window rate;
- ``metric.<name>.value`` / ``.delta``  — gauge value and per-window change;
- ``metric.<name>.count`` / ``.rate``   — histogram observation count/rate;
- ``metric.<name>.p50|.p95|.p99``       — histogram percentile snapshots.

Determinism contract: every derived value is produced by the pure
functions :func:`derive_window_series` and :func:`windows_from_events`
applied to raw samples, so aggregates recomputed offline from the raw
journal/metric samples are **bit-identical** to the streaming values
(pinned by ``tests/property/test_properties_telemetry.py``).  Windows
are assigned by event *time*, not callback order, so events recorded at
the exact boundary instant land in the next window regardless of event
queue tie-breaking.

The JSONL export mirrors the trace export (meta header + one row per
series) and validates against ``docs/schemas/telemetry_export.schema.json``
via the same minimal JSON-Schema checker
(:func:`repro.observability.export.validate_export_file`).
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.clarens.telemetry import percentile
from repro.monalisa.timeseries import TimeSeries
from repro.observability.journal import EventJournal, JournalEvent
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryPipeline",
    "WindowSeries",
    "derive_window_series",
    "reduce_values",
    "windows_from_events",
]

TELEMETRY_SCHEMA_VERSION = "gae-telemetry/1"

#: Reducers :meth:`WindowSeries.reduce` understands.
REDUCERS = ("last", "sum", "mean", "min", "max", "delta", "p50", "p95", "p99")


def reduce_values(values: Sequence[float], reducer: str) -> Optional[float]:
    """Apply a named reducer to a window of values (None when empty)."""
    if not values:
        return None
    if reducer == "last":
        return values[-1]
    if reducer == "sum":
        return sum(values)
    if reducer == "mean":
        return sum(values) / len(values)
    if reducer == "min":
        return min(values)
    if reducer == "max":
        return max(values)
    if reducer == "delta":
        return values[-1] - values[0]
    if reducer in ("p50", "p95", "p99"):
        return percentile(sorted(values), int(reducer[1:]))
    raise ValueError(f"unknown reducer {reducer!r} (known: {', '.join(REDUCERS)})")


def derive_window_series(
    raw: Sequence[Tuple[float, float]], kind: str, window_s: float
) -> List[Tuple[float, float]]:
    """Derived per-window samples from raw boundary samples.

    ``kind`` is ``"counter"`` (rate: successive deltas divided by the
    window width, the series implicitly starting at 0 before its first
    sample) or ``"gauge"`` (delta between successive samples).  The
    first raw sample only seeds the previous value — the derived series
    starts one window later, exactly like the streaming pipeline.
    """
    if kind not in ("counter", "gauge"):
        raise ValueError(f"unknown derivation kind {kind!r}")
    out: List[Tuple[float, float]] = []
    prev: Optional[float] = None
    for t, v in raw:
        if prev is not None:
            if kind == "counter":
                out.append((t, (v - prev) / window_s))
            else:
                out.append((t, v - prev))
        prev = v
    return out


def windows_from_events(
    events: Iterable[JournalEvent],
    boundaries: Sequence[float],
    origin: float,
) -> Dict[str, List[Tuple[float, int]]]:
    """Recompute per-window event counts from raw journal events.

    ``boundaries`` are the closed windows' end times (the pipeline's
    series times); window ``i`` spans ``[boundaries[i-1], boundaries[i])``
    with ``origin`` before the first.  Returns, per event-type value, the
    count series starting at the first window in which that type appears
    (later zero windows included) — exactly the streaming
    ``journal.<type>.count`` series shape.
    """
    starts = [origin] + list(boundaries[:-1])
    counts: Dict[str, List[int]] = {}
    for event in events:
        if event.time < origin:
            continue
        for i, (lo, hi) in enumerate(zip(starts, boundaries)):
            if lo <= event.time < hi:
                key = event.type.value
                series = counts.setdefault(key, [0] * len(boundaries))
                series[i] += 1
                break
    out: Dict[str, List[Tuple[float, int]]] = {}
    for key, values in sorted(counts.items()):
        first = next(i for i, v in enumerate(values) if v)
        out[key] = list(zip(boundaries[first:], values[first:]))
    return out


class WindowSeries:
    """Bounded ring of per-window ``(time, value)`` samples.

    The storage dialect matches :class:`repro.monalisa.TimeSeries`:
    times are non-decreasing, ``window(t0, t1)`` returns the inclusive
    slice, and ``as_timeseries()`` lifts the ring into a real
    ``TimeSeries`` for anything that wants the numpy-backed queries.
    """

    __slots__ = ("name", "source", "window_s", "_times", "_values")

    def __init__(
        self, name: str, source: str, window_s: float, capacity: int
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.source = source  # "journal" | "metric"
        self.window_s = window_s
        self._times: deque = deque(maxlen=capacity)
        self._values: deque = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"out-of-order window sample at t={time:.6g} "
                f"(last was {self._times[-1]:.6g})"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def latest(self) -> Tuple[float, float]:
        if not self._times:
            raise ValueError(f"series {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def samples(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def values(self, last_n: Optional[int] = None) -> List[float]:
        out = list(self._values)
        return out if last_n is None else out[-last_n:]

    def window(self, t0: float, t1: float) -> List[Tuple[float, float]]:
        """Samples with ``t0 <= time <= t1`` (TimeSeries.window dialect)."""
        if t1 < t0:
            raise ValueError(f"t1 < t0 ({t1} < {t0})")
        return [
            (t, v) for t, v in zip(self._times, self._values) if t0 <= t <= t1
        ]

    def reduce(self, reducer: str, last_n: Optional[int] = None) -> Optional[float]:
        """Apply a :data:`REDUCERS` member over the last *last_n* windows."""
        return reduce_values(self.values(last_n), reducer)

    def as_timeseries(self) -> TimeSeries:
        return TimeSeries.from_samples(self.samples())


class TelemetryPipeline:
    """Continuous windowed aggregation on the simulation clock.

    Construction wires nothing; :meth:`attach` subscribes to the journal
    and :meth:`start` arms the periodic boundary tick (`sim.every`,
    aligned so boundaries stay at ``origin + k * window_s`` even across
    a checkpoint/restore).  Each tick closes one window: every registry
    instrument is sampled, journal counts are folded in, and the
    attached :class:`~repro.observability.health.HealthEngine` (if any)
    is evaluated against the fresh windows.
    """

    def __init__(
        self,
        sim: Any,
        metrics: MetricsRegistry,
        journal: EventJournal,
        *,
        window_s: float = 60.0,
        retain: int = 256,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if retain <= 0:
            raise ValueError("retain must be positive")
        self.sim = sim
        self.metrics = metrics
        self.journal = journal
        self.window_s = float(window_s)
        self.retain = int(retain)
        self.origin = float(sim.now)
        self.windows_closed = 0
        self.health: Optional[Any] = None  # HealthEngine, set by attach_health
        self._series: Dict[str, WindowSeries] = {}
        self._boundaries: deque = deque(maxlen=retain)
        self._upcoming_boundary = self.origin + self.window_s
        self._current_counts: Dict[str, int] = {}
        self._next_counts: Dict[str, int] = {}
        self._cumulative: Dict[str, int] = {}
        self._handle = None
        self._listening = False
        self._seeded = False
        #: Called after each closed window with the boundary time — the
        #: scenario engine and tests hook progress off this.
        self.on_window: List[Callable[[float], None]] = []

    # -- wiring --------------------------------------------------------

    def attach(self) -> "TelemetryPipeline":
        """Subscribe to the journal (idempotent)."""
        if not self._listening:
            self.journal.listeners.append(self._on_event)
            self._listening = True
        return self

    def attach_health(self, health: Any) -> None:
        """Evaluate *health* (a HealthEngine) after every closed window."""
        self.health = health

    def start(self) -> None:
        """Arm the periodic window tick (idempotent while armed)."""
        if self._handle is not None and not self._handle.cancelled:
            return
        self.attach()
        if not self._seeded:
            self._sample_metrics(self.origin, seed_only=True)
            self._seeded = True
        first_delay = self._upcoming_boundary - self.sim.now
        if first_delay <= 0:  # checkpoint landed exactly on a boundary
            first_delay = None
        self._handle = self.sim.every(
            self.window_s, self._tick, label="telemetry.window",
            first_delay=first_delay,
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- streaming -----------------------------------------------------

    def _on_event(self, event: JournalEvent) -> None:
        target = (
            self._current_counts
            if event.time < self._upcoming_boundary
            else self._next_counts
        )
        key = event.type.value
        target[key] = target.get(key, 0) + 1

    def _tick(self) -> None:
        t_end = self._upcoming_boundary
        self._upcoming_boundary = t_end + self.window_s
        counts = self._current_counts
        self._current_counts = self._next_counts
        self._next_counts = {}
        self._boundaries.append(t_end)

        for key in sorted(counts):
            self._cumulative[key] = self._cumulative.get(key, 0) + counts[key]
        # Every journal type ever seen keeps a gap-free count series.
        for key in sorted(self._cumulative):
            count = counts.get(key, 0)
            self._append(f"journal.{key}.count", "journal", t_end, float(count))
            self._append(
                f"journal.{key}.rate", "journal", t_end, count / self.window_s
            )
            self._append(
                f"journal.{key}.total", "journal", t_end,
                float(self._cumulative[key]),
            )

        self._sample_metrics(t_end)
        self.windows_closed += 1

        if self.health is not None:
            self.health.evaluate(t_end)
        for hook in self.on_window:
            hook(t_end)

    def _sample_metrics(self, t: float, seed_only: bool = False) -> None:
        for name in self.metrics.names():
            inst = self.metrics.get(name)
            if isinstance(inst, Counter):
                self._sample_derived(
                    f"metric.{name}.total", f"metric.{name}.rate",
                    "counter", t, inst.total(), seed_only,
                )
            elif isinstance(inst, Gauge):
                self._sample_derived(
                    f"metric.{name}.value", f"metric.{name}.delta",
                    "gauge", t, inst.total(), seed_only,
                )
            elif isinstance(inst, Histogram):
                self._sample_derived(
                    f"metric.{name}.count", f"metric.{name}.rate",
                    "counter", t, inst.total_count(), seed_only,
                )
                if not seed_only:
                    summary = inst.merged_summary()
                    for q in ("p50", "p95", "p99"):
                        if q in summary:
                            self._append(
                                f"metric.{name}.{q}", "metric", t, summary[q]
                            )

    def _sample_derived(
        self,
        raw_name: str,
        derived_name: str,
        kind: str,
        t: float,
        value: float,
        seed_only: bool,
    ) -> None:
        raw = self._get_series(raw_name, "metric")
        prev = raw.values(1)
        raw.append(t, value)
        if seed_only or not prev:
            return
        # Same arithmetic as derive_window_series, streamed one step.
        if kind == "counter":
            derived = (value - prev[0]) / self.window_s
        else:
            derived = value - prev[0]
        self._append(derived_name, "metric", t, derived)

    def _get_series(self, name: str, source: str) -> WindowSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = WindowSeries(
                name, source, self.window_s, self.retain
            )
        return series

    def _append(self, name: str, source: str, t: float, value: float) -> None:
        self._get_series(name, source).append(t, value)

    # -- queries -------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._series)

    def series(self, name: str) -> Optional[WindowSeries]:
        return self._series.get(name)

    def boundaries(self) -> List[float]:
        """End times of the retained closed windows, oldest first."""
        return list(self._boundaries)

    def value(
        self, name: str, reducer: str = "last", last_n: Optional[int] = None
    ) -> Optional[float]:
        """Reduce one series (None when the series is absent or empty)."""
        series = self._series.get(name)
        if series is None:
            return None
        return series.reduce(reducer, last_n)

    def to_dict(
        self,
        *,
        names: Optional[Sequence[str]] = None,
        last_n: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Wire-safe snapshot: meta plus per-series samples."""
        selected = self.names() if names is None else [
            n for n in names if n in self._series
        ]
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "window_s": self.window_s,
            "origin_s": self.origin,
            "sim_now": self.sim.now,
            "windows_closed": self.windows_closed,
            "series": {
                name: {
                    "source": self._series[name].source,
                    "samples": [
                        [t, v]
                        for t, v in (
                            self._series[name].samples()[-last_n:]
                            if last_n is not None
                            else self._series[name].samples()
                        )
                    ],
                }
                for name in selected
            },
        }

    def export_jsonl(self, path: Union[str, "Any"]) -> int:
        """Write the windows as JSONL (meta row + one row per series).

        The shape is pinned by ``docs/schemas/telemetry_export.schema.json``;
        validate with
        ``validate_export_file(path, "docs/schemas/telemetry_export.schema.json")``.
        Returns the row count.
        """
        import json
        from pathlib import Path

        snapshot = self.to_dict()
        rows: List[Dict[str, Any]] = [
            {
                "kind": "meta",
                "schema": TELEMETRY_SCHEMA_VERSION,
                "window_s": self.window_s,
                "origin_s": self.origin,
                "sim_now": self.sim.now,
                "windows_closed": self.windows_closed,
                "series_count": len(snapshot["series"]),
            }
        ]
        for name, body in snapshot["series"].items():
            rows.append(
                {
                    "kind": "series",
                    "name": name,
                    "source": body["source"],
                    "samples": body["samples"],
                }
            )
        out = Path(path)
        with out.open("w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, separators=(",", ":")) + "\n")
        return len(rows)

    # -- persistence ---------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """Everything needed to resume the windows without a gap."""
        return {
            "window_s": self.window_s,
            "retain": self.retain,
            "origin": self.origin,
            "upcoming_boundary": self._upcoming_boundary,
            "windows_closed": self.windows_closed,
            "boundaries": list(self._boundaries),
            "current_counts": dict(self._current_counts),
            "next_counts": dict(self._next_counts),
            "cumulative": dict(self._cumulative),
            "seeded": self._seeded,
            "series": {
                name: {
                    "source": s.source,
                    "samples": [[t, v] for t, v in s.samples()],
                }
                for name, s in sorted(self._series.items())
            },
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        """Restore ring buffers and window bookkeeping from a checkpoint."""
        self.window_s = float(state["window_s"])
        self.retain = int(state["retain"])
        self.origin = float(state["origin"])
        self._upcoming_boundary = float(state["upcoming_boundary"])
        self.windows_closed = int(state["windows_closed"])
        self._boundaries = deque(
            (float(b) for b in state["boundaries"]), maxlen=self.retain
        )
        self._current_counts = {k: int(v) for k, v in state["current_counts"].items()}
        self._next_counts = {k: int(v) for k, v in state["next_counts"].items()}
        self._cumulative = {k: int(v) for k, v in state["cumulative"].items()}
        self._seeded = bool(state["seeded"])
        self._series = {}
        for name, body in state["series"].items():
            series = WindowSeries(name, body["source"], self.window_s, self.retain)
            for t, v in body["samples"]:
                series.append(float(t), float(v))
            self._series[name] = series
