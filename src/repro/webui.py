"""A read-only web interface over a running GAE.

§4.2.4: after a job completes, Backup & Recovery archives its execution
state, which "is made available for download on the web interface."  This
module is that interface — a small threaded HTTP server (stdlib) rendering
the GAE's state as HTML tables and serving execution states as JSON
downloads:

- ``/``                 — overview: sites, loads, job counts
- ``/jobs``             — every monitored task
- ``/job/<task_id>``    — one task's full monitoring record
- ``/state/<task_id>``  — the archived execution state (JSON download)
- ``/trace/<task_id>``  — the task's rendered span tree (observability)
- ``/timeline/<task_id>`` — the task's journal timeline (JSON)
- ``/notifications``    — Backup & Recovery's client notifications
- ``/health``           — the declarative health rules' live state and
  their firing/resolved transition history
- ``/weather``          — the MonALISA grid-weather snapshot (JSON)
- ``/store``            — the GAE's state-store namespaces and key counts
  (JSON; the persistence layer behind checkpoint/restore)
- ``/metrics``          — the Clarens host's call-pipeline telemetry plus
  every metric in the unified observability registry, in Prometheus-style
  text exposition

Unknown task ids get a structured JSON 404 body (machine-readable, like
the Clarens fault shape) rather than bare text.  Read-only by design:
steering *commands* go through the authenticated Clarens API, never
through a browser GET.
"""

from __future__ import annotations

import html
import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from socketserver import ThreadingMixIn
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import unquote

from repro.gae import GAE

_PAGE = """<!DOCTYPE html>
<html><head><title>GAE — {title}</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; }}
 table {{ border-collapse: collapse; }}
 th, td {{ border: 1px solid #999; padding: 4px 10px; text-align: left; }}
 th {{ background: #eee; }}
 nav a {{ margin-right: 1.2em; }}
</style></head>
<body>
<nav><a href="/">overview</a><a href="/jobs">jobs</a>
<a href="/notifications">notifications</a><a href="/health">health</a>
<a href="/weather">grid weather</a>
<a href="/store">store</a><a href="/metrics">metrics</a></nav>
<h1>{title}</h1>
{body}
<p><small>Grid Analysis Environment — simulated time t={now:.1f}s</small></p>
</body></html>"""


def _table(headers: List[str], rows: List[List[Any]]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _esc(value: Any) -> str:
    return html.escape(str(value))


class _GAEStatusHandler(BaseHTTPRequestHandler):
    gae: GAE  # injected by the server class

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            path = unquote(self.path.split("?", 1)[0]).rstrip("/") or "/"
            if path == "/":
                self._send_html("Overview", self._overview())
            elif path == "/jobs":
                self._send_html("Jobs", self._jobs())
            elif path.startswith("/job/"):
                task_id = path[len("/job/"):]
                body = self._job_detail(task_id)
                if body is None:
                    self._send_not_found("task", task_id)
                else:
                    self._send_html("Job detail", body)
            elif path.startswith("/state/"):
                self._send_state(path[len("/state/"):])
            elif path.startswith("/trace/"):
                self._send_trace(path[len("/trace/"):])
            elif path.startswith("/timeline/"):
                self._send_timeline(path[len("/timeline/"):])
            elif path == "/notifications":
                self._send_html("Notifications", self._notifications())
            elif path == "/health":
                self._send_health()
            elif path == "/weather":
                self._send_json(self._weather())
            elif path == "/store":
                self._send_store()
            elif path == "/metrics":
                self._send_text(self._metrics())
            else:
                self._send_error(404, f"no such page: {path}")
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(500, f"internal error: {exc}")

    # ------------------------------------------------------------------
    # page bodies
    # ------------------------------------------------------------------
    def _overview(self) -> str:
        gae = self.gae
        rows = []
        for name in sorted(gae.grid.sites):
            site = gae.grid.sites[name]
            try:
                gae.grid.execution_services[name].ping()
                status = "up"
            except Exception:
                status = "DOWN"
            rows.append([
                _esc(name), status, site.pool.total_slots, site.pool.busy_slots,
                len(site.pool.queue_snapshot()), f"{site.current_load():.2f}"
                if status == "up" else "?",
            ])
        monitored = len(gae.monitoring.db_manager) + len(
            gae.monitoring.collector.collect_running()
        )
        return (
            f"<p>{len(rows)} sites; ~{monitored} monitored tasks; "
            f"{len(gae.steering.actions)} autonomous steering actions.</p>"
            + _table(["site", "status", "slots", "busy", "queued", "load"], rows)
        )

    def _jobs(self) -> str:
        # The jobs table is the UI's hot page; its rendered HTML is
        # memoized in the host's epoch-keyed read cache under a
        # pseudo-method name, invalidated by the same epochs the jobmon
        # RPCs depend on.
        return self.gae.host.read_cache.cached(
            "webui.jobs", (), ("clock", "scheduler", "pool:*", "monitoring"),
            self._render_jobs,
        )

    def _render_jobs(self) -> str:
        gae = self.gae
        records = {r.task_id: r for r in gae.monitoring.collector.collect_running()}
        for task_id in gae.monitoring.db_manager.task_ids():
            records.setdefault(task_id, gae.monitoring.db_manager.get(task_id))
        rows = []
        for task_id in sorted(records):
            r = records[task_id]
            rows.append([
                f'<a href="/job/{_esc(task_id)}">{_esc(task_id)}</a>',
                _esc(r.job_id), _esc(r.owner), _esc(r.site), _esc(r.status),
                f"{r.progress * 100:.1f}%", f"{r.elapsed_time_s:.1f}",
            ])
        return _table(
            ["task", "job", "owner", "site", "status", "progress", "elapsed (s)"],
            rows,
        )

    def _job_detail(self, task_id: str) -> Optional[str]:
        record = self.gae.monitoring.manager.get_info(task_id)
        if record is None:
            return None
        rows = [[_esc(k), _esc(v)] for k, v in sorted(vars(record).items())]
        extra = ""
        if task_id in self.gae.steering.backup_recovery.execution_states:
            extra = (
                f'<p><a href="/state/{_esc(task_id)}">download execution state'
                "</a> (JSON)</p>"
            )
        obs = self.gae.observability
        if obs is not None and obs.trace_id_of(task_id) is not None:
            extra += (
                f'<p><a href="/trace/{_esc(task_id)}">span tree</a> · '
                f'<a href="/timeline/{_esc(task_id)}">timeline (JSON)</a></p>'
            )
        # With continuous monitoring enabled, render the Figure 7-style
        # progress curve straight from the DB's snapshot history.
        history = self.gae.monitoring.db_manager.progress_history(task_id)
        if len(history) >= 2:
            from repro.analysis.figures import FigureData

            times = [h[0] for h in history]
            progress = [h[2] * 100.0 for h in history]
            figure = FigureData(
                title=f"Progress of {task_id}",
                x_label="simulated time (s)",
                y_label="progress (%)",
            ).add("progress", times, progress)
            extra += "<pre>" + html.escape(figure.render()) + "</pre>"
        return _table(["field", "value"], rows) + extra

    def _notifications(self) -> str:
        rows = [
            [f"{n.time:.1f}", _esc(n.kind), _esc(n.task_id), _esc(n.owner),
             _esc(n.site), _esc(n.detail)]
            for n in self.gae.steering.backup_recovery.notifications
        ]
        return _table(["time (s)", "kind", "task", "owner", "site", "detail"], rows)

    def _send_health(self) -> None:
        obs = self.gae.observability
        if obs is None or obs.health is None:
            self._send_json({"error": "health-disabled", "status": 503}, code=503)
            return
        snap = obs.health_snapshot()
        firing = snap["firing"]
        headline = (
            f"<p><strong>{firing} rule(s) firing</strong></p>"
            if firing
            else "<p>all rules ok</p>"
        )
        rule_rows = []
        transition_rows = []
        for rule in snap["rules"]:
            rule_rows.append([
                _esc(rule["name"]), _esc(rule["kind"]), _esc(rule["severity"]),
                _esc(rule["state"]), f"{rule['since_s']:.1f}",
                "" if rule["value"] is None else f"{rule['value']:.4g}",
                _esc(rule["op"]) + " " + f"{rule['threshold']:.4g}",
                rule["evaluations"],
            ])
            for t in rule["transitions"]:
                transition_rows.append(
                    (t["time_s"], rule["name"], t["to"], t["value"])
                )
        transition_rows.sort(key=lambda r: (r[0], r[1]))
        body = headline + _table(
            ["rule", "kind", "severity", "state", "since (s)", "value",
             "condition", "evaluations"],
            rule_rows,
        )
        if transition_rows:
            body += "<h2>Transitions</h2>" + _table(
                ["time (s)", "rule", "to", "value"],
                [
                    [f"{t:.1f}", _esc(name), _esc(to),
                     "" if value is None else f"{value:.4g}"]
                    for t, name, to, value in transition_rows
                ],
            )
        body += (
            f"<p><small>window {snap['window_s']:.0f}s · "
            f"{snap['windows_closed']} windows closed</small></p>"
        )
        self._send_html("Health", body)

    def _weather(self) -> Dict[str, float]:
        return self.gae.host.read_cache.cached(
            "webui.weather", (), ("monalisa",), self._compute_weather,
        )

    def _compute_weather(self) -> Dict[str, float]:
        return {
            farm: self.gae.monalisa.site_load(farm, default=0.0)
            for farm in self.gae.monalisa.farms()
            if self.gae.monalisa.has_series(farm, "load")
        }

    def _send_store(self) -> None:
        """The persistence layer's namespaces and key counts (JSON).

        Lists the canonical registry (everything a checkpoint file holds)
        and, for each namespace, whether this GAE's live store has it
        registered and how many keys it currently carries.
        """
        from repro.store.registry import NAMESPACES

        store = self.gae.store
        if store is None:
            self._send_json({"error": "store-disabled", "status": 503}, code=503)
            return
        live = {ns.name for ns in store.namespaces()}
        namespaces = [
            {
                "name": ns.name,
                "version": ns.version,
                "description": ns.description,
                "registered": ns.name in live,
                "keys": store.count(ns.name) if ns.name in live else 0,
            }
            for ns in NAMESPACES
        ]
        self._send_json({
            "backend": type(store).__name__,
            "namespaces": namespaces,
        })

    def _send_trace(self, task_id: str) -> None:
        obs = self.gae.observability
        if obs is None:
            self._send_json({"error": "observability-disabled", "status": 503}, code=503)
            return
        rendered = obs.render_trace(task_id)
        if rendered is None:
            self._send_not_found("trace", task_id)
            return
        trace_id = obs.trace_id_of(task_id)
        body = (
            f"<p>trace <code>{_esc(trace_id)}</code> for task "
            f"<code>{_esc(task_id)}</code></p>"
            f"<pre>{html.escape(rendered)}</pre>"
            f'<p><a href="/timeline/{_esc(task_id)}">timeline (JSON)</a></p>'
        )
        self._send_html(f"Trace {task_id}", body)

    def _send_timeline(self, task_id: str) -> None:
        obs = self.gae.observability
        if obs is None:
            self._send_json({"error": "observability-disabled", "status": 503}, code=503)
            return
        timeline = obs.timeline_wire(task_id)
        if not timeline:
            self._send_not_found("timeline", task_id)
            return
        self._send_json({"task_id": task_id, "events": timeline})

    def _metrics(self) -> str:
        """Prometheus-style text exposition of the host's call telemetry."""
        snapshot = self.gae.host.stats.snapshot()
        lines = [
            "# HELP gae_rpc_calls_total Calls dispatched by the Clarens host.",
            "# TYPE gae_rpc_calls_total counter",
            f"gae_rpc_calls_total {snapshot['calls']}",
            "# HELP gae_rpc_faults_total Calls that ended in a fault.",
            "# TYPE gae_rpc_faults_total counter",
            f"gae_rpc_faults_total {snapshot['faults']}",
            "# HELP gae_rpc_method_calls_total Per-method call counts.",
            "# TYPE gae_rpc_method_calls_total counter",
        ]
        for method in sorted(snapshot["per_method"]):
            lines.append(
                f'gae_rpc_method_calls_total{{method="{method}"}} '
                f"{snapshot['per_method'][method]}"
            )
        lines += [
            "# HELP gae_rpc_transport_calls_total Calls by arriving transport.",
            "# TYPE gae_rpc_transport_calls_total counter",
        ]
        for transport in sorted(snapshot.get("per_transport", {})):
            lines.append(
                f'gae_rpc_transport_calls_total{{transport="{transport}"}} '
                f"{snapshot['per_transport'][transport]}"
            )
        lines += [
            "# HELP gae_rpc_latency_ms Per-method call latency quantiles.",
            "# TYPE gae_rpc_latency_ms summary",
        ]
        for method in sorted(snapshot["latency_ms"]):
            summary = snapshot["latency_ms"][method]
            for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"),
                                  ("0.99", "p99_ms")):
                if key in summary:
                    lines.append(
                        f'gae_rpc_latency_ms{{method="{method}",'
                        f'quantile="{quantile}"}} {summary[key]:.6f}'
                    )
        lines += [
            "# HELP gae_site_load Latest published load per site.",
            "# TYPE gae_site_load gauge",
        ]
        for farm, load in sorted(self._weather().items()):
            lines.append(f'gae_site_load{{site="{farm}"}} {load:.6f}')
        if self.gae.host.worker_pools:
            lines += [
                "# HELP gae_aio_worker Async front-end worker-pool telemetry.",
                "# TYPE gae_aio_worker untyped",
            ]
            for label in sorted(self.gae.host.worker_pools):
                lines.extend(
                    self.gae.host.worker_pools[label].prometheus_lines(label)
                )
        if self.gae.observability is not None:
            lines.extend(self.gae.observability.metrics.prometheus_lines())
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # response plumbing
    # ------------------------------------------------------------------
    def _send_html(self, title: str, body: str) -> None:
        text = _PAGE.format(title=html.escape(title), body=body, now=self.gae.sim.now)
        payload = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, text: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, value: Any, code: int = 200) -> None:
        payload = json.dumps(value, indent=2).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_not_found(self, resource: str, identifier: str) -> None:
        """Structured 404: machine-readable JSON, not bare text."""
        self._send_json(
            {"error": "not-found", "resource": resource, "id": identifier,
             "status": 404},
            code=404,
        )

    def _send_state(self, task_id: str) -> None:
        states = self.gae.steering.backup_recovery.execution_states
        if task_id not in states:
            self._send_not_found("execution-state", task_id)
            return
        payload = json.dumps(states[task_id], indent=2).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header(
            "Content-Disposition", f'attachment; filename="{task_id}-state.json"'
        )
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(self, code: int, message: str) -> None:
        payload = message.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class _ThreadedHTTPServer(ThreadingMixIn, HTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class GAEWebUI:
    """Serves the read-only status pages for one GAE.

    Use as a context manager::

        with GAEWebUI(gae) as ui:
            print("browse", ui.url)
    """

    def __init__(self, gae: GAE, bind: str = "127.0.0.1", port: int = 0) -> None:
        self.gae = gae
        handler = type("BoundHandler", (_GAEStatusHandler,), {"gae": gae})
        self._server = _ThreadedHTTPServer((bind, port), handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="gae-webui", daemon=True
        )
        self._started = False

    def start(self) -> "GAEWebUI":
        """Begin serving in a background thread."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the UI is bound to."""
        return self._server.server_address  # type: ignore[return-value]

    @property
    def url(self) -> str:
        """Root URL of the status pages."""
        bind, port = self.address
        return f"http://{bind}:{port}/"

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        if self._started:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._started = False
        self._server.server_close()

    def __enter__(self) -> "GAEWebUI":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
