"""Standard Workload Format (SWF) trace import.

The actual accounting data the paper used — the SDSC Paragon trace
collected by Allen Downey in 1995/96 — is archived in the Parallel
Workloads Archive as ``SDSC-Par-95/96`` in **SWF**, the 18-field standard
workload format.  This module parses SWF, so anyone holding the real trace
can run the Figure 5 experiment on the authentic data instead of our
synthetic substitute::

    from repro.workloads.swf import read_swf, swf_history_and_tests
    jobs = read_swf(open("SDSC-Par-1995-3.1-cln.swf").read())
    history, tests = swf_history_and_tests(jobs, n_history=100, n_tests=20)

SWF fields used (1-indexed, per the archive's definition):

1 job number · 2 submit time · 3 wait time · 4 run time ·
5 allocated processors · 8 requested time · 11 status ·
12 user id · 13 group id · 14 executable (application) number ·
15 queue number · 16 partition number

Unknown values are ``-1`` and are mapped to conservative defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.gridsim.job import Task, TaskSpec


class SwfParseError(ValueError):
    """Raised for records that do not follow the 18-field SWF layout."""


@dataclass(frozen=True)
class SwfJob:
    """One parsed SWF job record (the fields this library uses)."""

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    processors: int
    requested_time: float
    status: int           # 1 = completed, 0/5 = failed/cancelled, -1 unknown
    user_id: int
    group_id: int
    executable_number: int
    queue_number: int
    partition_number: int

    @property
    def successful(self) -> bool:
        """SWF status 1 means the job completed normally."""
        return self.status == 1

    def to_task_record(self) -> TaskRecord:
        """Map onto the estimator's history-record type.

        SWF's numeric ids become the categorical attributes the similarity
        templates match on; a missing requested time falls back to the
        actual runtime (the archive's convention for unknown requests).
        """
        requested_s = self.requested_time if self.requested_time > 0 else self.run_time
        return TaskRecord(
            owner=f"user{self.user_id}",
            account=f"group{self.group_id}",
            partition=f"part{self.partition_number}",
            queue=f"queue{self.queue_number}",
            nodes=max(1, self.processors),
            task_type="batch",
            executable=f"app{self.executable_number}",
            requested_cpu_hours=max(requested_s, 1.0) / 3600.0,
            runtime_s=max(1.0, self.run_time),
            status="successful" if self.successful else "failed",
            submit_time=self.submit_time,
            start_time=self.submit_time + max(0.0, self.wait_time),
            end_time=self.submit_time + max(0.0, self.wait_time) + max(0.0, self.run_time),
        )

    def to_task(self) -> Task:
        """A live simulator task with the recorded runtime as its work."""
        record = self.to_task_record()
        spec = TaskSpec(
            owner=record.owner,
            account=record.account,
            partition=record.partition,
            queue=record.queue,
            nodes=record.nodes,
            task_type="batch",
            requested_cpu_hours=record.requested_cpu_hours,
            executable=record.executable,
        )
        return Task(spec=spec, work_seconds=max(1.0, self.run_time))


def _parse_line(line: str, lineno: int) -> SwfJob:
    fields = line.split()
    if len(fields) < 18:
        raise SwfParseError(
            f"line {lineno}: expected 18 SWF fields, got {len(fields)}"
        )
    try:
        values = [float(f) for f in fields[:18]]
    except ValueError as exc:
        raise SwfParseError(f"line {lineno}: non-numeric SWF field: {exc}") from exc
    return SwfJob(
        job_number=int(values[0]),
        submit_time=values[1],
        wait_time=values[2],
        run_time=values[3],
        processors=int(values[4]),
        requested_time=values[7],
        status=int(values[10]),
        user_id=int(values[11]),
        group_id=int(values[12]),
        executable_number=int(values[13]),
        queue_number=int(values[14]),
        partition_number=int(values[15]),
    )


def read_swf(source: Union[str, Path], limit: Optional[int] = None) -> List[SwfJob]:
    """Parse SWF text (or a file path) into :class:`SwfJob` records.

    Header/comment lines start with ``;`` and are skipped.  ``limit`` stops
    after that many job records (the archive traces hold 10^5+ jobs).
    """
    raw = str(source)
    try:
        is_file = "\n" not in raw and len(raw) < 1024 and Path(raw).exists()
    except OSError:
        is_file = False
    text = Path(raw).read_text() if is_file else raw

    jobs: List[SwfJob] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(";"):
            continue
        jobs.append(_parse_line(stripped, lineno))
        if limit is not None and len(jobs) >= limit:
            break
    return jobs


def swf_to_history(jobs: List[SwfJob]) -> HistoryRepository:
    """Convert parsed SWF jobs into an estimator history repository."""
    return HistoryRepository(j.to_task_record() for j in jobs)


def swf_history_and_tests(
    jobs: List[SwfJob],
    n_history: int = 100,
    n_tests: int = 20,
    skip: int = 0,
) -> Tuple[HistoryRepository, List[SwfJob]]:
    """The Figure 5 setup over a real SWF trace.

    Takes ``n_history`` jobs (after ``skip``) as the history, then the next
    successful jobs whose application/user appeared in the history as the
    test set — mirroring the synthetic generator's protocol so results are
    comparable.
    """
    pool = jobs[skip:]
    if len(pool) < n_history + n_tests:
        raise SwfParseError(
            f"trace too short: need >= {n_history + n_tests} jobs after skip, "
            f"have {len(pool)}"
        )
    history_jobs = pool[:n_history]
    history = swf_to_history(history_jobs)
    seen_apps = {
        j.executable_number for j in history_jobs if j.successful
    }
    tests = [
        j
        for j in pool[n_history:]
        if j.successful and j.executable_number in seen_apps
    ][:n_tests]
    if len(tests) < n_tests:
        raise SwfParseError(
            f"not enough matching successful test jobs (found {len(tests)})"
        )
    return history, tests
