"""A synthetic SDSC Paragon accounting trace (the Figure 5 workload).

The paper tested its Runtime Estimator on "accounting data from the Paragon
Supercomputer at the San Diego Supercomputing Center … collected by Allen
Downey in 1995", with these fields per job: account name; login name;
partition; number of nodes; job type (batch or interactive); job status
(successful or not); requested CPU hours; queue name; charge rates for CPU
and idle hours; and submit/start/completion times.

That trace is not redistributable here, so this module generates a
statistically faithful substitute:

- **runtime distribution**: Downey's own analysis of this trace (Downey,
  "A parallel workload model and its implications for processor
  allocation", 1997) found job lifetimes close to **log-uniform** over
  several orders of magnitude; application-family characteristic runtimes
  are drawn log-uniformly over [30 s, 12 h];
- **predictability structure**: history-based estimation only works
  because "tasks with similar characteristics generally have similar
  runtimes" (§6.1).  Each (login, application) family re-runs with
  multiplicative lognormal noise around its characteristic runtime —
  ``noise_sigma`` directly controls how predictable the workload is, and
  is calibrated so the estimator's mean error lands in the paper's ~13.5 %
  band;
- **requested CPU hours** over-request the true runtime by a uniform
  factor (users pad their requests), giving the linear-regression
  estimator a real, noisy signal;
- **node counts** are power-of-two biased, as on the real Paragon;
- **arrivals** are Poisson; ~6 % of jobs record status "failed" (removed
  jobs), which the estimator must ignore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.gridsim.job import Task, TaskSpec

#: Queue names on the SDSC Paragon (short/long × node class flavour).
DEFAULT_QUEUES: Tuple[str, ...] = ("q16s", "q16l", "q64s", "q64l", "q256l")
DEFAULT_PARTITIONS: Tuple[str, ...] = ("compute", "io", "interactive")


@dataclass(frozen=True)
class ParagonAccountingRecord:
    """One job of the synthetic accounting trace (the paper's field list)."""

    account: str
    login: str
    partition: str
    nodes: int
    job_type: str              # "batch" | "interactive"
    status: str                # "successful" | "failed"
    requested_cpu_hours: float
    queue: str
    cpu_charge_rate: float
    idle_charge_rate: float
    submit_time: float
    start_time: float
    end_time: float
    application: str           # executable name (the family identity)

    @property
    def runtime_s(self) -> float:
        """Actual duration from start to completion."""
        return self.end_time - self.start_time

    def to_task_record(self) -> TaskRecord:
        """Convert to the estimator's history-record type."""
        return TaskRecord(
            owner=self.login,
            account=self.account,
            partition=self.partition,
            queue=self.queue,
            nodes=self.nodes,
            task_type=self.job_type,
            executable=self.application,
            requested_cpu_hours=self.requested_cpu_hours,
            runtime_s=self.runtime_s,
            status=self.status,
            submit_time=self.submit_time,
            start_time=self.start_time,
            end_time=self.end_time,
        )

    def to_task_spec(self) -> TaskSpec:
        """Convert to a submittable task spec (hides the true runtime)."""
        return TaskSpec(
            owner=self.login,
            account=self.account,
            partition=self.partition,
            queue=self.queue,
            nodes=self.nodes,
            task_type=self.job_type,
            requested_cpu_hours=self.requested_cpu_hours,
            executable=self.application,
        )

    def to_task(self) -> Task:
        """Convert to a live simulator task with the true runtime as work."""
        return Task(spec=self.to_task_spec(), work_seconds=max(1.0, self.runtime_s))


@dataclass
class _Family:
    """One (login, application) family with a characteristic runtime."""

    login: str
    account: str
    application: str
    queue: str
    partition: str
    job_type: str
    nodes: int
    characteristic_runtime_s: float
    request_pad: float          # mean over-request factor for CPU hours


class DowneyWorkloadGenerator:
    """Generates :class:`ParagonAccountingRecord` streams.

    Parameters
    ----------
    seed:
        Master seed; all randomness is internal and reproducible.
    n_users / apps_per_user:
        Population shape; families = users × apps.
    noise_sigma:
        Lognormal sigma of run-to-run runtime variation inside a family.
        0.17 calibrates the §6.1 estimator to the paper's ~13.5 % band.
    failure_rate:
        Fraction of jobs recorded with status "failed".
    runtime_range_s:
        Support of the log-uniform characteristic-runtime distribution.
    """

    def __init__(
        self,
        seed: int = 1995,
        n_users: int = 6,
        apps_per_user: int = 2,
        n_accounts: int = 4,
        noise_sigma: float = 0.17,
        failure_rate: float = 0.06,
        mean_interarrival_s: float = 600.0,
        runtime_range_s: Tuple[float, float] = (30.0, 12 * 3600.0),
        queues: Sequence[str] = DEFAULT_QUEUES,
        partitions: Sequence[str] = DEFAULT_PARTITIONS,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if not 0 <= failure_rate < 1:
            raise ValueError("failure_rate must be in [0, 1)")
        lo, hi = runtime_range_s
        if lo <= 0 or hi <= lo:
            raise ValueError("runtime_range_s must satisfy 0 < lo < hi")
        self.rng = np.random.default_rng(seed)
        self.noise_sigma = noise_sigma
        self.failure_rate = failure_rate
        self.mean_interarrival_s = mean_interarrival_s
        self._charge_rates = (1.0, 0.1)
        self.families = self._make_families(
            n_users, apps_per_user, n_accounts, runtime_range_s, queues, partitions
        )

    def _make_families(
        self,
        n_users: int,
        apps_per_user: int,
        n_accounts: int,
        runtime_range_s: Tuple[float, float],
        queues: Sequence[str],
        partitions: Sequence[str],
    ) -> List[_Family]:
        lo, hi = runtime_range_s
        families: List[_Family] = []
        accounts = [f"acct{j:02d}" for j in range(n_accounts)]
        app_counter = 0
        for u in range(n_users):
            login = f"user{u:02d}"
            account = accounts[int(self.rng.integers(0, n_accounts))]
            for _ in range(apps_per_user):
                # Log-uniform characteristic runtime (Downey's lifetime model).
                log_rt = self.rng.uniform(np.log(lo), np.log(hi))
                nodes = int(2 ** self.rng.integers(0, 6))  # 1..32, power of two
                job_type = "interactive" if self.rng.random() < 0.2 else "batch"
                families.append(
                    _Family(
                        login=login,
                        account=account,
                        application=f"app{app_counter:03d}",
                        queue=str(queues[int(self.rng.integers(0, len(queues)))]),
                        partition=str(
                            partitions[int(self.rng.integers(0, len(partitions)))]
                        ),
                        job_type=job_type,
                        nodes=nodes,
                        characteristic_runtime_s=float(np.exp(log_rt)),
                        request_pad=float(self.rng.uniform(1.2, 3.0)),
                    )
                )
                app_counter += 1
        return families

    # ------------------------------------------------------------------
    def generate(self, n: int, start_time: float = 0.0) -> List[ParagonAccountingRecord]:
        """Generate *n* accounting records with Poisson arrivals."""
        if n < 0:
            raise ValueError("n must be non-negative")
        records: List[ParagonAccountingRecord] = []
        t = start_time
        cpu_rate, idle_rate = self._charge_rates
        for _ in range(n):
            t += float(self.rng.exponential(self.mean_interarrival_s))
            family = self.families[int(self.rng.integers(0, len(self.families)))]
            runtime = family.characteristic_runtime_s * float(
                self.rng.lognormal(0.0, self.noise_sigma)
            )
            runtime = max(1.0, runtime)
            # Users pad their request; request noise is independent of the
            # runtime noise, so requests are a weak (regression-worthy)
            # signal, not an oracle.
            requested_hours = (
                family.characteristic_runtime_s
                * family.request_pad
                * float(self.rng.uniform(0.8, 1.25))
                / 3600.0
            )
            queue_wait = float(self.rng.exponential(300.0))
            status = "failed" if self.rng.random() < self.failure_rate else "successful"
            records.append(
                ParagonAccountingRecord(
                    account=family.account,
                    login=family.login,
                    partition=family.partition,
                    nodes=family.nodes,
                    job_type=family.job_type,
                    status=status,
                    requested_cpu_hours=requested_hours,
                    queue=family.queue,
                    cpu_charge_rate=cpu_rate,
                    idle_charge_rate=idle_rate,
                    submit_time=t,
                    start_time=t + queue_wait,
                    end_time=t + queue_wait + runtime,
                    application=family.application,
                )
            )
        return records

    # ------------------------------------------------------------------
    def history_and_tests(
        self, n_history: int = 100, n_tests: int = 20
    ) -> Tuple[HistoryRepository, List[ParagonAccountingRecord]]:
        """The Figure 5 setup: a history repository plus held-out test jobs.

        "The history consisted of 100 jobs and the runtime for 20 jobs was
        estimated" (§7).  Test jobs are successful runs (a failed job has
        no meaningful actual runtime to score against) of applications that
        occur in the history — history-based estimation is only defined
        for task kinds that have been seen before, and the paper's 20 test
        jobs came from the same user population as its 100-job history.
        """
        records = self.generate(n_history + 8 * n_tests)
        history_records = records[:n_history]
        history = HistoryRepository(r.to_task_record() for r in history_records)
        seen_apps = {r.application for r in history_records if r.status == "successful"}
        tests = [
            r
            for r in records[n_history:]
            if r.status == "successful" and r.application in seen_apps
        ][:n_tests]
        if len(tests) < n_tests:
            raise RuntimeError("not enough successful test jobs generated")
        return history, tests
