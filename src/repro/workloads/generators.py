"""Concrete jobs: the Figure 7 prime counter and HEP-analysis DAGs.

The steering experiment of §7 uses "a simple C++ program that calculates
prime numbers over an input range", measured to need **283 s on a free
CPU**.  :func:`make_prime_count_task` builds the simulator task with
exactly that work; :func:`count_primes` is a real, runnable equivalent for
live (non-simulated) demonstrations.

:func:`physics_analysis_job` builds the DAG-shaped workload §2 motivates
("a large number of computing jobs are split up into a number of processing
steps (arranged to follow a directed acyclic graph structure)"): stage-in →
N parallel analysis tasks → merge.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.gridsim.job import Job, Task, TaskSpec

#: The paper's free-CPU runtime of the prime job: "This estimate comes out
#: to be 283 seconds."
PRIME_JOB_FREE_CPU_SECONDS: float = 283.0


def count_primes(limit: int) -> int:
    """Count primes below *limit* (sieve of Eratosthenes).

    The real workload behind Figure 7's job, runnable outside the
    simulator for live demos and for CPU-time calibration.
    """
    if limit < 2:
        return 0
    sieve = np.ones(limit, dtype=bool)
    sieve[:2] = False
    for p in range(2, int(math.isqrt(limit - 1)) + 1):
        if sieve[p]:
            sieve[p * p :: p] = False
    return int(np.count_nonzero(sieve))


def make_prime_count_task(
    owner: str = "physicist",
    work_seconds: float = PRIME_JOB_FREE_CPU_SECONDS,
    checkpointable: bool = False,
    priority: int = 0,
) -> Task:
    """The Figure 7 job as a simulator task.

    ``work_seconds`` defaults to the paper's 283 s free-CPU measurement;
    ``requested_cpu_hours`` matches it, as the paper's estimate did.
    """
    spec = TaskSpec(
        owner=owner,
        account="cms",
        partition="compute",
        queue="analysis",
        nodes=1,
        task_type="batch",
        requested_cpu_hours=work_seconds / 3600.0,
        executable="prime_counter",
        arguments=("0", "60000000"),
        priority=priority,
    )
    return Task(spec=spec, work_seconds=work_seconds, checkpointable=checkpointable)


def prime_job_history_records(n: int = 10, sigma: float = 0.02, seed: int = 7):
    """History records for the prime job — the paper's calibration runs.

    "Currently this estimate is calculated by running the job many times on
    different machines that have negligible CPU load" (§7).  Each record is
    a near-283 s successful run, so the estimator's prediction lands on the
    283 s reference line.
    """
    from repro.core.estimators.history import TaskRecord

    rng = np.random.default_rng(seed)
    template = make_prime_count_task().spec
    out = []
    for _ in range(n):
        runtime = PRIME_JOB_FREE_CPU_SECONDS * float(rng.lognormal(0.0, sigma))
        out.append(TaskRecord.from_spec(template, runtime_s=runtime))
    return out


def physics_analysis_job(
    owner: str,
    n_analysis_tasks: int = 4,
    dataset_files: Sequence[str] = (),
    stage_seconds: float = 120.0,
    analysis_seconds: float = 1800.0,
    merge_seconds: float = 300.0,
    rng: Optional[np.random.Generator] = None,
    checkpointable: bool = False,
) -> Job:
    """A stage-in → parallel-analysis → merge DAG, HEP-analysis shaped.

    Per-task runtimes are jittered ±20 % when an *rng* is supplied.
    """
    if n_analysis_tasks < 1:
        raise ValueError("need at least one analysis task")

    def jitter(base: float) -> float:
        if rng is None:
            return base
        return base * float(rng.uniform(0.8, 1.2))

    def spec(executable: str, files: Sequence[str] = (), outputs: Sequence[str] = ()) -> TaskSpec:
        return TaskSpec(
            owner=owner,
            account="cms",
            partition="compute",
            queue="analysis",
            task_type="batch",
            requested_cpu_hours=max(stage_seconds, analysis_seconds, merge_seconds) / 3600.0,
            executable=executable,
            input_files=tuple(files),
            output_files=tuple(outputs),
        )

    stage = Task(
        spec=spec("stage_in", files=dataset_files, outputs=("staged.dat",)),
        work_seconds=jitter(stage_seconds),
        checkpointable=checkpointable,
    )
    analyses = [
        Task(
            spec=spec("analyze", files=("staged.dat",), outputs=(f"histo_{i:02d}.root",)),
            work_seconds=jitter(analysis_seconds),
            checkpointable=checkpointable,
        )
        for i in range(n_analysis_tasks)
    ]
    merge = Task(
        spec=spec(
            "merge",
            files=tuple(f"histo_{i:02d}.root" for i in range(n_analysis_tasks)),
            outputs=("result.root",),
        ),
        work_seconds=jitter(merge_seconds),
        checkpointable=checkpointable,
    )
    tasks = [stage] + analyses + [merge]
    deps = {a.task_id: (stage.task_id,) for a in analyses}
    deps[merge.task_id] = tuple(a.task_id for a in analyses)
    return Job(tasks=tasks, owner=owner, dependencies=deps, description="physics analysis DAG")


def bag_of_batch_tasks(
    owner: str,
    n: int,
    rng: np.random.Generator,
    mean_seconds: float = 600.0,
    priority_levels: Tuple[int, ...] = (0, 5, 10),
) -> Job:
    """An embarrassingly parallel stress workload with mixed priorities."""
    if n < 1:
        raise ValueError("need at least one task")
    tasks = []
    for i in range(n):
        work = float(rng.exponential(mean_seconds)) + 1.0
        spec = TaskSpec(
            owner=owner,
            executable=f"batch_{i % 4}",
            requested_cpu_hours=work * 1.5 / 3600.0,
            priority=int(priority_levels[int(rng.integers(0, len(priority_levels)))]),
        )
        tasks.append(Task(spec=spec, work_seconds=work))
    return Job(tasks=tasks, owner=owner, description=f"bag of {n} batch tasks")
