"""Workload generators and trace handling.

- :mod:`repro.workloads.downey` — a synthetic substitute for the SDSC
  Paragon accounting trace (Allen Downey, 1995) used in §7's runtime-
  estimator evaluation, with the same record fields and a statistically
  faithful runtime model;
- :mod:`repro.workloads.generators` — the prime-number job of Figure 7, a
  HEP-analysis-shaped DAG generator, and bag-of-task stress workloads;
- :mod:`repro.workloads.traces` — CSV persistence for accounting records;
- :mod:`repro.workloads.swf` — Standard Workload Format import, so the
  *real* SDSC Paragon trace (Parallel Workloads Archive) can drive the
  Figure 5 experiment when available.
"""

from repro.workloads.downey import (
    DowneyWorkloadGenerator,
    ParagonAccountingRecord,
)
from repro.workloads.generators import (
    PRIME_JOB_FREE_CPU_SECONDS,
    count_primes,
    make_prime_count_task,
    physics_analysis_job,
    bag_of_batch_tasks,
)
from repro.workloads.swf import SwfJob, read_swf, swf_history_and_tests, swf_to_history
from repro.workloads.traces import read_trace_csv, write_trace_csv

__all__ = [
    "DowneyWorkloadGenerator",
    "PRIME_JOB_FREE_CPU_SECONDS",
    "ParagonAccountingRecord",
    "bag_of_batch_tasks",
    "count_primes",
    "make_prime_count_task",
    "physics_analysis_job",
    "SwfJob",
    "read_swf",
    "read_trace_csv",
    "swf_history_and_tests",
    "swf_to_history",
    "write_trace_csv",
]
