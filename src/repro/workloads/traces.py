"""CSV persistence for accounting traces.

The synthetic Paragon trace round-trips through the same flat CSV shape the
original accounting data had, so experiments can be frozen to disk and
replayed.
"""

from __future__ import annotations

import csv
import io
from dataclasses import fields
from pathlib import Path
from typing import List, Union

from repro.workloads.downey import ParagonAccountingRecord

_FIELDS = [f.name for f in fields(ParagonAccountingRecord)]
_FLOATS = {
    "requested_cpu_hours",
    "cpu_charge_rate",
    "idle_charge_rate",
    "submit_time",
    "start_time",
    "end_time",
}
_INTS = {"nodes"}


def write_trace_csv(
    records: List[ParagonAccountingRecord], path: Union[str, Path, None] = None
) -> str:
    """Serialise records to CSV; writes to *path* when given.

    Returns the CSV text either way.
    """
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=_FIELDS)
    writer.writeheader()
    for r in records:
        writer.writerow({name: getattr(r, name) for name in _FIELDS})
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def read_trace_csv(source: Union[str, Path]) -> List[ParagonAccountingRecord]:
    """Parse a trace CSV.

    *source* is a filesystem path when such a file exists, otherwise it is
    treated as CSV text itself.
    """
    raw = str(source)
    try:
        is_file = "\n" not in raw and len(raw) < 1024 and Path(raw).exists()
    except OSError:
        is_file = False
    text = Path(raw).read_text() if is_file else raw
    reader = csv.DictReader(io.StringIO(text))
    out: List[ParagonAccountingRecord] = []
    for row in reader:
        kwargs = {}
        for name in _FIELDS:
            raw = row[name]
            if name in _FLOATS:
                kwargs[name] = float(raw)
            elif name in _INTS:
                kwargs[name] = int(float(raw))
            else:
                kwargs[name] = raw
        out.append(ParagonAccountingRecord(**kwargs))  # type: ignore[arg-type]
    return out
