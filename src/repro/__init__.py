"""repro: a reproduction of "Resource Management Services for a Grid
Analysis Environment" (Ali et al., ICPP Workshops 2005).

The package rebuilds the paper's three interactive resource-management
services — the **Steering Service**, the **Job Monitoring Service** and the
**Estimator Service** — on a Clarens-style web-services framework, over a
simulated Condor/Sphinx grid substrate, and regenerates every figure of the
paper's evaluation section.

Quick start::

    from repro import GridBuilder, build_gae, make_prime_count_task
    from repro.gridsim import Job

    grid = (GridBuilder(seed=1)
            .site("siteA", background_load=1.0)
            .site("siteB", background_load=0.0)
            .build())
    gae = build_gae(grid).start()
    gae.add_user("alice", "secret")

    task = make_prime_count_task(owner="alice")
    gae.scheduler.submit_job(Job(tasks=[task], owner="alice"))
    gae.grid.run_until(600)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

from repro.accounting import CostModel, QuotaAccountingService, QuotaManager
from repro.analysis import (
    FigureData,
    mean_absolute_percentage_error,
    mean_percentage_error,
    percentage_error,
    summarize_errors,
)
from repro.clarens import (
    AsyncSocketServerHandle,
    AsyncSocketTransport,
    ClarensClient,
    ClarensHost,
    LoopbackTransport,
    SocketTransport,
    XmlRpcServerHandle,
)
from repro.core import (
    EstimatorService,
    HistoryRepository,
    JobMonitoringService,
    QueueTimeEstimator,
    RuntimeEstimator,
    SteeringPolicy,
    SteeringService,
    TaskRecord,
    TransferTimeEstimator,
)
from repro.config import ScenarioConfig, gae_from_scenario, grid_from_config
from repro.core.steering import AdaptiveSteeringAgent
from repro.gae import GAE, build_gae
from repro.gridsim.faults import FaultInjector, OutageScheduler
from repro.scenarios import ScenarioSpec, load_scenario, run_campaign, run_scenario
from repro.webui import GAEWebUI
from repro.gridsim import (
    ConcreteJobPlan,
    GridBuilder,
    Job,
    JobState,
    LoadProfile,
    Simulator,
    SphinxScheduler,
    Task,
    TaskSpec,
)
from repro.monalisa import MonALISARepository
from repro.workloads import (
    DowneyWorkloadGenerator,
    ParagonAccountingRecord,
    count_primes,
    make_prime_count_task,
    physics_analysis_job,
)

__version__ = "1.1.0"

#: Deprecated aliases kept for pre-redesign callers (warn on access).
_DEPRECATED_NAMES = {
    "InProcessTransport": "LoopbackTransport",
    "XmlRpcTransport": "SocketTransport",
}


def __getattr__(name):
    try:
        replacement = _DEPRECATED_NAMES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import warnings

    warnings.warn(
        f"{__name__}.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=2,
    )
    return globals()[replacement]


__all__ = [
    "AdaptiveSteeringAgent",
    "AsyncSocketServerHandle",
    "AsyncSocketTransport",
    "FaultInjector",
    "GAE",
    "GAEWebUI",
    "OutageScheduler",
    "ScenarioConfig",
    "ScenarioSpec",
    "ClarensClient",
    "ClarensHost",
    "ConcreteJobPlan",
    "CostModel",
    "DowneyWorkloadGenerator",
    "EstimatorService",
    "FigureData",
    "GridBuilder",
    "HistoryRepository",
    "Job",
    "JobMonitoringService",
    "JobState",
    "LoadProfile",
    "LoopbackTransport",
    "MonALISARepository",
    "ParagonAccountingRecord",
    "QueueTimeEstimator",
    "QuotaAccountingService",
    "QuotaManager",
    "RuntimeEstimator",
    "Simulator",
    "SocketTransport",
    "SphinxScheduler",
    "SteeringPolicy",
    "SteeringService",
    "Task",
    "TaskRecord",
    "TaskSpec",
    "TransferTimeEstimator",
    "XmlRpcServerHandle",
    "build_gae",
    "count_primes",
    "gae_from_scenario",
    "grid_from_config",
    "load_scenario",
    "make_prime_count_task",
    "mean_absolute_percentage_error",
    "mean_percentage_error",
    "percentage_error",
    "physics_analysis_job",
    "run_campaign",
    "run_scenario",
    "summarize_errors",
    "__version__",
]
