"""The Runtime Estimator (§6.1).

"To estimate the runtime, we identify similar tasks in the history and then
compute a statistical estimate (the mean and linear regression) of their
runtimes.  We use this as the predicted runtime."

Both statistics are computed over the similar set:

- **mean** — the plain average of the similar tasks' runtimes;
- **linear regression** — least squares of runtime on requested CPU hours
  (the trace's user-supplied size signal), evaluated at the input task's
  request.

``method="auto"`` (the default) uses the regression when it is healthy
(enough samples, non-degenerate x spread, in-sample fit better than the
mean's) and falls back to the mean otherwise — small similar sets make
regression noisy, exactly why the paper reports both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.core.estimators.similarity import (
    DEFAULT_LADDER,
    Template,
    most_specific_match,
)
from repro.gridsim.job import TaskSpec


class EstimationError(RuntimeError):
    """Raised when no estimate can be produced (e.g. empty history)."""


@dataclass(frozen=True)
class RuntimeEstimate:
    """A runtime prediction plus its provenance."""

    value: float                 # the predicted runtime (seconds)
    mean: float                  # mean of similar runtimes
    regression: Optional[float]  # regression prediction (None if unusable)
    n_similar: int               # size of the similar set
    template: Template           # the template that selected it
    method: str                  # "mean" | "regression"
    stddev: float = 0.0          # sample std-dev of the similar runtimes

    @property
    def standard_error(self) -> float:
        """Standard error of the mean over the similar set."""
        if self.n_similar < 1:
            return float("inf")
        return self.stddev / (self.n_similar ** 0.5)

    def interval(self, z: float = 1.96) -> "tuple[float, float]":
        """A z-score confidence band around the prediction, floored at 0."""
        half = z * self.standard_error
        return (max(0.0, self.value - half), self.value + half)


class RuntimeEstimator:
    """History-based runtime prediction for task specs.

    Parameters
    ----------
    history:
        The completed-task repository to learn from.
    ladder:
        Specificity ladder of templates (see :mod:`similarity`).
    min_samples:
        Minimum similar records before a template is accepted.
    method:
        "auto", "mean", or "regression".
    regression_feature:
        Record attribute regressed against (default: the user's requested
        CPU hours).
    """

    def __init__(
        self,
        history: HistoryRepository,
        ladder: Sequence[Template] = DEFAULT_LADDER,
        min_samples: int = 3,
        method: str = "auto",
        regression_feature: str = "requested_cpu_hours",
    ) -> None:
        if method not in ("auto", "mean", "regression"):
            raise ValueError(f"unknown method {method!r}")
        self.history = history
        self.ladder = tuple(ladder)
        self.min_samples = min_samples
        self.method = method
        self.regression_feature = regression_feature

    # ------------------------------------------------------------------
    def estimate(self, spec: TaskSpec) -> RuntimeEstimate:
        """Predict the runtime of a task described by *spec*.

        Raises :class:`EstimationError` when the history holds no
        successful records at all.
        """
        target = dict(spec.attributes())
        template, matches = most_specific_match(
            self.history, target, min_samples=self.min_samples, ladder=self.ladder
        )
        if not matches:
            raise EstimationError("history holds no successful task records")
        runtimes = np.asarray([r.runtime_s for r in matches], dtype=float)
        mean = float(runtimes.mean())
        x_new = float(getattr(spec, self.regression_feature))
        regression = self._regress(matches, runtimes, x_new)

        if self.method == "mean":
            value, method = mean, "mean"
        elif self.method == "regression":
            if regression is None:
                value, method = mean, "mean"
            else:
                value, method = regression, "regression"
        else:  # auto
            if regression is not None and self._regression_beats_mean(matches, runtimes):
                value, method = regression, "regression"
            else:
                value, method = mean, "mean"
        return RuntimeEstimate(
            value=value,
            mean=mean,
            regression=regression,
            n_similar=len(matches),
            template=template,
            method=method,
            stddev=float(runtimes.std(ddof=1)) if len(matches) > 1 else 0.0,
        )

    def __call__(self, spec: TaskSpec) -> float:
        """Callable shorthand returning just the predicted seconds.

        This is the signature
        :attr:`repro.gridsim.execution.ExecutionService.runtime_estimator`
        expects, so an estimator can be installed at a site directly.
        """
        return self.estimate(spec).value

    # ------------------------------------------------------------------
    def _features(self, matches: Sequence[TaskRecord]) -> np.ndarray:
        return np.asarray(
            [float(r.attribute(self.regression_feature)) for r in matches], dtype=float
        )

    def _regress(
        self, matches: Sequence[TaskRecord], runtimes: np.ndarray, x_new: float
    ) -> Optional[float]:
        """Least-squares runtime-vs-feature prediction at *x_new*.

        Returns None when regression is ill-posed: fewer than 3 points,
        or (numerically) no spread in the feature.  Predictions are
        clipped into [min/2, 2*max] of the observed similar runtimes —
        a line fitted to a handful of noisy points must not extrapolate
        to a runtime regime the similar set never exhibited.
        """
        if len(matches) < 3:
            return None
        x = self._features(matches)
        if np.ptp(x) <= 1e-12 * max(1.0, float(np.abs(x).max())):
            return None
        slope, intercept = np.polyfit(x, runtimes, deg=1)
        prediction = float(slope * x_new + intercept)
        lo = float(runtimes.min()) / 2.0
        hi = float(runtimes.max()) * 2.0
        return float(np.clip(prediction, lo, hi))

    def _regression_beats_mean(
        self, matches: Sequence[TaskRecord], runtimes: np.ndarray
    ) -> bool:
        """Whether the in-sample regression residuals beat the mean's."""
        x = self._features(matches)
        if len(matches) < 3 or np.ptp(x) <= 1e-12 * max(1.0, float(np.abs(x).max())):
            return False
        slope, intercept = np.polyfit(x, runtimes, deg=1)
        reg_sse = float(np.sum((runtimes - (slope * x + intercept)) ** 2))
        mean_sse = float(np.sum((runtimes - runtimes.mean()) ** 2))
        # Demand a real improvement, not a numerically marginal one.
        return reg_sse < 0.9 * mean_sse
