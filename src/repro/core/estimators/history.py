"""The task-history repository behind the runtime estimator.

"We maintain a history of tasks that have executed along with their
respective runtimes" (§6.1).  A :class:`TaskRecord` captures the
estimator-visible attributes of one completed task — deliberately the same
fields the SDSC Paragon accounting trace records — plus its actual runtime.

"A decentralized approach is used for history maintenance": each site keeps
its own :class:`HistoryRepository`; :class:`HistoryRecorder` subscribes to
a site pool's completion callbacks and appends records automatically.

The repository answers the similarity queries of §6.1 through a
**multi-attribute hash index**: for every template (attribute tuple) that
has ever been queried, records are bucketed by their value tuple on those
attributes.  Buckets are maintained incrementally as :meth:`add` appends
records (so a live :class:`HistoryRecorder` keeps them warm), which turns
the per-estimate work from a full history scan into a single dict lookup.
The original scan survives behind ``matching(..., naive=True)`` (and
``HistoryRepository(indexed=False)``) for the ablation benchmarks; both
paths return the *same records in the same order*, so every estimate built
on top is bit-identical between them.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, fields
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.gridsim.condor import CondorJobAd
from repro.gridsim.job import TaskSpec
from repro.gridsim.site import Site
from repro.store.base import StateStore
from repro.store.registry import ESTIMATOR_HISTORY, namespace_record


@dataclass(frozen=True)
class TaskRecord:
    """One completed task, as the estimator is allowed to see it."""

    owner: str
    account: str
    partition: str
    queue: str
    nodes: int
    task_type: str
    executable: str
    requested_cpu_hours: float
    runtime_s: float
    status: str = "successful"      # "successful" | "failed" (trace field)
    submit_time: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0
    site: str = ""

    def __post_init__(self) -> None:
        if self.runtime_s < 0:
            raise ValueError(f"runtime must be non-negative, got {self.runtime_s}")

    def attribute(self, name: str) -> object:
        """Attribute lookup by name (template matching)."""
        return getattr(self, name)

    @classmethod
    def from_spec(
        cls,
        spec: TaskSpec,
        runtime_s: float,
        status: str = "successful",
        submit_time: float = 0.0,
        start_time: float = 0.0,
        end_time: float = 0.0,
        site: str = "",
    ) -> "TaskRecord":
        """Build a record from a task spec plus its observed runtime."""
        return cls(
            owner=spec.owner,
            account=spec.account,
            partition=spec.partition,
            queue=spec.queue,
            nodes=spec.nodes,
            task_type=spec.task_type,
            executable=spec.executable,
            requested_cpu_hours=spec.requested_cpu_hours,
            runtime_s=runtime_s,
            status=status,
            submit_time=submit_time,
            start_time=start_time,
            end_time=end_time,
            site=site,
        )


_CSV_FIELDS = [f.name for f in fields(TaskRecord)]
_NUMERIC_FIELDS = {
    "nodes": int,
    "requested_cpu_hours": float,
    "runtime_s": float,
    "submit_time": float,
    "start_time": float,
    "end_time": float,
}


class HistoryRepository:
    """An append-only store of :class:`TaskRecord` with attribute queries.

    Parameters
    ----------
    records:
        Initial records (appended in order).
    indexed:
        When true (the default), :meth:`matching` is served from hash
        buckets keyed on the queried attribute tuple.  ``indexed=False``
        forces the original linear scan everywhere — the naive baseline
        the ablation benchmarks time against.
    """

    def __init__(self, records: Iterable[TaskRecord] = (), indexed: bool = True) -> None:
        self._records: List[TaskRecord] = list(records)
        self.indexed = bool(indexed)
        # Successful records, insertion order — the estimator training set.
        self._successful: List[TaskRecord] = [
            r for r in self._records if r.status == "successful"
        ]
        # template (attribute tuple) -> value tuple -> records in insertion
        # order.  Built lazily on first query of each template, then kept
        # up to date incrementally by add()/extend().
        self._indexes: Dict[Tuple[str, ...], Dict[Tuple, List[TaskRecord]]] = {}
        #: Called with each record as it is appended — the read-cache
        #: "history" epoch (and anything else watching arrivals) hangs here.
        self.listeners: List = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TaskRecord]:
        return iter(self._records)

    def add(self, record: TaskRecord, notify: bool = True) -> None:
        """Append one completed-task record (updates every live index).

        ``notify=False`` is the quiet fold used when an event-sourced
        restore replays the journal tail — the row (and every live
        index) lands without re-announcing the arrival.
        """
        self._records.append(record)
        if record.status == "successful":
            self._successful.append(record)
            for attributes, buckets in self._indexes.items():
                key = tuple(record.attribute(a) for a in attributes)
                buckets.setdefault(key, []).append(record)
        if notify:
            for listener in self.listeners:
                listener(record)

    def extend(self, records: Iterable[TaskRecord]) -> None:
        """Append many records."""
        for record in records:
            self.add(record)

    def records(self) -> List[TaskRecord]:
        """All records, in insertion order (copy)."""
        return list(self._records)

    def successful(self) -> List[TaskRecord]:
        """Only records of tasks that completed successfully.

        The runtime estimator trains on these — a failed task's runtime
        says nothing about how long the work actually takes.
        """
        return list(self._successful)

    def _index_for(self, attributes: Tuple[str, ...]) -> Dict[Tuple, List[TaskRecord]]:
        buckets = self._indexes.get(attributes)
        if buckets is None:
            buckets = {}
            for r in self._successful:
                key = tuple(r.attribute(a) for a in attributes)
                buckets.setdefault(key, []).append(r)
            self._indexes[attributes] = buckets
        return buckets

    def matching(
        self, attributes: Sequence[str], target: Dict[str, object], naive: bool = False
    ) -> List[TaskRecord]:
        """Successful records equal to *target* on every named attribute.

        The indexed path and the ``naive=True`` scan return the same
        records in the same (insertion) order, so downstream statistics
        are bit-identical between them.
        """
        if not naive and self.indexed:
            attrs = tuple(attributes)
            try:
                key = tuple(target.get(a) for a in attrs)
                return list(self._index_for(attrs).get(key, ()))
            except TypeError:
                # Unhashable target value — fall back to the scan.
                pass
        out = []
        for r in self._successful:
            if all(r.attribute(a) == target.get(a) for a in attributes):
                out.append(r)
        return out

    def index_stats(self) -> Dict[str, object]:
        """Shape of the live indexes (for benchmarks and debugging)."""
        return {
            "records": len(self._records),
            "successful": len(self._successful),
            "templates": {
                ",".join(attrs) or "<empty>": len(buckets)
                for attrs, buckets in self._indexes.items()
            },
        }

    # ------------------------------------------------------------------
    # persistence (accounting-trace style CSV)
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialise to CSV with a header row."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for r in self._records:
            writer.writerow({name: getattr(r, name) for name in _CSV_FIELDS})
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "HistoryRepository":
        """Parse CSV produced by :meth:`to_csv`."""
        reader = csv.DictReader(io.StringIO(text))
        records = []
        for row in reader:
            kwargs: Dict[str, object] = {}
            for name in _CSV_FIELDS:
                raw = row[name]
                conv = _NUMERIC_FIELDS.get(name)
                kwargs[name] = conv(float(raw)) if conv is int else (conv(raw) if conv else raw)
            records.append(TaskRecord(**kwargs))  # type: ignore[arg-type]
        return cls(records)

    # ------------------------------------------------------------------
    # persistence (state-store backend)
    # ------------------------------------------------------------------
    def save_to(self, store: "StateStore") -> int:
        """Write every record into the ``estimator.history`` namespace.

        Keys are zero-padded insertion indexes so iteration order is the
        repository's insertion order on any backend.
        """
        store.register_namespace(namespace_record(ESTIMATOR_HISTORY))
        store.clear(ESTIMATOR_HISTORY)
        return store.put_many(
            ESTIMATOR_HISTORY,
            (
                (f"{i:08d}", {name: getattr(r, name) for name in _CSV_FIELDS})
                for i, r in enumerate(self._records)
            ),
        )

    @classmethod
    def load_from(cls, store: "StateStore", indexed: bool = True) -> "HistoryRepository":
        """Rebuild a repository from the ``estimator.history`` namespace."""
        records = [
            TaskRecord(**row)  # type: ignore[arg-type]
            for _, row in store.items(ESTIMATOR_HISTORY)
        ]
        return cls(records, indexed=indexed)


class HistoryRecorder:
    """Feeds a history repository from live pool completions.

    Attach to any number of sites; every successfully completed task (and,
    when ``record_failures`` is set, every failed one) becomes a
    :class:`TaskRecord` whose runtime is the task's accrued CPU work.
    """

    def __init__(self, repository: HistoryRepository, record_failures: bool = False) -> None:
        self.repository = repository
        self.record_failures = record_failures
        #: Event-sourced write seam: when set (to
        #: ``EventCore.emit_history``) records are journalled first and
        #: the repository is fed by the estimators consumer; when None
        #: the recorder writes the repository directly as before.
        self.sink = None

    def _deliver(self, record: TaskRecord, task_id: str) -> None:
        if self.sink is not None:
            self.sink(record, task_id)
        else:
            self.repository.add(record)

    def attach(self, site: Site) -> None:
        """Subscribe to a site pool's completion/failure callbacks."""

        def on_complete(ad: CondorJobAd) -> None:
            self._deliver(self._record(ad, site.name, "successful"), ad.task_id)

        def on_failed(ad: CondorJobAd) -> None:
            if self.record_failures:
                self._deliver(self._record(ad, site.name, "failed"), ad.task_id)

        site.pool.on_complete.append(on_complete)
        site.pool.on_failed.append(on_failed)

    @staticmethod
    def _record(ad: CondorJobAd, site_name: str, status: str) -> TaskRecord:
        return TaskRecord.from_spec(
            ad.task.spec,
            runtime_s=ad.accrued_work,
            status=status,
            submit_time=ad.submit_time,
            start_time=ad.start_time if ad.start_time is not None else ad.submit_time,
            end_time=ad.end_time if ad.end_time is not None else ad.submit_time,
            site=site_name,
        )
