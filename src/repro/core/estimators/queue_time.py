"""The Queue Time Estimator (§6.2).

The paper's algorithm, step for step:

a. the task's Condor id is the input; the estimator contacts the execution
   service and retrieves, from the queue, the Condor ids and elapsed
   runtimes of every task ahead of the input task (higher priority, plus
   everything already running);
b. it retrieves, from a separate database, the *estimated run time* of each
   of those tasks — "the run time of each task is estimated at the time of
   task submission and is stored in a separate database";
c. elapsed runtime is subtracted from estimated runtime, giving the
   estimated *remaining* runtime of each task ahead;
d. the sum of those remainders is the estimated queue time.

:class:`RuntimeEstimateDB` is that separate at-submission database.  The
plain sum matches the paper's single-CPU framing; ``per_slot=True`` divides
by the pool's slot count for multi-slot sites (an extension the ablation
bench evaluates).

The optimizer calls :meth:`QueueTimeEstimator.estimate_for_new` once per
candidate site per steering decision, so that path is the hot one.  A
:class:`QueueAccounting` (attached per execution service, see
:meth:`QueueTimeEstimator.attach`) subscribes to the pool's state-change /
flock-forward events and to :meth:`RuntimeEstimateDB.record` notifications,
and maintains the queued tasks' estimated-remaining runtimes grouped into
per-priority bands.  Band totals are exact (:func:`math.fsum` over the
band's contributions, recomputed lazily only when the band changed), which
makes the incremental answer **bit-identical** to the ``naive=True`` full
scan — `fsum` is correctly rounded, so the grouping order cannot leak into
the result.  Cost per call drops from O(queue) to O(bands + running).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.gridsim.condor import CondorJobAd
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import JobState
from repro.store.base import StateStore
from repro.store.registry import ESTIMATOR_RUNTIME, namespace_record


class QueueEstimationError(RuntimeError):
    """Raised for unknown tasks or missing submission-time estimates."""


class RuntimeEstimateDB:
    """The at-submission runtime-estimate store (§6.2 step c).

    Keyed by task id; written by the estimator service every time the
    scheduler submits a task, read back by the queue-time estimator.
    Subscribers (see :meth:`subscribe`) hear about every write — the
    incremental queue accounting uses that to refresh the contribution of
    a task whose estimate lands *after* it was queued (the scheduler
    notifies its submission listeners after the pool submit).
    """

    def __init__(self) -> None:
        self._estimates: Dict[str, float] = {}
        self._listeners: List[Callable[[str, float], None]] = []

    def subscribe(self, listener: Callable[[str, float], None]) -> None:
        """Call *listener(task_id, value)* after every :meth:`record`."""
        self._listeners.append(listener)

    def record(
        self, task_id: str, estimated_runtime_s: float, notify: bool = True
    ) -> None:
        """Store the estimate made at submission time.

        ``notify=False`` is the quiet fold used when an event-sourced
        restore replays the journal tail: the estimate lands, but
        subscribers (who already saw the original event) stay silent.
        """
        if estimated_runtime_s < 0:
            raise ValueError(
                f"estimated runtime must be non-negative, got {estimated_runtime_s}"
            )
        self._estimates[task_id] = float(estimated_runtime_s)
        if notify:
            for listener in list(self._listeners):
                listener(task_id, self._estimates[task_id])

    def lookup(self, task_id: str) -> float:
        """The stored estimate (QueueEstimationError when absent)."""
        try:
            return self._estimates[task_id]
        except KeyError:
            raise QueueEstimationError(
                f"no submission-time estimate stored for task {task_id!r}"
            ) from None

    def has(self, task_id: str) -> bool:
        """Whether an estimate was recorded for this task."""
        return task_id in self._estimates

    def as_dict(self) -> Dict[str, float]:
        """All stored estimates (copy) — consumer fingerprints use this."""
        return dict(self._estimates)

    def __len__(self) -> int:
        return len(self._estimates)

    # -- persistence (state-store backend) ------------------------------
    def save_to(self, store: "StateStore") -> int:
        """Write every estimate into the ``estimator.runtime`` namespace."""
        store.register_namespace(namespace_record(ESTIMATOR_RUNTIME))
        store.clear(ESTIMATOR_RUNTIME)
        return store.put_many(ESTIMATOR_RUNTIME, list(self._estimates.items()))

    def load_from(self, store: "StateStore") -> int:
        """Replace contents from the ``estimator.runtime`` namespace.

        Loads *directly* — listeners are deliberately not notified, so a
        restore cannot double-count contributions in attached
        :class:`QueueAccounting` instances (they re-seed afterwards, see
        :meth:`QueueAccounting.reseed`).
        """
        items = store.items(ESTIMATOR_RUNTIME)
        self._estimates = {task_id: float(value) for task_id, value in items}
        return len(self._estimates)


@dataclass(frozen=True)
class QueueTimeBreakdown:
    """A queue-time estimate plus its per-task ingredients."""

    queue_time_s: float
    ahead: Tuple[Tuple[str, float], ...]  # (task_id, estimated remaining s)


class QueueAccounting:
    """Incremental per-priority-band accounting of one site's idle queue.

    Tracks, for every *queued* task of the attached execution service, its
    estimated-remaining runtime ``max(0, estimate - elapsed)`` — the exact
    quantity the §6.2 scan computes.  A queued task's elapsed runtime is
    frozen (accrual only advances while running), so the contribution
    computed at event time equals the one the naive scan would compute at
    query time.

    Event sources:

    - ``pool.on_state_change`` — enqueue on QUEUED (also re-files a task
      whose priority changed), drop on RUNNING / any terminal state;
    - ``pool.on_forwarded`` — drop a job that flocked to another pool;
    - ``estimate_db.subscribe`` — refresh a queued task's contribution
      when its at-submission estimate is recorded late.

    Band totals are cached :func:`math.fsum` results, recomputed only for
    bands dirtied since the last query; :meth:`band_totals` is therefore
    O(bands) on a quiet queue.
    """

    def __init__(
        self,
        service: ExecutionService,
        estimate_db: RuntimeEstimateDB,
        fallback_runtime_s: Optional[float] = None,
    ) -> None:
        self.service = service
        self.estimate_db = estimate_db
        self.fallback_runtime_s = fallback_runtime_s
        self._band_of: Dict[str, int] = {}
        self._bands: Dict[int, Dict[str, float]] = {}    # band -> task -> contribution
        self._missing: Dict[int, Set[str]] = {}          # band -> tasks w/o estimate
        self._totals: Dict[int, float] = {}
        self._dirty: Set[int] = set()
        pool = service.pool
        pool.on_state_change.append(self._on_state_change)
        pool.on_forwarded.append(self._on_forwarded)
        estimate_db.subscribe(self._on_estimate_recorded)
        for ad in pool.queue_snapshot():
            self._upsert(ad)

    # -- event handlers -------------------------------------------------
    def _on_state_change(self, ad: CondorJobAd) -> None:
        if ad.state is JobState.QUEUED:
            self._upsert(ad)
        else:
            self._discard(ad.task_id)

    def _on_forwarded(self, ad: CondorJobAd) -> None:
        self._discard(ad.task_id)

    def _on_estimate_recorded(self, task_id: str, value: float) -> None:
        band = self._band_of.get(task_id)
        if band is None:
            return
        elapsed = self.service.pool.ad(task_id).elapsed_runtime()
        self._bands[band][task_id] = max(0.0, value - elapsed)
        self._missing.get(band, set()).discard(task_id)
        self._dirty.add(band)

    # -- bookkeeping ----------------------------------------------------
    def _upsert(self, ad: CondorJobAd) -> None:
        self._discard(ad.task_id)
        band = ad.priority
        entries = self._bands.setdefault(band, {})
        if self.estimate_db.has(ad.task_id):
            estimated: Optional[float] = self.estimate_db.lookup(ad.task_id)
        elif self.fallback_runtime_s is not None:
            estimated = self.fallback_runtime_s
        else:
            estimated = None
        if estimated is None:
            entries[ad.task_id] = 0.0
            self._missing.setdefault(band, set()).add(ad.task_id)
        else:
            entries[ad.task_id] = max(0.0, estimated - ad.elapsed_runtime())
        self._band_of[ad.task_id] = band
        self._dirty.add(band)

    def _discard(self, task_id: str) -> None:
        band = self._band_of.pop(task_id, None)
        if band is None:
            return
        entries = self._bands[band]
        entries.pop(task_id, None)
        self._missing.get(band, set()).discard(task_id)
        self._dirty.add(band)
        if not entries:
            self._bands.pop(band, None)
            self._missing.pop(band, None)
            self._totals.pop(band, None)
            self._dirty.discard(band)

    def reseed(self) -> None:
        """Rebuild the accounting from the pool's current queue.

        Used after a checkpoint restore: pool state is rehydrated without
        firing state-change callbacks, so the event-sourced books are
        reloaded wholesale.  Contributions are recomputed from the same
        (estimate, elapsed) inputs the original events saw — elapsed
        runtime is frozen while queued — so the rebuilt totals are
        bit-identical to the pre-snapshot ones.
        """
        self._band_of.clear()
        self._bands.clear()
        self._missing.clear()
        self._totals.clear()
        self._dirty.clear()
        for ad in self.service.pool.queue_snapshot():
            self._upsert(ad)

    # -- queries --------------------------------------------------------
    def queued_depth(self) -> int:
        """Number of queued tasks currently accounted."""
        return len(self._band_of)

    def band_totals(self, min_priority: int = 0) -> List[float]:
        """Exact remaining-runtime total of every band >= *min_priority*.

        Raises :class:`QueueEstimationError` when a relevant band holds a
        task without a stored estimate and no fallback was configured —
        the same strictness as the naive scan.
        """
        out: List[float] = []
        for band in self._bands:
            if band < min_priority:
                continue
            missing = self._missing.get(band)
            if missing:
                task_id = next(iter(missing))
                raise QueueEstimationError(
                    f"task {task_id!r} ahead in queue has no stored estimate"
                )
            if band in self._dirty:
                self._totals[band] = math.fsum(self._bands[band].values())
                self._dirty.discard(band)
            out.append(self._totals[band])
        return out


class QueueTimeEstimator:
    """Estimates how long a queued task will wait before starting."""

    def __init__(
        self,
        estimate_db: RuntimeEstimateDB,
        fallback_runtime_s: Optional[float] = None,
    ) -> None:
        """``fallback_runtime_s`` substitutes for tasks ahead that have no
        stored estimate (None makes that an error, the strict paper
        behaviour)."""
        self.estimate_db = estimate_db
        self.fallback_runtime_s = fallback_runtime_s

    def attach(self, service: ExecutionService) -> QueueAccounting:
        """Enable incremental queue accounting at *service* (idempotent).

        Once attached, :meth:`estimate_for_new` answers from the per-band
        running sums instead of scanning the queue.  Returns the (possibly
        pre-existing) :class:`QueueAccounting`.
        """
        acct = getattr(service, "queue_accounting", None)
        if (
            isinstance(acct, QueueAccounting)
            and acct.estimate_db is self.estimate_db
            and acct.fallback_runtime_s == self.fallback_runtime_s
        ):
            return acct
        acct = QueueAccounting(
            service, self.estimate_db, fallback_runtime_s=self.fallback_runtime_s
        )
        service.queue_accounting = acct
        return acct

    def _accounting(self, service: ExecutionService) -> Optional[QueueAccounting]:
        """The service's accounting, if compatible with this estimator."""
        acct = getattr(service, "queue_accounting", None)
        if (
            isinstance(acct, QueueAccounting)
            and acct.estimate_db is self.estimate_db
            and acct.fallback_runtime_s == self.fallback_runtime_s
        ):
            return acct
        return None

    def _remaining(self, ad: CondorJobAd) -> float:
        if self.estimate_db.has(ad.task_id):
            estimated = self.estimate_db.lookup(ad.task_id)
        elif self.fallback_runtime_s is not None:
            estimated = self.fallback_runtime_s
        else:
            raise QueueEstimationError(
                f"task {ad.task_id!r} ahead in queue has no stored estimate"
            )
        return max(0.0, estimated - ad.elapsed_runtime())

    def breakdown(
        self, service: ExecutionService, task_id: str, per_slot: bool = False
    ) -> QueueTimeBreakdown:
        """Full estimate with per-task remainders.

        ``per_slot`` divides the sum by the pool's total slots — the
        natural generalisation when a site drains its queue with many CPUs.
        """
        ahead = service.tasks_ahead_of(task_id)
        parts = tuple((ad.task_id, self._remaining(ad)) for ad in ahead)
        total = sum(p[1] for p in parts)
        if per_slot:
            total /= max(1, service.pool.total_slots)
        return QueueTimeBreakdown(queue_time_s=total, ahead=parts)

    def estimate(
        self, service: ExecutionService, task_id: str, per_slot: bool = False
    ) -> float:
        """The estimated queue wait in seconds (§6.2 step d)."""
        return self.breakdown(service, task_id, per_slot=per_slot).queue_time_s

    def estimate_for_new(
        self,
        service: ExecutionService,
        priority: int = 0,
        per_slot: bool = False,
        naive: bool = False,
    ) -> float:
        """Queue wait a *hypothetical* new task of *priority* would see.

        Used by the optimizer when comparing candidate sites before the
        task exists in any queue: everything running, plus every queued
        task that would sort ahead of a new FIFO arrival at this priority.

        When the service has incremental accounting (:meth:`attach`), the
        queued part comes from the per-priority-band running sums —
        O(bands) instead of O(queue).  ``naive=True`` forces the full
        §6.2 scan (the ablation baseline).  Both paths combine the same
        contributions with the same correctly-rounded :func:`math.fsum`,
        so their results are bit-identical.
        """
        running_parts = [self._remaining(ad) for ad in service.running_info()]
        acct = None if naive else self._accounting(service)
        if acct is not None:
            band_totals = acct.band_totals(priority)
        else:
            by_band: Dict[int, List[float]] = {}
            for ad in service.queue_info():
                if ad.priority >= priority:
                    by_band.setdefault(ad.priority, []).append(self._remaining(ad))
            band_totals = [math.fsum(parts) for parts in by_band.values()]
        total = math.fsum(running_parts + band_totals)
        if per_slot:
            total /= max(1, service.pool.total_slots)
        return total
