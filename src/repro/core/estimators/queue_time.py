"""The Queue Time Estimator (§6.2).

The paper's algorithm, step for step:

a. the task's Condor id is the input; the estimator contacts the execution
   service and retrieves, from the queue, the Condor ids and elapsed
   runtimes of every task ahead of the input task (higher priority, plus
   everything already running);
b. it retrieves, from a separate database, the *estimated run time* of each
   of those tasks — "the run time of each task is estimated at the time of
   task submission and is stored in a separate database";
c. elapsed runtime is subtracted from estimated runtime, giving the
   estimated *remaining* runtime of each task ahead;
d. the sum of those remainders is the estimated queue time.

:class:`RuntimeEstimateDB` is that separate at-submission database.  The
plain sum matches the paper's single-CPU framing; ``per_slot=True`` divides
by the pool's slot count for multi-slot sites (an extension the ablation
bench evaluates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.gridsim.condor import CondorJobAd
from repro.gridsim.execution import ExecutionService


class QueueEstimationError(RuntimeError):
    """Raised for unknown tasks or missing submission-time estimates."""


class RuntimeEstimateDB:
    """The at-submission runtime-estimate store (§6.2 step c).

    Keyed by task id; written by the estimator service every time the
    scheduler submits a task, read back by the queue-time estimator.
    """

    def __init__(self) -> None:
        self._estimates: Dict[str, float] = {}

    def record(self, task_id: str, estimated_runtime_s: float) -> None:
        """Store the estimate made at submission time."""
        if estimated_runtime_s < 0:
            raise ValueError(
                f"estimated runtime must be non-negative, got {estimated_runtime_s}"
            )
        self._estimates[task_id] = float(estimated_runtime_s)

    def lookup(self, task_id: str) -> float:
        """The stored estimate (QueueEstimationError when absent)."""
        try:
            return self._estimates[task_id]
        except KeyError:
            raise QueueEstimationError(
                f"no submission-time estimate stored for task {task_id!r}"
            ) from None

    def has(self, task_id: str) -> bool:
        """Whether an estimate was recorded for this task."""
        return task_id in self._estimates

    def __len__(self) -> int:
        return len(self._estimates)


@dataclass(frozen=True)
class QueueTimeBreakdown:
    """A queue-time estimate plus its per-task ingredients."""

    queue_time_s: float
    ahead: Tuple[Tuple[str, float], ...]  # (task_id, estimated remaining s)


class QueueTimeEstimator:
    """Estimates how long a queued task will wait before starting."""

    def __init__(
        self,
        estimate_db: RuntimeEstimateDB,
        fallback_runtime_s: Optional[float] = None,
    ) -> None:
        """``fallback_runtime_s`` substitutes for tasks ahead that have no
        stored estimate (None makes that an error, the strict paper
        behaviour)."""
        self.estimate_db = estimate_db
        self.fallback_runtime_s = fallback_runtime_s

    def _remaining(self, ad: CondorJobAd) -> float:
        if self.estimate_db.has(ad.task_id):
            estimated = self.estimate_db.lookup(ad.task_id)
        elif self.fallback_runtime_s is not None:
            estimated = self.fallback_runtime_s
        else:
            raise QueueEstimationError(
                f"task {ad.task_id!r} ahead in queue has no stored estimate"
            )
        return max(0.0, estimated - ad.elapsed_runtime())

    def breakdown(
        self, service: ExecutionService, task_id: str, per_slot: bool = False
    ) -> QueueTimeBreakdown:
        """Full estimate with per-task remainders.

        ``per_slot`` divides the sum by the pool's total slots — the
        natural generalisation when a site drains its queue with many CPUs.
        """
        ahead = service.tasks_ahead_of(task_id)
        parts = tuple((ad.task_id, self._remaining(ad)) for ad in ahead)
        total = sum(p[1] for p in parts)
        if per_slot:
            total /= max(1, service.pool.total_slots)
        return QueueTimeBreakdown(queue_time_s=total, ahead=parts)

    def estimate(
        self, service: ExecutionService, task_id: str, per_slot: bool = False
    ) -> float:
        """The estimated queue wait in seconds (§6.2 step d)."""
        return self.breakdown(service, task_id, per_slot=per_slot).queue_time_s

    def estimate_for_new(
        self, service: ExecutionService, priority: int = 0, per_slot: bool = False
    ) -> float:
        """Queue wait a *hypothetical* new task of *priority* would see.

        Used by the optimizer when comparing candidate sites before the
        task exists in any queue: everything running, plus every queued
        task that would sort ahead of a new FIFO arrival at this priority.
        """
        ahead: List[CondorJobAd] = list(service.running_info())
        for ad in service.queue_info():
            if ad.priority >= priority:
                ahead.append(ad)
        total = sum(self._remaining(ad) for ad in ahead)
        if per_slot:
            total /= max(1, service.pool.total_slots)
        return total
