"""The File Transfer Time Estimator (§6.3).

"For transfer time estimation, we first determine the bandwidth between the
client and the Clarens server using iperf, and then using this bandwidth
and the file size, we calculate the transfer time."

The estimator probes the (simulated) network with an
:class:`~repro.gridsim.network.IperfProbe` and predicts
``size / measured_bandwidth``.  Repeated probes can be smoothed to damp
measurement noise; the prediction can be compared with the network model's
ground-truth transfer time in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gridsim.network import IperfProbe
from repro.gridsim.storage import ReplicaCatalog


@dataclass(frozen=True)
class TransferEstimate:
    """A transfer-time prediction plus the bandwidth that produced it."""

    src: str
    dst: str
    size_mb: float
    bandwidth_mbps: float
    transfer_time_s: float


class TransferTimeEstimator:
    """iperf-probe-based file transfer prediction."""

    def __init__(self, probe: IperfProbe, smoothing_window: int = 1) -> None:
        """``smoothing_window`` > 1 averages that many probe measurements
        per estimate (more probe traffic, steadier predictions)."""
        if smoothing_window < 1:
            raise ValueError(f"smoothing_window must be >= 1, got {smoothing_window}")
        self.probe = probe
        self.smoothing_window = smoothing_window

    def measure_bandwidth(self, src: str, dst: str) -> float:
        """The (possibly smoothed) measured bandwidth in Mbit/s."""
        if self.smoothing_window == 1:
            return self.probe.measure(src, dst).measured_mbps
        return self.probe.smoothed_mbps(src, dst, window=self.smoothing_window)

    def estimate(self, src: str, dst: str, size_mb: float) -> TransferEstimate:
        """Predict the transfer time of *size_mb* megabytes src → dst."""
        if size_mb < 0:
            raise ValueError(f"size must be non-negative, got {size_mb}")
        if src == dst or size_mb == 0.0:
            return TransferEstimate(
                src=src, dst=dst, size_mb=size_mb, bandwidth_mbps=float("inf"),
                transfer_time_s=0.0,
            )
        bw = self.measure_bandwidth(src, dst)
        seconds = 0.0 if bw == float("inf") else (size_mb * 8.0) / bw
        return TransferEstimate(
            src=src, dst=dst, size_mb=size_mb, bandwidth_mbps=bw, transfer_time_s=seconds
        )

    def estimate_stage_in(
        self, catalog: ReplicaCatalog, file_names: List[str], to_site: str
    ) -> float:
        """Predicted total time to pull the named files to *to_site*.

        Each file is fetched from its closest replica; local replicas are
        free.  Files with no replica anywhere (not-yet-produced DAG
        intermediates) contribute nothing.  This is the "file transfer
        time" term of the optimizer's expected execution time (§4.2.2).
        """
        from repro.gridsim.storage import StorageError

        total = 0.0
        for name in file_names:
            try:
                src = catalog.closest_replica(name, to_site)
            except StorageError:
                continue
            if src == to_site:
                continue
            total += self.estimate(src, to_site, catalog.lookup(name).size_mb).transfer_time_s
        return total
