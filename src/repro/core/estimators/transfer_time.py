"""The File Transfer Time Estimator (§6.3).

"For transfer time estimation, we first determine the bandwidth between the
client and the Clarens server using iperf, and then using this bandwidth
and the file size, we calculate the transfer time."

The estimator probes the (simulated) network with an
:class:`~repro.gridsim.network.IperfProbe` and predicts
``size / measured_bandwidth``.  Repeated probes can be smoothed to damp
measurement noise; the prediction can be compared with the network model's
ground-truth transfer time in tests and benchmarks.

Probing is the expensive part — a real iperf run ties up the path for
seconds — so measured bandwidths can be **memoized per (src, dst) pair
with TTL invalidation**: pass ``cache_ttl_s`` (and a ``clock``) and
repeated estimates inside the TTL reuse the cached bandwidth instead of
re-probing.  The steering optimizer compares many candidate files/sites per
decision, so this takes the probe count per decision from O(files) to
O(distinct pairs).

>>> from repro.gridsim.network import IperfProbe, Link, Network
>>> net = Network()
>>> net.add_link(Link("client", "server", capacity_mbps=800.0))
>>> probe = IperfProbe(net, noise_sigma=0.0)
>>> est = TransferTimeEstimator(probe)
>>> est.estimate("client", "server", 100.0).transfer_time_s  # 100 MB at 800 Mbps
1.0

With memoization, the second estimate reuses the first probe's bandwidth:

>>> ticks = iter(range(100))
>>> cached = TransferTimeEstimator(probe, cache_ttl_s=60.0,
...                                clock=lambda: float(next(ticks)))
>>> _ = cached.estimate("client", "server", 100.0)
>>> _ = cached.estimate("client", "server", 200.0)
>>> (cached.cache_stats.hits, cached.cache_stats.misses)
(1, 1)
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.gridsim.network import IperfProbe
from repro.gridsim.storage import ReplicaCatalog


@dataclass(frozen=True)
class TransferEstimate:
    """A transfer-time prediction plus the bandwidth that produced it."""

    src: str
    dst: str
    size_mb: float
    bandwidth_mbps: float
    transfer_time_s: float


@dataclass
class BandwidthCacheStats:
    """Hit/miss/eviction counters for the memoized bandwidth cache."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
        }


class TransferTimeEstimator:
    """iperf-probe-based file transfer prediction."""

    def __init__(
        self,
        probe: IperfProbe,
        smoothing_window: int = 1,
        cache_ttl_s: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        cache_max_pairs: int = 1024,
    ) -> None:
        """``smoothing_window`` > 1 averages that many probe measurements
        per estimate (more probe traffic, steadier predictions).

        ``cache_ttl_s`` enables per-pair bandwidth memoization: a pair
        probed less than that many seconds ago (by ``clock``, default
        ``time.monotonic`` — pass the simulation clock when estimating
        under simulated time) is answered from cache.  ``None`` (default)
        probes on every estimate, the original behaviour.

        ``cache_max_pairs`` bounds the memo: beyond that many (src, dst)
        pairs the least-recently-used entry is evicted (counted in
        ``cache_stats.evictions``), so a grid with many sites cannot grow
        the memo without bound.
        """
        if smoothing_window < 1:
            raise ValueError(f"smoothing_window must be >= 1, got {smoothing_window}")
        if cache_ttl_s is not None and cache_ttl_s <= 0:
            raise ValueError(f"cache_ttl_s must be positive, got {cache_ttl_s}")
        if cache_max_pairs < 1:
            raise ValueError(f"cache_max_pairs must be positive, got {cache_max_pairs}")
        self.probe = probe
        self.smoothing_window = smoothing_window
        self.cache_ttl_s = cache_ttl_s
        self.cache_max_pairs = cache_max_pairs
        self.clock = clock
        self.cache_stats = BandwidthCacheStats()
        self._bandwidth_cache: "OrderedDict[Tuple[str, str], Tuple[float, float]]" = (
            OrderedDict()
        )

    def _now(self) -> float:
        return float(self.clock()) if self.clock is not None else time.monotonic()

    def _probe_bandwidth(self, src: str, dst: str) -> float:
        if self.smoothing_window == 1:
            return self.probe.measure(src, dst).measured_mbps
        return self.probe.smoothed_mbps(src, dst, window=self.smoothing_window)

    def measure_bandwidth(self, src: str, dst: str, fresh: bool = False) -> float:
        """The (possibly smoothed, possibly memoized) bandwidth in Mbit/s.

        ``fresh=True`` bypasses the TTL cache and forces a probe (which
        also refreshes the cache entry) — the naive baseline the ablation
        benchmark times against.
        """
        if self.cache_ttl_s is None:
            return self._probe_bandwidth(src, dst)
        key = (src, dst)
        now = self._now()
        if not fresh:
            cached = self._bandwidth_cache.get(key)
            if cached is not None:
                bandwidth, measured_at = cached
                if now - measured_at < self.cache_ttl_s:
                    self.cache_stats.hits += 1
                    self._bandwidth_cache.move_to_end(key)
                    return bandwidth
                self.cache_stats.expirations += 1
        self.cache_stats.misses += 1
        bandwidth = self._probe_bandwidth(src, dst)
        self._bandwidth_cache[key] = (bandwidth, now)
        self._bandwidth_cache.move_to_end(key)
        while len(self._bandwidth_cache) > self.cache_max_pairs:
            self._bandwidth_cache.popitem(last=False)
            self.cache_stats.evictions += 1
        return bandwidth

    def export_cache_state(self) -> Dict[str, object]:
        """The memo and its counters, JSON-serializable, for checkpointing.

        A restored estimator must answer ``system.observability`` (which
        exposes the counters as metrics) and re-probe exactly as the
        original would have — so both the entries (with their insertion
        order and timestamps) and the statistics travel.
        """
        return {
            "entries": [
                [src, dst, bandwidth, measured_at]
                for (src, dst), (bandwidth, measured_at)
                in self._bandwidth_cache.items()
            ],
            "stats": self.cache_stats.as_dict(),
        }

    def import_cache_state(self, state: Dict[str, object]) -> None:
        """Restore the memo written by :meth:`export_cache_state`."""
        self._bandwidth_cache.clear()
        for src, dst, bandwidth, measured_at in state["entries"]:  # type: ignore[union-attr]
            self._bandwidth_cache[(src, dst)] = (float(bandwidth), float(measured_at))
        stats = state["stats"]  # type: ignore[index]
        self.cache_stats = BandwidthCacheStats(**{
            key: int(stats[key]) for key in ("hits", "misses", "expirations", "evictions")
        })

    def invalidate(self, src: Optional[str] = None, dst: Optional[str] = None) -> int:
        """Drop cached bandwidths (all, or those touching the named sites).

        Returns the number of entries dropped.  Call after a known network
        event (link change, weather step) to force fresh probes early.
        """
        if src is None and dst is None:
            dropped = len(self._bandwidth_cache)
            self._bandwidth_cache.clear()
            return dropped
        doomed = [
            key for key in self._bandwidth_cache
            if (src is not None and src in key) or (dst is not None and dst in key)
        ]
        for key in doomed:
            del self._bandwidth_cache[key]
        return len(doomed)

    def estimate(
        self, src: str, dst: str, size_mb: float, fresh: bool = False
    ) -> TransferEstimate:
        """Predict the transfer time of *size_mb* megabytes src → dst."""
        if size_mb < 0:
            raise ValueError(f"size must be non-negative, got {size_mb}")
        if src == dst or size_mb == 0.0:
            return TransferEstimate(
                src=src, dst=dst, size_mb=size_mb, bandwidth_mbps=float("inf"),
                transfer_time_s=0.0,
            )
        bw = self.measure_bandwidth(src, dst, fresh=fresh)
        seconds = 0.0 if bw == float("inf") else (size_mb * 8.0) / bw
        return TransferEstimate(
            src=src, dst=dst, size_mb=size_mb, bandwidth_mbps=bw, transfer_time_s=seconds
        )

    def estimate_stage_in(
        self, catalog: ReplicaCatalog, file_names: List[str], to_site: str
    ) -> float:
        """Predicted total time to pull the named files to *to_site*.

        Each file is fetched from its closest replica; local replicas are
        free.  Files with no replica anywhere (not-yet-produced DAG
        intermediates) contribute nothing.  This is the "file transfer
        time" term of the optimizer's expected execution time (§4.2.2).
        """
        from repro.gridsim.storage import StorageError

        total = 0.0
        for name in file_names:
            try:
                src = catalog.closest_replica(name, to_site)
            except StorageError:
                continue
            if src == to_site:
                continue
            total += self.estimate(src, to_site, catalog.lookup(name).size_mb).transfer_time_s
        return total
