"""The Estimator Service (§6).

"The Estimator Service (or simply the estimators) is used to predict the
resource consumption of a job."  Three estimators, exactly as the paper
enumerates them:

- :class:`~repro.core.estimators.runtime.RuntimeEstimator` (§6.1) —
  history-based: find completed tasks similar to the input task and compute
  "a statistical estimate (the mean and linear regression) of their
  runtimes";
- :class:`~repro.core.estimators.queue_time.QueueTimeEstimator` (§6.2) —
  sum of the estimated *remaining* runtimes of every task ahead of the
  input task in the queue;
- :class:`~repro.core.estimators.transfer_time.TransferTimeEstimator`
  (§6.3) — iperf-style bandwidth probe × file size.

Supporting pieces: the task-history repository (:mod:`history`), the
similarity-template machinery (:mod:`similarity`) including the greedy
template search of Smith/Taylor/Foster [25], and the Clarens-registrable
facade (:mod:`service`).
"""

from repro.core.estimators.history import HistoryRecorder, HistoryRepository, TaskRecord
from repro.core.estimators.queue_time import QueueTimeEstimator, RuntimeEstimateDB
from repro.core.estimators.runtime import RuntimeEstimate, RuntimeEstimator
from repro.core.estimators.service import EstimatorService
from repro.core.estimators.similarity import (
    ALL_TEMPLATE_ATTRIBUTES,
    GreedyTemplateSearch,
    Template,
    most_specific_match,
)
from repro.core.estimators.transfer_time import TransferEstimate, TransferTimeEstimator

__all__ = [
    "ALL_TEMPLATE_ATTRIBUTES",
    "EstimatorService",
    "GreedyTemplateSearch",
    "HistoryRecorder",
    "HistoryRepository",
    "QueueTimeEstimator",
    "RuntimeEstimate",
    "RuntimeEstimateDB",
    "RuntimeEstimator",
    "TaskRecord",
    "Template",
    "TransferEstimate",
    "TransferTimeEstimator",
    "most_specific_match",
]
