"""Similarity templates for history-based runtime prediction.

"History based runtime prediction algorithms operate on the idea that tasks
with similar characteristics generally have similar runtimes" (§6.1,
citing [9]).  *Similar* is defined by a **template**: a subset of task
attributes; two tasks are similar under a template when they agree on every
attribute in it.

Two ways of choosing templates are provided:

- :func:`most_specific_match` — a fixed specificity ladder: try the fullest
  template first and peel attributes off until enough similar history
  exists.  Fast, predictable, the default in the estimator service.
- :class:`GreedyTemplateSearch` — the Smith/Taylor/Foster [25] greedy
  search: grow a template one attribute at a time, keeping each addition
  only if it lowers cross-validated prediction error on the history.  Used
  by the ablation benchmark to show the fixed ladder is competitive.

Walking the default ladder: with three history records of alice's ``reco``
runs and one unrelated job, a query for another ``reco`` run lands on the
most specific template (all seven attributes) and matches exactly the
three similar records:

>>> from repro.core.estimators.history import HistoryRepository, TaskRecord
>>> def rec(owner, executable, runtime_s):
...     return TaskRecord(owner=owner, account="cms", partition="compute",
...                       queue="standard", nodes=1, task_type="batch",
...                       executable=executable, requested_cpu_hours=1.0,
...                       runtime_s=runtime_s)
>>> history = HistoryRepository([rec("alice", "reco", 100.0),
...                              rec("alice", "reco", 110.0),
...                              rec("alice", "reco", 120.0),
...                              rec("bob", "simulate", 4000.0)])
>>> target = {"owner": "alice", "account": "cms", "partition": "compute",
...           "queue": "standard", "nodes": 1, "task_type": "batch",
...           "executable": "reco"}
>>> template, matches = most_specific_match(history, target, min_samples=3)
>>> len(template), len(matches)
(7, 3)

With too little similar history the ladder degrades gracefully — here the
second pass accepts a single same-executable record rather than averaging
over unrelated jobs:

>>> target["executable"] = "simulate"; target["owner"] = "bob"
>>> template, matches = most_specific_match(history, target, min_samples=3)
>>> [m.runtime_s for m in matches]
[4000.0]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimators.history import HistoryRepository, TaskRecord

#: Every attribute a template may constrain, most-identifying first.
ALL_TEMPLATE_ATTRIBUTES: Tuple[str, ...] = (
    "executable",
    "owner",
    "account",
    "queue",
    "partition",
    "task_type",
    "nodes",
)

Template = Tuple[str, ...]

#: The default specificity ladder: drop attributes from the right.
DEFAULT_LADDER: Tuple[Template, ...] = tuple(
    ALL_TEMPLATE_ATTRIBUTES[: len(ALL_TEMPLATE_ATTRIBUTES) - i]
    for i in range(len(ALL_TEMPLATE_ATTRIBUTES))
) + ((),)


def most_specific_match(
    history: HistoryRepository,
    target: Dict[str, object],
    min_samples: int = 3,
    ladder: Sequence[Template] = DEFAULT_LADDER,
) -> Tuple[Template, List[TaskRecord]]:
    """Find the most specific template with enough matching history.

    Walks *ladder* from most to least specific and returns the first
    ``(template, matches)`` with at least *min_samples* successful records.
    When no rung reaches the threshold, a second pass accepts any rung with
    at least one match — a couple of records of the *same application* are
    far better evidence than dozens of unrelated jobs — before finally
    degrading to the full successful history (global mean).
    """
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")
    for template in ladder:
        if not template:
            continue  # the empty template is only ever the last resort
        matches = history.matching(template, target)
        if len(matches) >= min_samples:
            return template, matches
    for template in ladder:
        if not template:
            continue
        matches = history.matching(template, target)
        if matches:
            return template, matches
    return (), history.successful()


def _loo_mean_error(runtimes: np.ndarray) -> float:
    """Leave-one-out mean absolute relative error of the mean predictor.

    For each sample, predict it with the mean of the others; average the
    absolute relative errors.  This is the objective the greedy template
    search minimises.
    """
    n = len(runtimes)
    if n < 2:
        return float("inf")
    total = runtimes.sum()
    loo_means = (total - runtimes) / (n - 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(runtimes - loo_means) / np.where(runtimes > 0, runtimes, np.nan)
    rel = rel[np.isfinite(rel)]
    return float(rel.mean()) if rel.size else float("inf")


@dataclass
class GreedySearchResult:
    """Outcome of a greedy template search."""

    template: Template
    error: float
    trace: List[Tuple[Template, float]]


class GreedyTemplateSearch:
    """Smith/Taylor/Foster-style greedy template construction.

    Starting from the empty template, repeatedly add the candidate
    attribute whose addition most reduces leave-one-out prediction error
    over the history, stopping when no addition helps (or when matches
    would fall below ``min_samples``).
    """

    def __init__(
        self,
        candidates: Sequence[str] = ALL_TEMPLATE_ATTRIBUTES,
        min_samples: int = 3,
    ) -> None:
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2 for leave-one-out scoring")
        self.candidates = tuple(candidates)
        self.min_samples = min_samples

    def _score(self, history: HistoryRepository, template: Template) -> float:
        """Mean LOO error of the mean predictor across template partitions."""
        groups: Dict[Tuple, List[float]] = {}
        for r in history.successful():
            key = tuple(r.attribute(a) for a in template)
            groups.setdefault(key, []).append(r.runtime_s)
        errors = []
        weights = []
        for runtimes in groups.values():
            if len(runtimes) < self.min_samples:
                continue
            err = _loo_mean_error(np.asarray(runtimes, dtype=float))
            if np.isfinite(err):
                errors.append(err)
                weights.append(len(runtimes))
        if not errors:
            return float("inf")
        return float(np.average(errors, weights=weights))

    def search(self, history: HistoryRepository) -> GreedySearchResult:
        """Run the greedy search over *history*."""
        current: Template = ()
        current_error = self._score(history, current)
        trace: List[Tuple[Template, float]] = [(current, current_error)]
        remaining = list(self.candidates)
        while remaining:
            best_attr: Optional[str] = None
            best_error = current_error
            for attr in remaining:
                candidate = current + (attr,)
                err = self._score(history, candidate)
                if err < best_error:
                    best_attr, best_error = attr, err
            if best_attr is None:
                break
            current = current + (best_attr,)
            current_error = best_error
            trace.append((current, current_error))
            remaining.remove(best_attr)
        return GreedySearchResult(template=current, error=current_error, trace=trace)

    def ladder_from(self, result: GreedySearchResult) -> Tuple[Template, ...]:
        """A specificity ladder derived from a search result (searched
        template first, then its prefixes, then the empty template)."""
        t = result.template
        return tuple(t[: len(t) - i] for i in range(len(t))) + ((),)
