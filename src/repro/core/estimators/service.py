"""The Estimator Service facade (Clarens-registrable).

One object bundling the three estimators of §6 behind wire-friendly
methods, plus the plumbing the rest of the GAE needs:

- :meth:`attach_to_scheduler` subscribes to scheduler submissions so every
  task's runtime estimate is recorded *at submission time* into the
  separate database the Queue Time Estimator reads (§6.2);
- :meth:`install_site_estimator` installs the runtime estimator at an
  execution site, enabling the §6.1 scheduling protocol (sites answer the
  scheduler's estimate queries locally);
- :meth:`estimate_completion` produces the optimizer's "expected execution
  time … includ[ing] the run time, queue time, and file transfer time
  estimates for job execution on a particular site" (§4.2.2).

The service sits on the steering optimizer's per-decision hot path, so its
backing stores are indexed: the history repository buckets records by
template attributes, :meth:`install_site_estimator` attaches incremental
per-priority-band queue accounting at each site, and the transfer
estimator can memoize bandwidth probes with a TTL (``transfer_cache_ttl_s``).

A minimal session — three similar completed tasks, then a wire-format
runtime estimate for a new task that matches them:

>>> from repro.core.estimators.history import HistoryRepository, TaskRecord
>>> def rec(runtime_s):
...     return TaskRecord(owner="alice", account="cms", partition="compute",
...                       queue="standard", nodes=1, task_type="batch",
...                       executable="reco", requested_cpu_hours=1.0,
...                       runtime_s=runtime_s)
>>> service = EstimatorService(HistoryRepository([rec(100.0), rec(110.0), rec(120.0)]))
>>> est = service.estimate_runtime({
...     "_type": "TaskSpec", "owner": "alice", "account": "cms",
...     "partition": "compute", "queue": "standard", "nodes": 1,
...     "task_type": "batch", "executable": "reco", "requested_cpu_hours": 1.0})
>>> round(est["value"], 1), est["n_similar"], est["method"]
(110.0, 3, 'mean')
>>> service.history_size()
3
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.clarens.readcache import ReadPolicy
from repro.clarens.registry import clarens_method
from repro.core.estimators.history import HistoryRepository
from repro.core.estimators.queue_time import QueueTimeEstimator, RuntimeEstimateDB
from repro.core.estimators.runtime import EstimationError, RuntimeEstimator
from repro.core.estimators.transfer_time import TransferTimeEstimator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import Task, TaskSpec
from repro.gridsim.network import IperfProbe
from repro.gridsim.scheduler import SphinxScheduler
from repro.gridsim.storage import ReplicaCatalog


def spec_from_wire(data: Dict[str, object]) -> TaskSpec:
    """Rebuild a TaskSpec from its wire struct (inverse of ``to_wire``)."""
    fields = dict(data)
    fields.pop("_type", None)
    for tuple_field in ("arguments", "input_files", "output_files"):
        if tuple_field in fields and isinstance(fields[tuple_field], list):
            fields[tuple_field] = tuple(fields[tuple_field])  # type: ignore[arg-type]
    return TaskSpec(**fields)  # type: ignore[arg-type]


class EstimatorService:
    """The §6 Estimator Service, ready to register on a Clarens host."""

    def __init__(
        self,
        history: HistoryRepository,
        probe: Optional[IperfProbe] = None,
        catalog: Optional[ReplicaCatalog] = None,
        min_samples: int = 3,
        method: str = "auto",
        fallback_runtime_s: Optional[float] = 3600.0,
        transfer_cache_ttl_s: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """``transfer_cache_ttl_s`` memoizes bandwidth probes for that many
        seconds of *clock* time (pass the simulation clock when estimating
        under simulated time); ``None`` probes on every estimate."""
        self.history = history
        self.runtime = RuntimeEstimator(history, min_samples=min_samples, method=method)
        self.estimate_db = RuntimeEstimateDB()
        self.queue_time = QueueTimeEstimator(
            self.estimate_db, fallback_runtime_s=fallback_runtime_s
        )
        self.transfer: Optional[TransferTimeEstimator] = (
            TransferTimeEstimator(
                probe, cache_ttl_s=transfer_cache_ttl_s, clock=clock
            )
            if probe is not None
            else None
        )
        self.catalog = catalog
        self._services: Dict[str, ExecutionService] = {}
        #: Event-sourced write seam: when set (to
        #: ``EventCore.emit_estimate``) at-submission estimates are
        #: journalled first (``estimate-recorded``) and the estimators
        #: consumer writes the estimate DB; ``None`` writes directly.
        self.estimate_sink: Optional[Callable[[str, float], None]] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register_execution_service(self, service: ExecutionService) -> None:
        """Make a site's execution service queryable by name."""
        self._services[service.site.name] = service

    def _service(self, site_name: str) -> ExecutionService:
        try:
            return self._services[site_name]
        except KeyError:
            raise KeyError(f"estimator service knows no site {site_name!r}") from None

    def install_site_estimator(self, service: ExecutionService) -> None:
        """Install the runtime estimator at a site (§6.1 step b).

        Also attaches incremental queue accounting so queue-wait estimates
        for new tasks come from per-priority-band running sums instead of
        a queue scan.
        """
        service.runtime_estimator = self.runtime
        self.queue_time.attach(service)
        self.register_execution_service(service)

    def attach_to_scheduler(self, scheduler: SphinxScheduler) -> None:
        """Record an at-submission runtime estimate for every submitted task.

        This fills the "separate database" the Queue Time Estimator reads
        (§6.2 step c).  Tasks whose spec has no similar history fall back
        to the requested CPU hours.
        """

        def on_submission(task: Task, site_name: str) -> None:
            try:
                value = self.runtime.estimate(task.spec).value
            except EstimationError:
                value = task.spec.requested_cpu_hours * 3600.0
            self.record_estimate(task.task_id, value)

        scheduler.submission_listeners.append(on_submission)

    def record_estimate(self, task_id: str, value: float) -> None:
        """Store an at-submission estimate through the write path.

        Journal-first when the :attr:`estimate_sink` seam is installed
        (the estimators consumer then writes the DB), direct otherwise.
        """
        if self.estimate_sink is not None:
            self.estimate_sink(task_id, value)
        else:
            self.estimate_db.record(task_id, value)

    # ------------------------------------------------------------------
    # Clarens-exposed estimator methods
    # ------------------------------------------------------------------
    # estimate_transfer_time and estimate_completion are deliberately NOT
    # cached: both may draw from the iperf probe's RNG stream, and serving
    # a cached answer would skip the draw — diverging the stream from an
    # uncached host and breaking bit-identity.
    @clarens_method(cache=ReadPolicy(depends_on=("history",)))
    def estimate_runtime(self, spec: Dict[str, object]) -> Dict[str, object]:
        """Runtime estimate for a task spec (wire struct in, struct out)."""
        est = self.runtime.estimate(spec_from_wire(spec))
        return {
            "value": est.value,
            "mean": est.mean,
            "regression": est.regression,
            "n_similar": est.n_similar,
            "template": list(est.template),
            "method": est.method,
        }

    @clarens_method(
        cache=ReadPolicy(depends_on=("clock", "scheduler", "pool:*", "estimates"))
    )
    def estimate_queue_time(self, site_name: str, task_id: str) -> float:
        """Queue-wait estimate for a task already queued at a site (§6.2)."""
        return self.queue_time.estimate(self._service(site_name), task_id)

    @clarens_method(
        cache=ReadPolicy(depends_on=("clock", "scheduler", "pool:*", "estimates"))
    )
    def estimate_queue_time_by_condor_id(self, site_name: str, condor_id: int) -> float:
        """Queue-wait estimate keyed by Condor id.

        §6.2 step a: "The Condor ID of the task is provided as the input to
        the Queue Time Estimator" — this is that exact entry point.
        """
        service = self._service(site_name)
        ad = service.pool.ad_by_condor_id(int(condor_id))
        return self.queue_time.estimate(service, ad.task_id)

    @clarens_method
    def estimate_transfer_time(self, src: str, dst: str, size_mb: float) -> float:
        """Transfer-time estimate between two sites (§6.3)."""
        if self.transfer is None:
            raise RuntimeError("no network probe configured")
        return self.transfer.estimate(src, dst, size_mb).transfer_time_s

    @clarens_method
    def estimate_completion(
        self, site_name: str, spec: Dict[str, object], priority: int = 0
    ) -> Dict[str, float]:
        """The optimizer's expected-execution-time breakdown at one site.

        run time + queue time + input-file transfer time (§4.2.2).
        """
        task_spec = spec_from_wire(spec)
        service = self._service(site_name)
        try:
            runtime_s = self.runtime.estimate(task_spec).value
        except EstimationError:
            runtime_s = task_spec.requested_cpu_hours * 3600.0
        queue_s = self.queue_time.estimate_for_new(service, priority=priority)
        transfer_s = 0.0
        if self.transfer is not None and self.catalog is not None and task_spec.input_files:
            transfer_s = self.transfer.estimate_stage_in(
                self.catalog, list(task_spec.input_files), site_name
            )
        return {
            "runtime_s": runtime_s,
            "queue_time_s": queue_s,
            "transfer_time_s": transfer_s,
            "total_s": runtime_s + queue_s + transfer_s,
        }

    @clarens_method(cache=ReadPolicy(depends_on=("history",)))
    def history_size(self) -> int:
        """Number of records in the task history."""
        return len(self.history)

    # ------------------------------------------------------------------
    # direct (in-process) conveniences used by the steering optimizer
    # ------------------------------------------------------------------
    def completion_by_site(
        self, spec: TaskSpec, priority: int = 0, exclude: List[str] = []
    ) -> Dict[str, Dict[str, float]]:
        """Expected-completion breakdowns for every known, live site."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._services):
            if name in exclude:
                continue
            try:
                self._services[name].ping()
            except Exception:
                continue
            out[name] = self.estimate_completion(
                name, {"_type": "TaskSpec", **_spec_to_dict(spec)}, priority=priority
            )
        return out


def _spec_to_dict(spec: TaskSpec) -> Dict[str, object]:
    return {
        "owner": spec.owner,
        "account": spec.account,
        "partition": spec.partition,
        "queue": spec.queue,
        "nodes": spec.nodes,
        "task_type": spec.task_type,
        "requested_cpu_hours": spec.requested_cpu_hours,
        "executable": spec.executable,
        "arguments": list(spec.arguments),
        "input_files": list(spec.input_files),
        "output_files": list(spec.output_files),
        "priority": spec.priority,
        "environment": dict(spec.environment),
    }
