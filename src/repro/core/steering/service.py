"""The Steering Service facade (Clarens-registrable) and steering loop.

Assembles the Figure 2 components — Subscriber, Command Processor,
Optimizer, Backup & Recovery, Session Manager — and exposes the user-facing
API: constant job feedback plus the kill / pause / resume / set-priority /
move verbs, each gated by the Session Manager.

:meth:`SteeringService.start` arms the two periodic activities that make
the service *autonomous*:

- the steering loop, which polls every active task through the Job
  Monitoring Service and lets the Optimizer move slow jobs (the mechanism
  behind Figure 7), and
- Backup & Recovery's execution-service ping sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.accounting.service import QuotaAccountingService
from repro.clarens.auth import Principal
from repro.clarens.registry import clarens_method
from repro.core.estimators.service import EstimatorService
from repro.core.monitoring.service import JobMonitoringService
from repro.core.steering.backup_recovery import BackupRecovery
from repro.core.steering.commands import CommandProcessor, CommandResult
from repro.core.steering.optimizer import MoveDecision, Optimizer, SteeringPolicy
from repro.core.steering.session_manager import OPTIMIZER_PRINCIPAL, SessionManager
from repro.core.steering.subscriber import Subscriber
from repro.gridsim.clock import PeriodicHandle, Simulator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import JobState
from repro.gridsim.scheduler import SphinxScheduler
from repro.gridsim.site import Site


@dataclass(frozen=True)
class SteeringAction:
    """One autonomous decision the steering loop acted on."""

    time: float
    task_id: str
    decision: MoveDecision
    result: Optional[CommandResult] = None


class SteeringService:
    """The §4 Steering Service."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: SphinxScheduler,
        services: Dict[str, ExecutionService],
        monitoring: JobMonitoringService,
        estimators: EstimatorService,
        accounting: Optional[QuotaAccountingService] = None,
        policy: Optional[SteeringPolicy] = None,
    ) -> None:
        self.sim = sim
        self.policy = policy if policy is not None else SteeringPolicy()
        self.subscriber = Subscriber()
        self.session_manager = SessionManager(self.subscriber)
        self.command_processor = CommandProcessor(self.subscriber, scheduler, services)
        self.monitoring = monitoring
        self.optimizer = Optimizer(
            sim=sim,
            policy=self.policy,
            subscriber=self.subscriber,
            monitoring=monitoring.executable,
            estimators=estimators,
            accounting=accounting,
        )
        self.backup_recovery = BackupRecovery(
            sim=sim,
            subscriber=self.subscriber,
            scheduler=scheduler,
            services=services,
            ping_interval_s=max(self.policy.poll_interval_s, 1.0),
        )
        #: Autonomous decisions taken by the steering loop.
        self.actions: List[SteeringAction] = []
        #: Optional learner watching manual moves (§1's "intelligent
        #: agents that could observe and learn from the actions of
        #: advanced users"); see :meth:`attach_agent`.
        self.agent = None
        self._loop_handle: Optional[PeriodicHandle] = None
        #: Set by a checkpoint restore to the next poll's original fire
        #: time so the steering cadence survives a restart phase-faithfully.
        self.resume_at: Optional[float] = None
        # Receive every concrete job plan the scheduler emits (§4.2.1).
        scheduler.plan_listeners.append(self.subscriber.receive_plan)

    def attach_site(self, site: Site) -> None:
        """Wire a site into Backup & Recovery."""
        self.backup_recovery.attach_site(site)

    def attach_agent(self, agent) -> None:
        """Let an :class:`AdaptiveSteeringAgent` observe manual moves."""
        self.agent = agent

    def adopt_policy(self, policy: SteeringPolicy) -> None:
        """Switch to a new steering policy (e.g. one learned by the agent).

        Takes effect immediately for decisions; if the periodic loop is
        running it is re-armed at the new poll interval.
        """
        was_running = self._loop_handle is not None
        if was_running:
            self.stop()
        self.policy = policy
        self.optimizer.policy = policy
        self.backup_recovery.ping_interval_s = max(policy.poll_interval_s, 1.0)
        if was_running:
            self.start()

    # ------------------------------------------------------------------
    # the autonomous steering loop
    # ------------------------------------------------------------------
    def steer_once(self) -> List[SteeringAction]:
        """One pass over every active task; returns actions taken."""
        taken: List[SteeringAction] = []
        for task in self.subscriber.active_tasks():
            if task.state is not JobState.RUNNING:
                continue
            decision = self.optimizer.evaluate(task.task_id)
            if not decision.should_move:
                continue
            result: Optional[CommandResult] = None
            if self.policy.auto_move:
                result = self.command_processor.move(
                    task.task_id, target_site=decision.target_site
                )
            action = SteeringAction(
                time=self.sim.now, task_id=task.task_id, decision=decision, result=result
            )
            self.actions.append(action)
            taken.append(action)
        return taken

    def start(self) -> "SteeringService":
        """Arm the steering loop and the Backup & Recovery sweep."""
        if self._loop_handle is not None:
            raise RuntimeError("steering service already started")
        first_delay = None
        if self.resume_at is not None:
            first_delay = max(self.resume_at - self.sim.now, 0.0)
            self.resume_at = None
        self._loop_handle = self.sim.every(
            self.policy.poll_interval_s,
            self.steer_once,
            label="steering.loop",
            first_delay=first_delay,
        )
        self.backup_recovery.start()
        return self

    @property
    def next_fire_time(self) -> Optional[float]:
        """Fire time of the pending steering poll (``None`` when stopped)."""
        if self._loop_handle is None:
            return None
        return self._loop_handle.next_time

    def stop(self) -> None:
        """Cancel both periodic activities."""
        if self._loop_handle is not None:
            self._loop_handle.cancel()
            self._loop_handle = None
        self.backup_recovery.stop()

    # ------------------------------------------------------------------
    # Clarens-exposed API (all ownership-checked by the Session Manager)
    # ------------------------------------------------------------------
    @clarens_method(pass_principal=True)
    def job_feedback(self, principal: Principal, job_id: str) -> List[Dict[str, object]]:
        """Constant feedback: monitoring structs for every task of a job."""
        self.session_manager.authorize_job(principal, job_id)
        return self.monitoring.job_tasks(job_id)

    @clarens_method(pass_principal=True)
    def task_progress(self, principal: Principal, task_id: str) -> Dict[str, object]:
        """Progress snapshot of one task."""
        self.session_manager.authorize(principal, task_id)
        record = self.monitoring.record_for(task_id)
        return {
            "task_id": task_id,
            "status": record.status,
            "progress": record.progress,
            "elapsed_time_s": record.elapsed_time_s,
            "remaining_time_s": record.remaining_time_s,
            "site": record.site,
        }

    @clarens_method(pass_principal=True)
    def kill(self, principal: Principal, task_id: str) -> Dict[str, object]:
        """Kill a task (§4 verb)."""
        self.session_manager.authorize(principal, task_id)
        return _result_to_wire(self.command_processor.kill(task_id))

    @clarens_method(pass_principal=True)
    def pause(self, principal: Principal, task_id: str) -> Dict[str, object]:
        """Pause a task (§4 verb)."""
        self.session_manager.authorize(principal, task_id)
        return _result_to_wire(self.command_processor.pause(task_id))

    @clarens_method(pass_principal=True)
    def resume(self, principal: Principal, task_id: str) -> Dict[str, object]:
        """Resume a paused task (§4 verb)."""
        self.session_manager.authorize(principal, task_id)
        return _result_to_wire(self.command_processor.resume(task_id))

    @clarens_method(pass_principal=True)
    def set_priority(
        self, principal: Principal, task_id: str, priority: int
    ) -> Dict[str, object]:
        """Change a task's priority (§4 verb)."""
        self.session_manager.authorize(principal, task_id)
        return _result_to_wire(self.command_processor.set_priority(task_id, priority))

    @clarens_method(pass_principal=True)
    def move(
        self, principal: Principal, task_id: str, target_site: str = ""
    ) -> Dict[str, object]:
        """Move a task to a better site (§4 verb).

        With an empty *target_site* the scheduler chooses — "note that the
        user could have moved the job from site A to site B manually as
        well" (§7).  Manual moves are fed to the adaptive agent when one is
        attached, so the autonomous policy can learn from experts.
        """
        self.session_manager.authorize(principal, task_id)
        if self.agent is not None and principal.user != OPTIMIZER_PRINCIPAL.user:
            try:
                record = self.monitoring.record_for(task_id)
                self.agent.observe_manual_move(self.sim.now, record)
            except Exception:
                pass  # learning must never block a user's command
        return _result_to_wire(
            self.command_processor.move(task_id, target_site=target_site or None)
        )

    @clarens_method(pass_principal=True)
    def evaluate_move(self, principal: Principal, task_id: str) -> Dict[str, object]:
        """Ask the optimizer's opinion without acting on it.

        This is the API through which "advanced users can also make such
        rescheduling decisions" (§7).
        """
        self.session_manager.authorize(principal, task_id)
        d = self.optimizer.evaluate(task_id)
        return {
            "task_id": d.task_id,
            "should_move": d.should_move,
            "reason": d.reason,
            "current_site": d.current_site,
            "target_site": d.target_site,
            "progress_rate": d.progress_rate,
            "remaining_here_s": d.remaining_here_s,
            "best_alternative_s": d.best_alternative_s,
            "candidates": dict(d.candidates),
        }

    @clarens_method(pass_principal=True)
    def my_jobs(self, principal: Principal) -> List[Dict[str, object]]:
        """Summaries of every subscribed job the caller owns."""
        out: List[Dict[str, object]] = []
        for job in self.subscriber.jobs():
            if job.owner != principal.user:
                continue
            sub = self.subscriber.subscription(job.job_id)
            out.append(
                {
                    "job_id": job.job_id,
                    "state": job.state.value,
                    "tasks": len(job.tasks),
                    "completed": sum(
                        1 for t in job.tasks if t.state.value == "completed"
                    ),
                    "sites": sub.execution_sites,
                    "description": job.description,
                }
            )
        return out

    @clarens_method(pass_principal=True)
    def notifications(self, principal: Principal) -> List[Dict[str, object]]:
        """Backup & Recovery notifications addressed to the caller."""
        return [
            {
                "time": n.time,
                "kind": n.kind,
                "task_id": n.task_id,
                "job_id": n.job_id,
                "site": n.site,
                "detail": n.detail,
            }
            for n in self.backup_recovery.notifications
            if n.owner == principal.user
        ]

    @clarens_method(pass_principal=True)
    def download_execution_state(
        self, principal: Principal, task_id: str
    ) -> Dict[str, object]:
        """The archived execution state of a completed task (§4.2.4)."""
        self.session_manager.authorize(principal, task_id)
        try:
            return dict(self.backup_recovery.execution_states[task_id])
        except KeyError:
            raise RuntimeError(f"no execution state archived for {task_id!r}") from None


def _result_to_wire(result: CommandResult) -> Dict[str, object]:
    return {
        "command": result.command,
        "task_id": result.task_id,
        "ok": result.ok,
        "detail": result.detail,
    }
