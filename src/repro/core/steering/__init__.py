"""The Steering Service (§4).

"The Steering Service is the component of the GAE architecture that allows
users to interact with submitted jobs … constant feedback of the submitted
jobs … kill, pause, and resume, change priority of the job or moving the
job to some other execution site."

Components, one module each, mirroring Figure 2:

- :mod:`subscriber` — receives concrete job plans from the scheduler and
  extracts the execution services in use (§4.2.1);
- :mod:`commands` — the Command Processor executing client/optimizer job
  control; redirections go back through the scheduler (§4.2.2);
- :mod:`optimizer` — finds the "Best Site" under a *cheap* or *fast*
  preference using the Quota/Accounting service and the Estimators, and
  detects slow execution (§4.2.2 "Optimizer");
- :mod:`backup_recovery` — pings execution services, resubmits after
  failure, notifies clients, retrieves output files and execution state
  (§4.2.4);
- :mod:`session_manager` — "makes sure that the authorized users steer the
  jobs" (§4.2.5);
- :mod:`service` — the Clarens-registrable facade plus the autonomous
  steering loop that drives Figure 7.
"""

from repro.core.steering.agent import AdaptiveSteeringAgent, MoveObservation
from repro.core.steering.backup_recovery import BackupRecovery, ClientNotification
from repro.core.steering.commands import (
    CommandProcessor,
    CommandResult,
    SteeringCommandError,
)
from repro.core.steering.optimizer import MoveDecision, Optimizer, SteeringPolicy
from repro.core.steering.service import SteeringService
from repro.core.steering.session_manager import SessionManager, SteeringAuthError
from repro.core.steering.subscriber import Subscriber

__all__ = [
    "AdaptiveSteeringAgent",
    "BackupRecovery",
    "ClientNotification",
    "CommandProcessor",
    "CommandResult",
    "MoveDecision",
    "MoveObservation",
    "Optimizer",
    "SessionManager",
    "SteeringAuthError",
    "SteeringCommandError",
    "SteeringPolicy",
    "SteeringService",
    "Subscriber",
]
