"""The Subscriber (§4.2.1).

"A scheduler (e.g. Sphinx in GAE) sends a 'concrete job plan' (a job plan
precisely describing the nodes where the job will be executed) to the
Steering Service.  The Subscriber analyzes the received job plan to get the
list of Execution Services to be used for the execution of the job."

The subscriber is the steering service's registry of everything it is
responsible for: jobs, their current plans, and the execution services
those plans touch.  Updated plans (after redirects/resubmissions) replace
earlier ones for the same job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set

from repro.gridsim.job import ConcreteJobPlan, Job, Task, plan_from_wire, plan_to_wire


@dataclass
class Subscription:
    """One job under steering-service management."""

    job: Job
    plan: ConcreteJobPlan
    plan_history: List[ConcreteJobPlan] = field(default_factory=list)

    @property
    def execution_sites(self) -> List[str]:
        """The execution services the current plan uses."""
        return self.plan.sites()


class Subscriber:
    """Receives and indexes concrete job plans."""

    def __init__(self) -> None:
        self._subscriptions: Dict[str, Subscription] = {}
        self._task_index: Dict[str, str] = {}  # task_id -> job_id

    def receive_plan(self, plan: ConcreteJobPlan, job: Job) -> Subscription:
        """Accept a (possibly updated) concrete job plan from the scheduler.

        This is the callable registered on
        :attr:`SphinxScheduler.plan_listeners`.
        """
        existing = self._subscriptions.get(job.job_id)
        if existing is None:
            sub = Subscription(job=job, plan=plan, plan_history=[plan])
            self._subscriptions[job.job_id] = sub
            for task in job.tasks:
                self._task_index[task.task_id] = job.job_id
        else:
            existing.plan = plan
            existing.plan_history.append(plan)
            sub = existing
        return sub

    # ------------------------------------------------------------------
    def subscription(self, job_id: str) -> Subscription:
        """The subscription for a job (KeyError if never received)."""
        return self._subscriptions[job_id]

    def has_job(self, job_id: str) -> bool:
        """Whether a plan for this job was ever received."""
        return job_id in self._subscriptions

    def job_of_task(self, task_id: str) -> str:
        """The job a task belongs to (KeyError if unknown)."""
        return self._task_index[task_id]

    def task(self, task_id: str) -> Task:
        """The task object for an id."""
        return self._subscriptions[self.job_of_task(task_id)].job.task(task_id)

    def site_of_task(self, task_id: str) -> str:
        """The site the *current* plan binds a task to."""
        sub = self._subscriptions[self.job_of_task(task_id)]
        return sub.plan.site_for(task_id)

    def jobs(self) -> List[Job]:
        """All subscribed jobs, in subscription order."""
        return [s.job for s in self._subscriptions.values()]

    def active_tasks(self) -> List[Task]:
        """Tasks not yet in a settled terminal state, across all jobs.

        MOVED is treated as live: a moved task's new incarnation is still
        the steering service's responsibility.
        """
        out: List[Task] = []
        for sub in self._subscriptions.values():
            for task in sub.job.tasks:
                if not task.state.is_terminal or task.state.value == "moved":
                    out.append(task)
        return out

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def export_state(self) -> List[Dict[str, object]]:
        """Subscriptions in subscription order, plans as wire dicts.

        Only the plan history travels: the current plan is always the
        newest history entry, and the job objects themselves belong to
        the scheduler checkpoint (resolved by id on import).
        """
        return [
            {
                "job_id": sub.job.job_id,
                "plan_history": [plan_to_wire(p) for p in sub.plan_history],
            }
            for sub in self._subscriptions.values()
        ]

    def import_state(
        self, state: List[Dict[str, object]], job_resolver: Callable[[str], Job]
    ) -> None:
        """Rebuild subscriptions from :meth:`export_state` output.

        *job_resolver* must return the restored scheduler's job objects,
        so steering and scheduling keep sharing one set of live tasks.
        """
        self._subscriptions = {}
        self._task_index = {}
        for wire in state:
            job = job_resolver(wire["job_id"])  # type: ignore[arg-type]
            history = [plan_from_wire(p) for p in wire["plan_history"]]  # type: ignore[union-attr]
            self._subscriptions[job.job_id] = Subscription(
                job=job, plan=history[-1], plan_history=history
            )
            for task in job.tasks:
                self._task_index[task.task_id] = job.job_id

    def execution_sites_in_use(self) -> Set[str]:
        """Every site any current plan binds at least one task to.

        This is the set Backup & Recovery "continuously checks … for
        failure" (§4.2.4).
        """
        sites: Set[str] = set()
        for sub in self._subscriptions.values():
            sites.update(sub.execution_sites)
        return sites
