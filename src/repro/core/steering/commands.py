"""The Command Processor (§4.2.2).

"The Command Processor handles the requests of the client and requests of
the optimizer to perform job control e.g. kill, pause, resume, move job.
Requests for job redirection are sent to the scheduler (Sphinx)."

Every verb resolves the task's current execution service through the
subscriber and delegates; *move* vacates the task locally, then hands the
redirection to the scheduler, carrying checkpointed progress when the task
is checkpointable.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, ContextManager, Dict, List, Optional

from repro.core.steering.subscriber import Subscriber
from repro.gridsim.execution import ExecutionService, ExecutionServiceDown
from repro.gridsim.scheduler import SphinxScheduler


def _null_span(command: str, task_id: str) -> ContextManager[None]:
    return contextlib.nullcontext()


class SteeringCommandError(RuntimeError):
    """Raised when a job-control command cannot be carried out."""


@dataclass(frozen=True)
class CommandResult:
    """Outcome of one steering command."""

    command: str
    task_id: str
    ok: bool
    detail: str = ""


class CommandProcessor:
    """Executes job-control verbs against the right execution service."""

    def __init__(
        self,
        subscriber: Subscriber,
        scheduler: SphinxScheduler,
        services: Dict[str, ExecutionService],
    ) -> None:
        self.subscriber = subscriber
        self.scheduler = scheduler
        self._services = services
        #: Every executed command, for audit and tests.
        self.log: List[CommandResult] = []
        #: Called with every :class:`CommandResult` as it is logged.
        self.listeners: List[Callable[[CommandResult], None]] = []
        #: ``(command, task_id) -> context manager`` wrapped around every
        #: verb's execution; the observability layer installs a factory
        #: that opens a ``steer:<verb>`` span on the task's job trace.
        self.span_factory: Callable[[str, str], ContextManager[None]] = _null_span

    def _service_for(self, task_id: str) -> ExecutionService:
        try:
            site = self.subscriber.site_of_task(task_id)
        except KeyError:
            raise SteeringCommandError(f"unknown task {task_id!r}") from None
        try:
            return self._services[site]
        except KeyError:
            raise SteeringCommandError(
                f"no execution service registered for site {site!r}"
            ) from None

    def _run(self, command: str, task_id: str, action: Callable[[], str]) -> CommandResult:
        with self.span_factory(command, task_id):
            try:
                detail = action()
                result = CommandResult(command=command, task_id=task_id, ok=True, detail=detail)
            except (ExecutionServiceDown, SteeringCommandError, RuntimeError) as exc:
                result = CommandResult(command=command, task_id=task_id, ok=False, detail=str(exc))
        self.log.append(result)
        for listener in list(self.listeners):
            listener(result)
        return result

    # ------------------------------------------------------------------
    # the §4 verbs
    # ------------------------------------------------------------------
    def kill(self, task_id: str) -> CommandResult:
        """Remove the task from its execution site.

        A task whose input data is still staging in has no pool yet; it is
        killed in place and the pending delivery is dropped.
        """

        def action() -> str:
            if task_id in self.scheduler.staging:
                task = self.subscriber.task(task_id)
                from repro.gridsim.job import JobState

                task.state = JobState.KILLED
                return "killed while staging in"
            self._service_for(task_id).kill_task(task_id)
            return "killed"

        return self._run("kill", task_id, action)

    def pause(self, task_id: str) -> CommandResult:
        """Suspend the task (it keeps its slot)."""

        def action() -> str:
            self._service_for(task_id).pause_task(task_id)
            return "paused"

        return self._run("pause", task_id, action)

    def resume(self, task_id: str) -> CommandResult:
        """Resume a suspended task."""

        def action() -> str:
            self._service_for(task_id).resume_task(task_id)
            return "resumed"

        return self._run("resume", task_id, action)

    def set_priority(self, task_id: str, priority: int) -> CommandResult:
        """Change the task's priority."""

        def action() -> str:
            self._service_for(task_id).set_task_priority(task_id, priority)
            return f"priority={priority}"

        return self._run("set_priority", task_id, action)

    def move(self, task_id: str, target_site: Optional[str] = None) -> CommandResult:
        """Move the task to *target_site* (scheduler's choice when None).

        Vacates the task at its current site, then sends the redirection
        request to the scheduler (§4.2.2).  A checkpointable task carries
        its accrued work; a plain task restarts from zero at the new site.
        """

        def action() -> str:
            service = self._service_for(task_id)
            ad = service.vacate_task(task_id)
            carry = ad.accrued_work if ad.task.checkpointable else 0.0
            # A checkpointed move must ship the image from the old site;
            # the scheduler charges the transfer as simulated time.
            image = (
                ad.task.checkpoint_image_mb
                if ad.task.checkpointable and carry > 0.0
                else 0.0
            )
            new_site = self.scheduler.redirect_task(
                task_id, new_site=target_site, carry_work=carry,
                image_size_mb=image,
            )
            return f"moved to {new_site} (carried {carry:.1f}s)"

        return self._run("move", task_id, action)
