"""The Optimizer (§4.2.2).

"The optimizer contacts the Quota and Accounting Service … to find the
cheapest site for job execution, and interacts with the Estimators to
determine the site that can execute the task faster.  Based on the
information gathered, the job is redirected to the 'Best Site'.  The
meaning of 'Best Site' depends on the optimization preference chosen
(cheap or fast execution).  The expected execution time, calculated using
the Estimator Service, includes the run time, queue time, and file
transfer time estimates for job execution on a particular site."

Detection follows §7: the steering service watches a running task's
*progress rate* — accrued Condor wall-clock per wall second, 1.0 on a free
CPU — and evaluates a move once the rate falls below a threshold.  A move
is recommended only when the best alternative site's expected completion
beats the projected remaining time here by a safety factor ("All of these
factors must be taken into account when deciding whether a job should be
transferred or allowed to run to completion").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.accounting.service import QuotaAccountingService
from repro.core.estimators.service import EstimatorService
from repro.core.monitoring.manager import JMExecutable
from repro.core.steering.subscriber import Subscriber
from repro.gridsim.clock import Simulator


@dataclass(frozen=True)
class SteeringPolicy:
    """Tunable knobs of the autonomous steering loop.

    The Figure 7 ablation sweeps ``poll_interval_s`` and
    ``slow_rate_threshold`` to reproduce the paper's observation that "the
    quicker the decision is taken, the better the chance that it will
    complete quicker."
    """

    preference: str = "fast"            # "fast" | "cheap"
    poll_interval_s: float = 30.0       # how often running tasks are checked
    min_elapsed_wall_s: float = 60.0    # grace period before judging a task
    slow_rate_threshold: float = 0.8    # progress rate below this is "slow"
    min_improvement_factor: float = 1.3 # alternative must beat stay-put by this
    auto_move: bool = True              # let the optimizer move jobs itself

    def __post_init__(self) -> None:
        if self.preference not in ("fast", "cheap"):
            raise ValueError(f"unknown preference {self.preference!r}")
        if self.poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        if not 0.0 < self.slow_rate_threshold <= 1.0:
            raise ValueError("slow_rate_threshold must be in (0, 1]")
        if self.min_improvement_factor < 1.0:
            raise ValueError("min_improvement_factor must be >= 1")


@dataclass(frozen=True)
class MoveDecision:
    """The optimizer's verdict for one task at one instant."""

    task_id: str
    should_move: bool
    reason: str
    current_site: str = ""
    target_site: Optional[str] = None
    progress_rate: float = 1.0
    remaining_here_s: float = 0.0
    best_alternative_s: float = 0.0
    candidates: Dict[str, float] = field(default_factory=dict)


class Optimizer:
    """Slow-task detection and best-site selection."""

    def __init__(
        self,
        sim: Simulator,
        policy: SteeringPolicy,
        subscriber: Subscriber,
        monitoring: JMExecutable,
        estimators: EstimatorService,
        accounting: Optional[QuotaAccountingService] = None,
    ) -> None:
        if policy.preference == "cheap" and accounting is None:
            raise ValueError("the 'cheap' preference needs an accounting service")
        self.sim = sim
        self.policy = policy
        self.subscriber = subscriber
        self.monitoring = monitoring
        self.estimators = estimators
        self.accounting = accounting

    # ------------------------------------------------------------------
    def evaluate(self, task_id: str) -> MoveDecision:
        """Assess one task: is it slow, and is there a better site?"""
        record = self.monitoring.get_info(task_id)
        if record is None:
            return MoveDecision(task_id=task_id, should_move=False, reason="no monitoring data")
        if record.status != "running":
            return MoveDecision(
                task_id=task_id, should_move=False,
                reason=f"not running (status={record.status})", current_site=record.site,
            )
        if record.execution_time is None:
            return MoveDecision(
                task_id=task_id, should_move=False, reason="never started",
                current_site=record.site,
            )
        wall = self.sim.now - record.execution_time
        if wall < self.policy.min_elapsed_wall_s:
            return MoveDecision(
                task_id=task_id, should_move=False,
                reason=f"grace period ({wall:.0f}s < {self.policy.min_elapsed_wall_s:.0f}s)",
                current_site=record.site,
            )
        rate = record.elapsed_time_s / wall if wall > 0 else 1.0
        if rate >= self.policy.slow_rate_threshold:
            return MoveDecision(
                task_id=task_id, should_move=False,
                reason=f"progress rate {rate:.2f} is healthy", current_site=record.site,
                progress_rate=rate,
            )

        # The task is slow.  Project how long staying put would take.
        estimated_total = record.estimated_run_time_s
        if estimated_total <= 0:
            # No estimate: fall back to the user's request.
            task = self.subscriber.task(task_id)
            estimated_total = task.spec.requested_cpu_hours * 3600.0
        remaining_work = max(0.0, estimated_total - record.elapsed_time_s)
        remaining_here = remaining_work / max(rate, 1e-9)

        task = self.subscriber.task(task_id)
        candidates = self._candidate_completions(
            task_id, record.site, remaining_work, estimated_total
        )
        if not candidates:
            return MoveDecision(
                task_id=task_id, should_move=False, reason="no alternative site",
                current_site=record.site, progress_rate=rate,
                remaining_here_s=remaining_here,
            )
        target, best = self._pick_target(task.spec.owner, candidates, remaining_here)
        if target is None:
            return MoveDecision(
                task_id=task_id, should_move=False,
                reason=(
                    f"staying: best alternative {best:.0f}s does not beat "
                    f"remaining {remaining_here:.0f}s by {self.policy.min_improvement_factor}x"
                ),
                current_site=record.site, progress_rate=rate,
                remaining_here_s=remaining_here, best_alternative_s=best,
                candidates=candidates,
            )
        return MoveDecision(
            task_id=task_id, should_move=True,
            reason=(
                f"slow (rate {rate:.2f}); {target} finishes in ~{candidates[target]:.0f}s "
                f"vs ~{remaining_here:.0f}s here"
            ),
            current_site=record.site, target_site=target, progress_rate=rate,
            remaining_here_s=remaining_here, best_alternative_s=candidates[target],
            candidates=candidates,
        )

    # ------------------------------------------------------------------
    def _candidate_completions(
        self, task_id: str, current_site: str, remaining_work: float, estimated_total: float
    ) -> Dict[str, float]:
        """Expected completion time at every alternative site.

        A checkpointable task only re-runs its remaining work at the new
        site; a plain task restarts from zero.
        """
        task = self.subscriber.task(task_id)
        by_site = self.estimators.completion_by_site(
            task.spec, priority=task.priority, exclude=[current_site]
        )
        out: Dict[str, float] = {}
        for site, parts in by_site.items():
            total = parts["total_s"]
            if task.checkpointable and estimated_total > 0:
                # Replace the full-runtime term with the remaining work.
                total = total - parts["runtime_s"] + min(parts["runtime_s"], remaining_work)
            out[site] = total
        return out

    def _pick_target(
        self, owner: str, candidates: Dict[str, float], remaining_here: float
    ) -> tuple:
        """Choose the Best Site under the configured preference.

        Only sites that beat staying put by the improvement factor are
        eligible; among those, *fast* picks the minimum expected completion
        and *cheap* asks the accounting service for the lowest cost.
        Returns ``(site or None, best_time_among_all)``.
        """
        best_time = min(candidates.values())
        eligible = {
            site: t
            for site, t in candidates.items()
            if t * self.policy.min_improvement_factor < remaining_here
        }
        if not eligible:
            return None, best_time
        if self.policy.preference == "fast":
            target = min(eligible, key=lambda s: (eligible[s], s))
        else:  # cheap
            assert self.accounting is not None
            answer = self.accounting.cheapest_site({s: t for s, t in eligible.items()})
            target = str(answer["site"])
        return target, best_time
