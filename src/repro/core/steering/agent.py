"""An adaptive steering agent that learns from advanced users (§1).

The paper's introduction motivates interactive steering partly as training
data: giving experts manual control "would also facilitate the development
of more intelligent agents that could observe and learn from the actions of
advanced users, and work out improved optimization strategies for automated
resource management activities."

:class:`AdaptiveSteeringAgent` is that agent.  It watches *manual* move
commands issued through the steering service, recording the state of the
job at the moment its owner decided to move it — most importantly the
progress rate (accrued work per wall second) the user considered
intolerable, and how long the user waited before acting.  From a batch of
observations it derives a recommended :class:`SteeringPolicy`:

- ``slow_rate_threshold`` — a high quantile of the rates users moved at
  (if experts move jobs running at 0.55 of the free-CPU rate, the
  autonomous loop should consider 0.55 slow too), clamped to (0, 1);
- ``poll_interval_s`` and ``min_elapsed_wall_s`` — scaled from the users'
  observed reaction times, so the loop reacts about as fast as the humans
  it learned from.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.core.monitoring.records import MonitoringRecord
from repro.core.steering.optimizer import SteeringPolicy


@dataclass(frozen=True)
class MoveObservation:
    """One manual move, as the agent saw it."""

    time: float                # when the user issued the move
    task_id: str
    owner: str
    progress_rate: float       # accrued work / wall time at that moment
    reaction_time_s: float     # wall time from task start to the move
    progress: float            # completed fraction when moved


class AdaptiveSteeringAgent:
    """Learns steering-policy parameters from observed manual moves.

    Parameters
    ----------
    base_policy:
        The policy recommendations start from; learned fields override it.
    min_observations:
        Below this many observations :meth:`recommended_policy` returns the
        base policy unchanged (no learning from anecdotes).
    rate_quantile:
        Which quantile of observed move-time rates becomes the slow-rate
        threshold.
    """

    def __init__(
        self,
        base_policy: Optional[SteeringPolicy] = None,
        min_observations: int = 3,
        rate_quantile: float = 0.9,
        safety_margin: float = 1.05,
    ) -> None:
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if not 0.0 < rate_quantile <= 1.0:
            raise ValueError("rate_quantile must be in (0, 1]")
        self.base_policy = base_policy if base_policy is not None else SteeringPolicy()
        self.min_observations = min_observations
        self.rate_quantile = rate_quantile
        self.safety_margin = safety_margin
        self.observations: List[MoveObservation] = []

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_manual_move(self, now: float, record: MonitoringRecord) -> None:
        """Record the state of a task whose owner just moved it manually.

        Called by the steering service from its ``move`` API, *before* the
        move executes, with the task's freshest monitoring record.
        """
        if record.execution_time is None:
            return  # never started; nothing to learn about rates
        wall = now - record.execution_time
        if wall <= 0:
            return
        rate = record.elapsed_time_s / wall
        self.observations.append(
            MoveObservation(
                time=now,
                task_id=record.task_id,
                owner=record.owner,
                progress_rate=min(1.0, rate),
                reaction_time_s=wall,
                progress=record.progress,
            )
        )

    @property
    def n_observations(self) -> int:
        """How many manual moves have been observed."""
        return len(self.observations)

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def _quantile(self, values: List[float], q: float) -> float:
        ordered = sorted(values)
        if len(ordered) == 1:
            return ordered[0]
        idx = q * (len(ordered) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(ordered) - 1)
        frac = idx - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def recommended_threshold(self) -> float:
        """The slow-rate threshold implied by the observed moves."""
        rates = [o.progress_rate for o in self.observations]
        if not rates:
            return self.base_policy.slow_rate_threshold
        learned = self._quantile(rates, self.rate_quantile) * self.safety_margin
        # Must stay a valid (0, 1] threshold and never fall below base
        # caution entirely: clamp into [0.05, 0.99].
        return float(min(0.99, max(0.05, learned)))

    def recommended_reaction_s(self) -> float:
        """Median wall time users waited before moving."""
        reactions = [o.reaction_time_s for o in self.observations]
        if not reactions:
            return self.base_policy.min_elapsed_wall_s
        return float(statistics.median(reactions))

    def recommended_policy(self) -> SteeringPolicy:
        """The learned policy (base policy until enough observations)."""
        if len(self.observations) < self.min_observations:
            return self.base_policy
        reaction = self.recommended_reaction_s()
        return replace(
            self.base_policy,
            slow_rate_threshold=self.recommended_threshold(),
            # React about as fast as the humans: poll at half their median
            # reaction time, and stop granting grace beyond it.
            poll_interval_s=max(5.0, reaction / 2.0),
            min_elapsed_wall_s=max(10.0, reaction / 2.0),
        )

    def summary(self) -> str:
        """One-line human-readable report of what was learned."""
        if not self.observations:
            return "adaptive agent: no manual moves observed yet"
        policy = self.recommended_policy()
        return (
            f"adaptive agent: {len(self.observations)} manual moves observed; "
            f"recommend slow_rate_threshold={policy.slow_rate_threshold:.2f}, "
            f"poll_interval={policy.poll_interval_s:.0f}s, "
            f"grace={policy.min_elapsed_wall_s:.0f}s"
        )
