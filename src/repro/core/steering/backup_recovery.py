"""Backup and Recovery (§4.2.4).

"This module continuously checks all the Execution Services (on which the
different tasks of a job are running) for failure.  In case of the failure
of the Execution Service, the Backup and Recovery module contacts Sphinx to
allocate a new execution service.  The scheduler will then resubmit the job
on that new execution service.

If a running job fails, the Steering Service notifies the client about the
failure.  It then contacts the execution service to get all the local files
that were produced by the failed job.  For completed jobs, the Backup and
Recovery module notifies the client about the completion of the job and
gets the execution state from the execution service.  This execution state
is made available for download on the web interface."

All three behaviours are implemented: the periodic service-failure sweep
with scheduler-driven resubmission, per-task failure handling (notify +
salvage local files + optional resubmit), and completion handling (notify +
archive the execution state for download).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.core.steering.subscriber import Subscriber
from repro.gridsim.clock import PeriodicHandle, Simulator
from repro.gridsim.condor import CondorJobAd
from repro.gridsim.execution import ExecutionService, ExecutionServiceDown
from repro.gridsim.job import JobState
from repro.gridsim.scheduler import SchedulingError, SphinxScheduler
from repro.gridsim.site import Site


@dataclass(frozen=True)
class ClientNotification:
    """One message the steering service pushed to the job's owner."""

    time: float
    kind: str            # "failure" | "completion" | "resubmission" | "service-failure"
    task_id: str
    job_id: str
    site: str
    owner: str
    detail: str = ""


class BackupRecovery:
    """Failure detection, resubmission, and result salvage."""

    def __init__(
        self,
        sim: Simulator,
        subscriber: Subscriber,
        scheduler: SphinxScheduler,
        services: Dict[str, ExecutionService],
        ping_interval_s: float = 60.0,
        resubmit_failed_tasks: bool = True,
    ) -> None:
        if ping_interval_s <= 0:
            raise ValueError("ping interval must be positive")
        self.sim = sim
        self.subscriber = subscriber
        self.scheduler = scheduler
        self._services = services
        self.ping_interval_s = ping_interval_s
        self.resubmit_failed_tasks = resubmit_failed_tasks
        #: Everything the client was told, in order.
        self.notifications: List[ClientNotification] = []
        #: Local files salvaged from failed tasks, per task id.
        self.recovered_files: Dict[str, List[str]] = {}
        #: Execution states archived "for download" after completion.
        self.execution_states: Dict[str, Dict[str, object]] = {}
        #: Sites confirmed down by the ping sweep.
        self.failed_sites: Set[str] = set()
        self._resubmitted: Set[tuple] = set()  # (task_id, failed_site) pairs
        self._handle: Optional[PeriodicHandle] = None
        #: Set by a checkpoint restore to the next sweep's original fire
        #: time so the ping cadence survives a restart phase-faithfully.
        self.resume_at: Optional[float] = None
        self.notification_listeners: List[Callable[[ClientNotification], None]] = []
        #: Called as (task_id, files) after local files are salvaged from a
        #: failed task, and as (task_id, state) after a completed task's
        #: execution state is archived for download — the observability
        #: layer records both as ``output-retrieved`` journal events.
        self.salvage_listeners: List[Callable[[str, List[str]], None]] = []
        self.archive_listeners: List[Callable[[str, Dict[str, object]], None]] = []

    # ------------------------------------------------------------------
    def _notify(self, kind: str, ad: CondorJobAd, site: str, detail: str = "") -> None:
        note = ClientNotification(
            time=self.sim.now,
            kind=kind,
            task_id=ad.task_id,
            job_id=ad.task.job_id or "",
            site=site,
            owner=ad.task.spec.owner,
            detail=detail,
        )
        self.notifications.append(note)
        for cb in list(self.notification_listeners):
            cb(note)

    def attach_site(self, site: Site) -> None:
        """Subscribe to a site pool's terminal callbacks."""

        def on_failed(ad: CondorJobAd) -> None:
            self._handle_task_failure(ad, site.name)

        def on_complete(ad: CondorJobAd) -> None:
            self._handle_task_completion(ad, site.name)

        site.pool.on_failed.append(on_failed)
        site.pool.on_complete.append(on_complete)

    # ------------------------------------------------------------------
    # per-task terminal handling
    # ------------------------------------------------------------------
    def _handle_task_failure(self, ad: CondorJobAd, site_name: str) -> None:
        self._notify("failure", ad, site_name, detail="task failed")
        service = self._services.get(site_name)
        service_up = False
        if service is not None:
            try:
                # "contacts the execution service to get all the local
                # files that were produced by the failed job"
                files = service.retrieve_local_files(ad.task_id)
                self.recovered_files[ad.task_id] = files
                for cb in list(self.salvage_listeners):
                    cb(ad.task_id, files)
                service_up = True
            except ExecutionServiceDown:
                # The whole service is gone; the ping sweep will resubmit.
                pass
        if (service_up and self.resubmit_failed_tasks
                and (ad.task_id, site_name) not in self._resubmitted):
            self._resubmit(ad, site_name, reason="task failure")

    def _handle_task_completion(self, ad: CondorJobAd, site_name: str) -> None:
        self._notify("completion", ad, site_name, detail="task completed")
        service = self._services.get(site_name)
        if service is None:
            return
        try:
            # "gets the execution state from the execution service. This
            # execution state is made available for download."
            state = service.execution_state(ad.task_id)
            self.execution_states[ad.task_id] = state
            for cb in list(self.archive_listeners):
                cb(ad.task_id, state)
        except ExecutionServiceDown:
            pass

    def _resubmit(self, ad: CondorJobAd, failed_site: str, reason: str) -> None:
        try:
            new_site = self.scheduler.resubmit_task(ad.task_id, exclude={failed_site})
        except SchedulingError as exc:
            self._notify(
                "resubmission", ad, failed_site,
                detail=f"resubmission impossible: {exc}",
            )
            return
        self._resubmitted.add((ad.task_id, failed_site))
        self._notify(
            "resubmission", ad, failed_site,
            detail=f"resubmitted to {new_site} after {reason}",
        )

    # ------------------------------------------------------------------
    # the periodic service sweep
    # ------------------------------------------------------------------
    def check_services(self) -> List[str]:
        """Ping every execution service in use; recover from the dead ones.

        Returns the names of sites found down in this sweep.
        """
        down: List[str] = []
        # Previously failed sites are re-pinged even when no current plan
        # uses them, so recovery is noticed and the failed set stays honest.
        to_check = self.subscriber.execution_sites_in_use() | self.failed_sites
        for site_name in sorted(to_check):
            service = self._services.get(site_name)
            if service is None:
                continue
            try:
                service.ping()
                if site_name in self.failed_sites:
                    self.failed_sites.discard(site_name)
                    # The site survived its outage: forget its resubmission
                    # guards, so a task lost to a *later* outage of the same
                    # site (flapping) is eligible for resubmission again.
                    # The guard only spans one outage, not the site's life.
                    self._resubmitted = {
                        pair for pair in self._resubmitted if pair[1] != site_name
                    }
            except ExecutionServiceDown:
                down.append(site_name)
                if site_name not in self.failed_sites:
                    self.failed_sites.add(site_name)
                    self._recover_site(site_name)
        return down

    def _recover_site(self, site_name: str) -> None:
        """Resubmit every casualty of a failed execution service."""
        for sub in [self.subscriber.subscription(j.job_id) for j in self.subscriber.jobs()]:
            for task in sub.job.tasks:
                if sub.plan.site_for(task.task_id) != site_name:
                    continue
                if task.state is JobState.COMPLETED:
                    continue
                if (task.task_id, site_name) in self._resubmitted:
                    continue
                # Build a minimal ad-like view for notification purposes.
                fake_ad = CondorJobAd(
                    task=task, condor_id=-1, priority=task.priority,
                    submit_time=self.sim.now, state=task.state,
                )
                self._notify(
                    "service-failure", fake_ad, site_name,
                    detail=f"execution service {site_name} unreachable",
                )
                self._resubmit(fake_ad, site_name, reason="execution service failure")

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Every accumulated recovery artefact as JSON-safe data."""
        return {
            "notifications": [asdict(n) for n in self.notifications],
            "recovered_files": {
                task_id: list(files)
                for task_id, files in self.recovered_files.items()
            },
            "execution_states": {
                task_id: dict(state)
                for task_id, state in self.execution_states.items()
            },
            "failed_sites": sorted(self.failed_sites),
            "resubmitted": sorted(
                [task_id, site] for task_id, site in self._resubmitted
            ),
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Replace the accumulated artefacts from :meth:`export_state`.

        Notification listeners do not re-fire — the client was already
        told; a restore must not tell them twice.
        """
        self.notifications = [
            ClientNotification(**n) for n in state["notifications"]  # type: ignore[union-attr]
        ]
        self.recovered_files = {
            task_id: list(files)
            for task_id, files in state["recovered_files"].items()  # type: ignore[union-attr]
        }
        self.execution_states = {
            task_id: dict(s)
            for task_id, s in state["execution_states"].items()  # type: ignore[union-attr]
        }
        self.failed_sites = set(state["failed_sites"])  # type: ignore[arg-type]
        self._resubmitted = {
            (task_id, site) for task_id, site in state["resubmitted"]  # type: ignore[union-attr]
        }

    def start(self) -> "BackupRecovery":
        """Begin the periodic ping sweep under the simulation clock."""
        if self._handle is not None:
            raise RuntimeError("backup & recovery already started")
        first_delay = None
        if self.resume_at is not None:
            first_delay = max(self.resume_at - self.sim.now, 0.0)
            self.resume_at = None
        self._handle = self.sim.every(
            self.ping_interval_s,
            self.check_services,
            label="steering.backup_recovery",
            first_delay=first_delay,
        )
        return self

    @property
    def next_fire_time(self) -> Optional[float]:
        """Fire time of the pending sweep (``None`` when not running)."""
        if self._handle is None:
            return None
        return self._handle.next_time

    def stop(self) -> None:
        """Cancel the periodic sweep."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
