"""The Session Manager (§4.2.5).

"This module makes sure that the authorized users steer the jobs."

Job-level authorisation on top of Clarens host-level authentication: a
steering command is allowed when the caller owns the job, belongs to an
admin group, or is the steering service's own optimizer (autonomous moves).
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.clarens.auth import Principal
from repro.core.steering.subscriber import Subscriber


class SteeringAuthError(RuntimeError):
    """Raised when a caller may not steer the named job/task."""


#: The synthetic principal the optimizer acts as.
OPTIMIZER_PRINCIPAL = Principal(user="__optimizer__", groups=frozenset({"steering-internal"}))


class SessionManager:
    """Ownership checks for steering commands."""

    def __init__(
        self,
        subscriber: Subscriber,
        admin_groups: Tuple[str, ...] = ("grid-admins",),
    ) -> None:
        self.subscriber = subscriber
        self.admin_groups: FrozenSet[str] = frozenset(admin_groups)

    def _owner_of_task(self, task_id: str) -> str:
        try:
            job_id = self.subscriber.job_of_task(task_id)
        except KeyError:
            raise SteeringAuthError(f"unknown task {task_id!r}") from None
        return self.subscriber.subscription(job_id).job.owner

    def may_steer(self, principal: Principal, task_id: str) -> bool:
        """Whether *principal* may steer the task (no exception)."""
        if principal == OPTIMIZER_PRINCIPAL:
            return True
        if principal.is_anonymous:
            return False
        if any(g in self.admin_groups for g in principal.groups):
            return True
        return principal.user == self._owner_of_task(task_id)

    def authorize(self, principal: Principal, task_id: str) -> None:
        """Raise :class:`SteeringAuthError` unless steering is allowed."""
        if not self.may_steer(principal, task_id):
            raise SteeringAuthError(
                f"user {principal.user or '<anonymous>'!r} may not steer task {task_id!r} "
                f"owned by {self._owner_of_task(task_id)!r}"
            )

    def authorize_job(self, principal: Principal, job_id: str) -> None:
        """Job-level variant of :meth:`authorize`."""
        try:
            sub = self.subscriber.subscription(job_id)
        except KeyError:
            raise SteeringAuthError(f"unknown job {job_id!r}") from None
        if principal == OPTIMIZER_PRINCIPAL:
            return
        if principal.is_anonymous or (
            principal.user != sub.job.owner
            and not any(g in self.admin_groups for g in principal.groups)
        ):
            raise SteeringAuthError(
                f"user {principal.user or '<anonymous>'!r} may not steer job {job_id!r}"
            )
