"""The paper's primary contribution: the three GAE resource-management
services.

- :mod:`repro.core.estimators` — the Estimator Service (§6): runtime,
  queue-time and file-transfer-time prediction;
- :mod:`repro.core.monitoring` — the Job Monitoring Service (§5);
- :mod:`repro.core.steering` — the Steering Service (§4).

Each service is a plain Python object registrable on a
:class:`~repro.clarens.server.ClarensHost`; the full wiring over a
simulated grid lives in :mod:`repro.gae`.
"""

from repro.core.estimators import (
    EstimatorService,
    HistoryRepository,
    QueueTimeEstimator,
    RuntimeEstimate,
    RuntimeEstimator,
    TaskRecord,
    TransferTimeEstimator,
)
from repro.core.monitoring import JobMonitoringService, MonitoringRecord
from repro.core.steering import SteeringService, SteeringPolicy

__all__ = [
    "EstimatorService",
    "HistoryRepository",
    "JobMonitoringService",
    "MonitoringRecord",
    "QueueTimeEstimator",
    "RuntimeEstimate",
    "RuntimeEstimator",
    "SteeringPolicy",
    "SteeringService",
    "TaskRecord",
    "TransferTimeEstimator",
]
