"""The Job Monitoring Service facade (Clarens-registrable).

Assembles collector + DBManager + JMManager/JMExecutable (Figure 3) and
exposes the §5 API as wire-friendly methods.  This is the object the
Figure 6 benchmark hosts on a real XML-RPC server and hammers with parallel
clients.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.clarens.readcache import ReadPolicy
from repro.clarens.registry import clarens_method
from repro.core.monitoring.collector import JobInformationCollector
from repro.core.monitoring.db_manager import DBManager
from repro.core.monitoring.manager import JMExecutable, JMManager
from repro.core.monitoring.records import MonitoringRecord
from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService
from repro.monalisa.repository import MonALISARepository
from repro.store.base import StateStore


class MonitoringError(RuntimeError):
    """Raised for queries about tasks nobody has ever seen."""


#: Every jobmon read mixes live pool state, the monitoring DB, the
#: at-submission estimates, scheduler queue placement, and elapsed time
#: (a function of the simulation clock) — so they all depend on the
#: union of those epochs.  Over-declaring only costs hit rate.
_READS = ReadPolicy(depends_on=(
    "clock", "scheduler", "pool:*", "monitoring", "estimates"
))


def _record_to_wire(record: MonitoringRecord) -> Dict[str, object]:
    return {
        "task_id": record.task_id,
        "job_id": record.job_id,
        "site": record.site,
        "status": record.status,
        "elapsed_time_s": record.elapsed_time_s,
        "estimated_run_time_s": record.estimated_run_time_s,
        "remaining_time_s": record.remaining_time_s,
        "progress": record.progress,
        "queue_position": record.queue_position,
        "priority": record.priority,
        "submission_time": record.submission_time,
        "execution_time": record.execution_time,
        "completion_time": record.completion_time,
        "cpu_time_used_s": record.cpu_time_used_s,
        "input_io_mb": record.input_io_mb,
        "output_io_mb": record.output_io_mb,
        "owner": record.owner,
        "environment": dict(record.environment),
        "snapshot_time": record.snapshot_time,
    }


class JobMonitoringService:
    """The §5 Job Monitoring Service."""

    def __init__(
        self,
        sim: Simulator,
        monalisa: Optional[MonALISARepository] = None,
        estimate_lookup: Optional[Callable[[str], float]] = None,
        db_path: str = ":memory:",
        store: Optional["StateStore"] = None,
    ) -> None:
        self.sim = sim
        self.db_manager = DBManager(path=db_path, monalisa=monalisa, store=store)
        self.collector = JobInformationCollector(
            sim, self.db_manager, estimate_lookup=estimate_lookup
        )
        self.manager = JMManager(self.db_manager, self.collector)
        self.executable = JMExecutable(self.manager)
        self._snapshot_handle = None
        #: Set by a checkpoint restore to the next snapshot's original fire
        #: time so the periodic cadence survives a restart phase-faithfully.
        self.resume_at: Optional[float] = None

    def attach(self, service: ExecutionService) -> None:
        """Start monitoring a site's execution service."""
        self.collector.attach(service)

    # ------------------------------------------------------------------
    # continuous monitoring (§5: "continuously monitors the jobs")
    # ------------------------------------------------------------------
    def snapshot_running(self) -> int:
        """Store a snapshot of every running task; returns how many.

        One batched transaction (:meth:`DBManager.update_many`) instead
        of a commit per record — the periodic snapshot is the monitoring
        DB's write hot path.
        """
        return self.db_manager.update_many(self.collector.collect_running())

    def start_periodic_snapshots(self, period_s: float = 30.0) -> None:
        """Snapshot running tasks every *period_s* simulated seconds.

        Fills the DB's append-only history — the raw data behind
        progress-vs-time charts like Figure 7.
        """
        if self._snapshot_handle is not None:
            raise RuntimeError("periodic snapshots already started")
        first_delay = None
        if self.resume_at is not None:
            first_delay = max(self.resume_at - self.sim.now, 0.0)
            self.resume_at = None
        self._snapshot_handle = self.sim.every(
            period_s,
            self.snapshot_running,
            label="jobmon.snapshots",
            first_delay=first_delay,
        )

    @property
    def next_fire_time(self) -> Optional[float]:
        """Fire time of the pending snapshot (``None`` when not running)."""
        if self._snapshot_handle is None:
            return None
        return self._snapshot_handle.next_time

    def stop_periodic_snapshots(self) -> None:
        """Cancel the periodic snapshotting."""
        if self._snapshot_handle is not None:
            self._snapshot_handle.cancel()
            self._snapshot_handle = None

    # ------------------------------------------------------------------
    # internal (in-process) accessors used by the steering service
    # ------------------------------------------------------------------
    def record_for(self, task_id: str) -> MonitoringRecord:
        """Freshest record; raises :class:`MonitoringError` when unknown."""
        record = self.executable.get_info(task_id)
        if record is None:
            raise MonitoringError(f"no monitoring information for task {task_id!r}")
        return record

    # ------------------------------------------------------------------
    # Clarens-exposed API (§5's field list)
    # ------------------------------------------------------------------
    @clarens_method(cache=_READS)
    def job_info(self, task_id: str) -> Dict[str, object]:
        """Every monitoring field for one task as a wire struct."""
        return _record_to_wire(self.record_for(task_id))

    @clarens_method(cache=_READS)
    def job_status(self, task_id: str) -> str:
        """Just the status string (the cheapest, most-polled call)."""
        return self.record_for(task_id).status

    @clarens_method(cache=_READS)
    def elapsed_time(self, task_id: str) -> float:
        """Condor accumulated wall-clock seconds."""
        return self.record_for(task_id).elapsed_time_s

    @clarens_method(cache=_READS)
    def remaining_time(self, task_id: str) -> float:
        """Estimated seconds of work left (0 when no estimate exists)."""
        return self.record_for(task_id).remaining_time_s

    @clarens_method(cache=_READS)
    def estimated_run_time(self, task_id: str) -> float:
        """The at-submission runtime estimate."""
        return self.record_for(task_id).estimated_run_time_s

    @clarens_method(cache=_READS)
    def queue_position(self, task_id: str) -> int:
        """0-based idle-queue position; -1 when not queued."""
        return self.record_for(task_id).queue_position

    @clarens_method(cache=_READS)
    def progress(self, task_id: str) -> float:
        """Completed fraction in [0, 1]."""
        return self.record_for(task_id).progress

    @clarens_method(cache=_READS)
    def job_tasks(self, job_id: str) -> List[Dict[str, object]]:
        """Monitoring structs for every known task of a job."""
        return [_record_to_wire(r) for r in self.executable.get_job_info(job_id)]

    @clarens_method(cache=_READS)
    def owner_tasks(self, owner: str) -> List[Dict[str, object]]:
        """Monitoring structs for every stored task of an owner."""
        return [_record_to_wire(r) for r in self.db_manager.for_owner(owner)]

    @clarens_method(cache=_READS)
    def running_tasks(self) -> List[Dict[str, object]]:
        """Live snapshots of everything currently running."""
        return [_record_to_wire(r) for r in self.collector.collect_running()]

    @clarens_method(cache=_READS)
    def progress_history(self, task_id: str) -> List[Dict[str, object]]:
        """Every stored snapshot of a task, oldest first.

        Requires periodic snapshots (or terminal transitions) to have fed
        the DB; this is how a client charts Figure 7-style progress curves
        without polling.
        """
        return [
            {
                "snapshot_time": t,
                "status": status,
                "progress": progress,
                "elapsed_time_s": elapsed,
                "site": site,
            }
            for t, status, progress, elapsed, site in self.db_manager.progress_history(
                task_id
            )
        ]
