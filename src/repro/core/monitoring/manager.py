"""The JMManager and JMExecutable (§5.3).

"The JMManager handles the flow of information within the Job Monitoring
Service. … It first queries the DBManager and if the information is not
found in its repository, the request is forwarded to the Job Information
Collector.  The information is then sent to the Steering Service via the
JMExecutable."

The split looks redundant in-process but is kept for architectural
fidelity: the JMExecutable is the component the Steering Service holds a
reference to, and the only one it may talk to.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.monitoring.collector import JobInformationCollector
from repro.core.monitoring.db_manager import DBManager
from repro.core.monitoring.records import MonitoringRecord


class JMManager:
    """DB-first, collector-fallback information flow."""

    def __init__(self, db_manager: DBManager, collector: JobInformationCollector) -> None:
        self.db_manager = db_manager
        self.collector = collector

    def get_info(self, task_id: str) -> Optional[MonitoringRecord]:
        """The freshest record available for a task.

        A *live* (non-terminal) task is always re-collected so the caller
        sees current progress; the DB answers for terminal tasks and for
        tasks the collector can no longer reach.
        """
        stored = self.db_manager.get(task_id)
        if stored is not None and stored.is_terminal:
            return stored
        live = self.collector.collect(task_id)
        if live is not None:
            return live
        return stored

    def get_job_info(self, job_id: str) -> List[MonitoringRecord]:
        """Freshest records for every task of a job seen so far."""
        records = {r.task_id: r for r in self.db_manager.for_job(job_id)}
        for task_id in list(records):
            fresh = self.get_info(task_id)
            if fresh is not None:
                records[task_id] = fresh
        # Tasks not yet in the DB may still be live-collectable.
        for rec in self.collector.collect_running():
            if rec.job_id == job_id:
                records[rec.task_id] = rec
        return [records[k] for k in sorted(records)]


class JMExecutable:
    """Forwards Steering Service requests to the JMManager (§5.3)."""

    def __init__(self, manager: JMManager) -> None:
        self.manager = manager

    def get_info(self, task_id: str) -> Optional[MonitoringRecord]:
        """Forwarded :meth:`JMManager.get_info`."""
        return self.manager.get_info(task_id)

    def get_job_info(self, job_id: str) -> List[MonitoringRecord]:
        """Forwarded :meth:`JMManager.get_job_info`."""
        return self.manager.get_job_info(job_id)
