"""The DBManager (§5.4): the monitoring service's database repository.

"Each Job Monitoring Service instance has a database repository.  The
access to this repository is controlled by the DBManager.  The DBManager
publishes the job monitoring information to MonALISA."

Backed by SQLite (stdlib), in-memory by default, file-backed on request —
a real queryable repository, as in the deployed system, not a dict.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import List, Optional

from repro.core.monitoring.records import MonitoringRecord
from repro.monalisa.repository import JobStateEvent, MonALISARepository

_SCHEMA = """
CREATE TABLE IF NOT EXISTS monitoring (
    task_id            TEXT PRIMARY KEY,
    job_id             TEXT NOT NULL,
    site               TEXT NOT NULL,
    status             TEXT NOT NULL,
    elapsed_time_s     REAL NOT NULL,
    estimated_run_time_s REAL NOT NULL,
    remaining_time_s   REAL NOT NULL,
    progress           REAL NOT NULL,
    queue_position     INTEGER NOT NULL,
    priority           INTEGER NOT NULL,
    submission_time    REAL NOT NULL,
    execution_time     REAL,
    completion_time    REAL,
    cpu_time_used_s    REAL NOT NULL,
    input_io_mb        REAL NOT NULL,
    output_io_mb       REAL NOT NULL,
    owner              TEXT NOT NULL,
    environment        TEXT NOT NULL,
    snapshot_time      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_monitoring_job ON monitoring (job_id);
CREATE INDEX IF NOT EXISTS idx_monitoring_owner ON monitoring (owner);
CREATE TABLE IF NOT EXISTS monitoring_history (
    seq            INTEGER PRIMARY KEY AUTOINCREMENT,
    task_id        TEXT NOT NULL,
    snapshot_time  REAL NOT NULL,
    status         TEXT NOT NULL,
    progress       REAL NOT NULL,
    elapsed_time_s REAL NOT NULL,
    site           TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_history_task ON monitoring_history (task_id);
"""

_COLUMNS = (
    "task_id", "job_id", "site", "status", "elapsed_time_s",
    "estimated_run_time_s", "remaining_time_s", "progress", "queue_position",
    "priority", "submission_time", "execution_time", "completion_time",
    "cpu_time_used_s", "input_io_mb", "output_io_mb", "owner", "environment",
    "snapshot_time",
)


class DBManager:
    """SQLite-backed store of the latest monitoring record per task."""

    def __init__(
        self,
        path: str = ":memory:",
        monalisa: Optional[MonALISARepository] = None,
    ) -> None:
        # The threaded XML-RPC front end serves monitoring queries from
        # worker threads; one connection guarded by a lock keeps SQLite
        # happy without a connection pool.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        with self._lock:
            self._conn.executescript(_SCHEMA)
        self.monalisa = monalisa

    def close(self) -> None:
        """Close the underlying database connection."""
        self._conn.close()

    # ------------------------------------------------------------------
    def update(self, record: MonitoringRecord) -> None:
        """Upsert a task's latest record; publish the update to MonALISA."""
        values = (
            record.task_id, record.job_id, record.site, record.status,
            record.elapsed_time_s, record.estimated_run_time_s,
            record.remaining_time_s, record.progress, record.queue_position,
            record.priority, record.submission_time, record.execution_time,
            record.completion_time, record.cpu_time_used_s,
            record.input_io_mb, record.output_io_mb, record.owner,
            json.dumps(dict(record.environment)), record.snapshot_time,
        )
        placeholders = ", ".join("?" for _ in _COLUMNS)
        with self._lock:
            self._conn.execute(
                f"INSERT OR REPLACE INTO monitoring ({', '.join(_COLUMNS)}) "
                f"VALUES ({placeholders})",
                values,
            )
            # Append-only history row: the raw material of progress-vs-time
            # charts like Figure 7, queryable long after the task is gone.
            self._conn.execute(
                "INSERT INTO monitoring_history "
                "(task_id, snapshot_time, status, progress, elapsed_time_s, site) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (record.task_id, record.snapshot_time, record.status,
                 record.progress, record.elapsed_time_s, record.site),
            )
            self._conn.commit()
        if self.monalisa is not None:
            self.monalisa.publish_job_state(
                JobStateEvent(
                    time=record.snapshot_time,
                    task_id=record.task_id,
                    job_id=record.job_id,
                    site=record.site,
                    state=record.status,
                    progress=record.progress,
                )
            )

    # ------------------------------------------------------------------
    def _row_to_record(self, row: tuple) -> MonitoringRecord:
        data = dict(zip(_COLUMNS, row))
        data["environment"] = json.loads(data["environment"])
        return MonitoringRecord(**data)  # type: ignore[arg-type]

    def get(self, task_id: str) -> Optional[MonitoringRecord]:
        """The stored record for a task, or None."""
        with self._lock:
            cur = self._conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM monitoring WHERE task_id = ?",
                (task_id,),
            )
            row = cur.fetchone()
        return self._row_to_record(row) if row is not None else None

    def for_job(self, job_id: str) -> List[MonitoringRecord]:
        """All stored records of a job, ordered by task id."""
        with self._lock:
            cur = self._conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM monitoring "
                "WHERE job_id = ? ORDER BY task_id",
                (job_id,),
            )
            rows = cur.fetchall()
        return [self._row_to_record(r) for r in rows]

    def for_owner(self, owner: str) -> List[MonitoringRecord]:
        """All stored records owned by a user, ordered by task id."""
        with self._lock:
            cur = self._conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM monitoring "
                "WHERE owner = ? ORDER BY task_id",
                (owner,),
            )
            rows = cur.fetchall()
        return [self._row_to_record(r) for r in rows]

    def task_ids(self) -> List[str]:
        """Every task id with a stored record, sorted."""
        with self._lock:
            cur = self._conn.execute("SELECT task_id FROM monitoring ORDER BY task_id")
            return [r[0] for r in cur.fetchall()]

    def progress_history(self, task_id: str) -> List[tuple]:
        """Every stored snapshot of a task as
        ``(snapshot_time, status, progress, elapsed_time_s, site)`` rows,
        in arrival order."""
        with self._lock:
            cur = self._conn.execute(
                "SELECT snapshot_time, status, progress, elapsed_time_s, site "
                "FROM monitoring_history WHERE task_id = ? ORDER BY seq",
                (task_id,),
            )
            return cur.fetchall()

    def __len__(self) -> int:
        with self._lock:
            cur = self._conn.execute("SELECT COUNT(*) FROM monitoring")
            return int(cur.fetchone()[0])
