"""The DBManager (§5.4): the monitoring service's database repository.

"Each Job Monitoring Service instance has a database repository.  The
access to this repository is controlled by the DBManager.  The DBManager
publishes the job monitoring information to MonALISA."

Backed by SQLite (stdlib), in-memory by default, file-backed on request —
a real queryable repository, as in the deployed system, not a dict.

Since the state-store refactor the relational tables can also live
*inside* a :class:`~repro.store.base.StateStore` (pass ``store=``): the
schema stays SQL-queryable and every read is bit-identical to the
stand-alone layout, but the rows share the store's file (or memory)
lifetime, which is how a GAE checkpoint carries its monitoring answers.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Any, Dict, Iterable, List, Optional

from repro.core.monitoring.records import MonitoringRecord
from repro.monalisa.repository import JobStateEvent, MonALISARepository
from repro.store.base import StateStore
from repro.store.registry import MONITORING_JOBS, namespace_record

_SCHEMA = """
CREATE TABLE IF NOT EXISTS monitoring (
    task_id            TEXT PRIMARY KEY,
    job_id             TEXT NOT NULL,
    site               TEXT NOT NULL,
    status             TEXT NOT NULL,
    elapsed_time_s     REAL NOT NULL,
    estimated_run_time_s REAL NOT NULL,
    remaining_time_s   REAL NOT NULL,
    progress           REAL NOT NULL,
    queue_position     INTEGER NOT NULL,
    priority           INTEGER NOT NULL,
    submission_time    REAL NOT NULL,
    execution_time     REAL,
    completion_time    REAL,
    cpu_time_used_s    REAL NOT NULL,
    input_io_mb        REAL NOT NULL,
    output_io_mb       REAL NOT NULL,
    owner              TEXT NOT NULL,
    environment        TEXT NOT NULL,
    snapshot_time      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_monitoring_job ON monitoring (job_id);
CREATE INDEX IF NOT EXISTS idx_monitoring_owner ON monitoring (owner);
CREATE TABLE IF NOT EXISTS monitoring_history (
    seq            INTEGER PRIMARY KEY AUTOINCREMENT,
    task_id        TEXT NOT NULL,
    snapshot_time  REAL NOT NULL,
    status         TEXT NOT NULL,
    progress       REAL NOT NULL,
    elapsed_time_s REAL NOT NULL,
    site           TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_history_task ON monitoring_history (task_id);
"""

_COLUMNS = (
    "task_id", "job_id", "site", "status", "elapsed_time_s",
    "estimated_run_time_s", "remaining_time_s", "progress", "queue_position",
    "priority", "submission_time", "execution_time", "completion_time",
    "cpu_time_used_s", "input_io_mb", "output_io_mb", "owner", "environment",
    "snapshot_time",
)

_HISTORY_COLUMNS = (
    "task_id", "snapshot_time", "status", "progress", "elapsed_time_s", "site",
)


def _record_values(record: MonitoringRecord) -> tuple:
    return (
        record.task_id, record.job_id, record.site, record.status,
        record.elapsed_time_s, record.estimated_run_time_s,
        record.remaining_time_s, record.progress, record.queue_position,
        record.priority, record.submission_time, record.execution_time,
        record.completion_time, record.cpu_time_used_s,
        record.input_io_mb, record.output_io_mb, record.owner,
        json.dumps(dict(record.environment)), record.snapshot_time,
    )


def _history_values(record: MonitoringRecord) -> tuple:
    return (
        record.task_id, record.snapshot_time, record.status,
        record.progress, record.elapsed_time_s, record.site,
    )


_UPSERT_SQL = (
    f"INSERT OR REPLACE INTO monitoring ({', '.join(_COLUMNS)}) "
    f"VALUES ({', '.join('?' for _ in _COLUMNS)})"
)
_HISTORY_SQL = (
    f"INSERT INTO monitoring_history ({', '.join(_HISTORY_COLUMNS)}) "
    f"VALUES ({', '.join('?' for _ in _HISTORY_COLUMNS)})"
)


class DBManager:
    """SQLite-backed store of the latest monitoring record per task.

    Usable as a context manager; :meth:`close` is idempotent and safe
    against a concurrent :meth:`update`.  When ``store`` is given, the
    tables live on the store's SQL connection (and the connection's
    lifetime belongs to the store, so ``close()`` becomes a no-op for
    the shared connection).
    """

    def __init__(
        self,
        path: str = ":memory:",
        monalisa: Optional[MonALISARepository] = None,
        store: Optional[StateStore] = None,
    ) -> None:
        # The threaded XML-RPC front end serves monitoring queries from
        # worker threads; one connection guarded by a lock keeps SQLite
        # happy without a connection pool.
        self.store = store
        if store is not None:
            store.register_namespace(namespace_record(MONITORING_JOBS))
            self._conn = store.sql_connection()
            self._owns_conn = False
        else:
            self._conn = sqlite3.connect(path, check_same_thread=False)
            self._owns_conn = True
        self._lock = threading.Lock()
        self._closed = False
        with self._lock:
            self._conn.executescript(_SCHEMA)
        self.monalisa = monalisa
        #: Called with each record after it is upserted — the read-cache
        #: "monitoring" epoch (and any other watcher) hangs here.
        self.update_listeners: list = []
        #: Event-sourced write seam: when set (to
        #: ``EventCore.emit_monitoring``) every :meth:`update` journals a
        #: ``monitoring-updated`` event instead of writing directly; the
        #: monitoring consumer then calls :meth:`apply_record` and the
        #: monalisa consumer performs the derived job-state publish.
        #: ``None`` keeps the original direct path (stand-alone managers,
        #: old tests, ``observability=False`` builds).
        self.emit = None

    def close(self) -> None:
        """Idempotently close the underlying database connection.

        Taken under the same lock as :meth:`update`, so a concurrent
        writer can never race the closing connection.  A store-owned
        connection is left open (the store manages its lifetime).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._owns_conn:
                self._conn.close()

    def __enter__(self) -> "DBManager":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def update(self, record: MonitoringRecord) -> None:
        """Upsert a task's latest record; publish the update to MonALISA.

        With the :attr:`emit` seam installed the record is journalled
        first (``monitoring-updated``) and the SQL write + MonALISA
        publish happen in the journal consumers, in the same relative
        order as the direct path.
        """
        if self.emit is not None:
            self.emit(record)
            return
        self.apply_record(record, notify=False)
        if self.monalisa is not None:
            self.monalisa.publish_job_state(self._job_state_event(record))
        for listener in self.update_listeners:
            listener(record)

    def apply_record(self, record: MonitoringRecord, notify: bool = True) -> None:
        """The SQL half of an update: upsert + append-only history row.

        The journal consumers' fold primitive — no MonALISA publish (the
        monalisa consumer owns the derived event), and ``notify=False``
        keeps update listeners quiet during tail replay.
        """
        with self._lock:
            self._conn.execute(_UPSERT_SQL, _record_values(record))
            # Append-only history row: the raw material of progress-vs-time
            # charts like Figure 7, queryable long after the task is gone.
            self._conn.execute(_HISTORY_SQL, _history_values(record))
            self._conn.commit()
        if notify:
            for listener in self.update_listeners:
                listener(record)

    def update_many(self, records: Iterable[MonitoringRecord]) -> int:
        """Batched upsert: one ``executemany`` pair in one transaction.

        The periodic monitoring snapshot writes every running task at
        once; batching amortises the per-statement and per-commit cost
        (see the ``persistence`` benchmark section).  MonALISA publishes
        happen after the transaction, in record order, exactly as a loop
        of :meth:`update` calls would have done.  On the event-sourced
        path each record is journalled individually (the log is the
        authority; consumers keep record order).
        """
        records = list(records)
        if not records:
            return 0
        if self.emit is not None:
            for record in records:
                self.emit(record)
            return len(records)
        with self._lock:
            self._conn.executemany(_UPSERT_SQL, [_record_values(r) for r in records])
            self._conn.executemany(_HISTORY_SQL, [_history_values(r) for r in records])
            self._conn.commit()
        if self.monalisa is not None:
            for record in records:
                self.monalisa.publish_job_state(self._job_state_event(record))
        for listener in self.update_listeners:
            for record in records:
                listener(record)
        return len(records)

    @staticmethod
    def _job_state_event(record: MonitoringRecord) -> JobStateEvent:
        return JobStateEvent(
            time=record.snapshot_time,
            task_id=record.task_id,
            job_id=record.job_id,
            site=record.site,
            state=record.status,
            progress=record.progress,
        )

    # ------------------------------------------------------------------
    def _row_to_record(self, row: tuple) -> MonitoringRecord:
        data = dict(zip(_COLUMNS, row))
        data["environment"] = json.loads(data["environment"])
        return MonitoringRecord(**data)  # type: ignore[arg-type]

    def get(self, task_id: str) -> Optional[MonitoringRecord]:
        """The stored record for a task, or None."""
        with self._lock:
            cur = self._conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM monitoring WHERE task_id = ?",
                (task_id,),
            )
            row = cur.fetchone()
        return self._row_to_record(row) if row is not None else None

    def for_job(self, job_id: str) -> List[MonitoringRecord]:
        """All stored records of a job, ordered by task id."""
        with self._lock:
            cur = self._conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM monitoring "
                "WHERE job_id = ? ORDER BY task_id",
                (job_id,),
            )
            rows = cur.fetchall()
        return [self._row_to_record(r) for r in rows]

    def for_owner(self, owner: str) -> List[MonitoringRecord]:
        """All stored records owned by a user, ordered by task id."""
        with self._lock:
            cur = self._conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM monitoring "
                "WHERE owner = ? ORDER BY task_id",
                (owner,),
            )
            rows = cur.fetchall()
        return [self._row_to_record(r) for r in rows]

    def task_ids(self) -> List[str]:
        """Every task id with a stored record, sorted."""
        with self._lock:
            cur = self._conn.execute("SELECT task_id FROM monitoring ORDER BY task_id")
            return [r[0] for r in cur.fetchall()]

    def progress_history(self, task_id: str) -> List[tuple]:
        """Every stored snapshot of a task as
        ``(snapshot_time, status, progress, elapsed_time_s, site)`` rows,
        in arrival order."""
        with self._lock:
            cur = self._conn.execute(
                "SELECT snapshot_time, status, progress, elapsed_time_s, site "
                "FROM monitoring_history WHERE task_id = ? ORDER BY seq",
                (task_id,),
            )
            return cur.fetchall()

    def __len__(self) -> int:
        with self._lock:
            cur = self._conn.execute("SELECT COUNT(*) FROM monitoring")
            return int(cur.fetchone()[0])

    # ------------------------------------------------------------------
    # persistence (checkpoint/restore)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Both tables as plain rows (history keeps explicit ``seq``)."""
        with self._lock:
            monitoring = self._conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM monitoring ORDER BY rowid"
            ).fetchall()
            history = self._conn.execute(
                f"SELECT seq, {', '.join(_HISTORY_COLUMNS)} "
                "FROM monitoring_history ORDER BY seq"
            ).fetchall()
        return {
            "monitoring": [list(row) for row in monitoring],
            "history": [list(row) for row in history],
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        """Replace both tables from :meth:`export_state` output.

        ``seq`` values are inserted explicitly so ``progress_history``
        order — and the AUTOINCREMENT continuation point — match the
        exporting manager exactly.  MonALISA is *not* notified: a
        restore replays state, not events.
        """
        with self._lock:
            self._conn.execute("DELETE FROM monitoring")
            self._conn.execute("DELETE FROM monitoring_history")
            self._conn.executemany(
                _UPSERT_SQL, [tuple(row) for row in state["monitoring"]]
            )
            self._conn.executemany(
                f"INSERT INTO monitoring_history (seq, {', '.join(_HISTORY_COLUMNS)}) "
                f"VALUES ({', '.join('?' for _ in range(len(_HISTORY_COLUMNS) + 1))})",
                [tuple(row) for row in state["history"]],
            )
            self._conn.commit()
        for listener in self.update_listeners:
            listener(None)
