"""The Job Information Collector (§5.2).

"The role of the Job Information Collector module is to monitor the jobs
that have been scheduled. … It functions in two ways:

- It monitors the job execution and whenever the job is completed or
  terminated due to an error, it sends an update request to the DBManager
  for that job.
- It provides the monitoring information of the running jobs to the
  JMManager when requested."

The collector attaches to any number of execution services.  Terminal
transitions are pushed to the DBManager via pool callbacks; live queries
walk the attached services and snapshot the job ad on demand.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.monitoring.db_manager import DBManager
from repro.core.monitoring.records import MonitoringRecord
from repro.gridsim.clock import Simulator
from repro.gridsim.condor import CondorJobAd
from repro.gridsim.execution import ExecutionService, ExecutionServiceDown
from repro.gridsim.job import JobState


class JobInformationCollector:
    """Watches execution services, feeds the DBManager, serves live queries.

    Parameters
    ----------
    sim:
        Clock source for snapshot timestamps.
    db_manager:
        Where terminal updates are pushed.
    estimate_lookup:
        Optional ``task_id -> float`` giving the at-submission runtime
        estimate (the estimator service's database), used to fill the
        record's estimated/remaining-time fields.
    """

    def __init__(
        self,
        sim: Simulator,
        db_manager: DBManager,
        estimate_lookup: Optional[Callable[[str], float]] = None,
    ) -> None:
        self.sim = sim
        self.db_manager = db_manager
        self.estimate_lookup = estimate_lookup
        self._services: Dict[str, ExecutionService] = {}

    # ------------------------------------------------------------------
    def attach(self, service: ExecutionService) -> None:
        """Start collecting from a site's execution service."""
        site_name = service.site.name
        if site_name in self._services:
            raise ValueError(f"already attached to site {site_name!r}")
        self._services[site_name] = service

        def on_terminal(ad: CondorJobAd) -> None:
            self.db_manager.update(self._snapshot(ad, site_name))

        # Completed or terminated-by-error both trigger a DB update (§5.2);
        # killed/moved transitions arrive through the state-change hook.
        service.pool.on_complete.append(on_terminal)
        service.pool.on_failed.append(on_terminal)

        def on_state_change(ad: CondorJobAd) -> None:
            if ad.state in (JobState.KILLED, JobState.MOVED):
                self.db_manager.update(self._snapshot(ad, site_name))

        service.pool.on_state_change.append(on_state_change)

    def attached_sites(self) -> List[str]:
        """Names of sites being collected from, sorted."""
        return sorted(self._services)

    # ------------------------------------------------------------------
    def _estimate_for(self, task_id: str) -> float:
        if self.estimate_lookup is None:
            return 0.0
        try:
            return float(self.estimate_lookup(task_id))
        except Exception:
            return 0.0

    def _snapshot(self, ad: CondorJobAd, site_name: str) -> MonitoringRecord:
        service = self._services[site_name]
        try:
            position = service.queue_position(ad.task_id)
        except ExecutionServiceDown:
            position = -1
        return MonitoringRecord.from_ad(
            ad,
            site=site_name,
            estimated_run_time_s=self._estimate_for(ad.task_id),
            queue_position=position,
            snapshot_time=self.sim.now,
        )

    def collect(self, task_id: str) -> Optional[MonitoringRecord]:
        """Live monitoring info for a task, or None when no attached,
        reachable service knows it (the JMManager fallback path, §5.3)."""
        for site_name in sorted(self._services):
            service = self._services[site_name]
            try:
                if service.has_task(task_id):
                    ad = service.job_status(task_id)
                    return self._snapshot(ad, site_name)
            except ExecutionServiceDown:
                continue
        return None

    def collect_running(self) -> List[MonitoringRecord]:
        """Snapshots of every currently running task across sites."""
        out: List[MonitoringRecord] = []
        for site_name in sorted(self._services):
            service = self._services[site_name]
            try:
                for ad in service.running_info():
                    out.append(self._snapshot(ad, site_name))
            except ExecutionServiceDown:
                continue
        return out
