"""The Job Monitoring Service (§5).

"The Job Monitoring Service provides the facility of monitoring jobs that
have been submitted for execution, and provides the job monitoring
information to the Steering Service", with an "easy-to-use API for
retrieval of job monitoring information such as job status, remaining time,
elapsed time, estimated run time, queue position, priority, submission
time, execution time, completion time, CPU time used, amount of input IO
and output IO, owner name and environment variables."

Components, one module each, mirroring Figure 3:

- :mod:`records` — the :class:`MonitoringRecord` struct with exactly the
  fields quoted above;
- :mod:`collector` — the Job Information Collector (§5.2), which watches
  execution services, pushes terminal updates to the DBManager, and serves
  live queries;
- :mod:`db_manager` — the DBManager (§5.4), an SQLite-backed repository
  that also publishes every update to MonALISA;
- :mod:`manager` — the JMManager and JMExecutable (§5.3): DB-first /
  collector-fallback query flow, and the request forwarder the Steering
  Service talks to;
- :mod:`service` — the Clarens-registrable facade.
"""

from repro.core.monitoring.collector import JobInformationCollector
from repro.core.monitoring.db_manager import DBManager
from repro.core.monitoring.manager import JMExecutable, JMManager
from repro.core.monitoring.records import MonitoringRecord
from repro.core.monitoring.service import JobMonitoringService

__all__ = [
    "DBManager",
    "JMExecutable",
    "JMManager",
    "JobInformationCollector",
    "JobMonitoringService",
    "MonitoringRecord",
]
