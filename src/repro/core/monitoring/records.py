"""The monitoring record: every field §5 promises from the API.

"… job status, remaining time, elapsed time, estimated run time, queue
position, priority, submission time, execution time, completion time, CPU
time used, amount of input IO and output IO, owner name and environment
variables."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.gridsim.condor import CondorJobAd


@dataclass(frozen=True)
class MonitoringRecord:
    """A point-in-time snapshot of one task's monitoring information."""

    task_id: str
    job_id: str
    site: str
    status: str
    elapsed_time_s: float          # Condor accumulated wall-clock time
    estimated_run_time_s: float    # at-submission estimate (0 when unknown)
    remaining_time_s: float        # estimate - elapsed, floored at 0
    progress: float                # elapsed / true work, in [0, 1]
    queue_position: int            # 0-based; -1 when not queued
    priority: int
    submission_time: float
    execution_time: Optional[float]   # when the task first started running
    completion_time: Optional[float]  # when it reached a terminal state
    cpu_time_used_s: float
    input_io_mb: float
    output_io_mb: float
    owner: str
    environment: Dict[str, str] = field(default_factory=dict)
    snapshot_time: float = 0.0

    @classmethod
    def from_ad(
        cls,
        ad: CondorJobAd,
        site: str,
        estimated_run_time_s: float = 0.0,
        queue_position: int = -1,
        snapshot_time: float = 0.0,
    ) -> "MonitoringRecord":
        """Build a record from a live Condor job ad.

        ``remaining_time_s`` uses the at-submission estimate when one is
        known; with no estimate it reports 0 (the API returns "unknown"
        rather than inventing a number).
        """
        remaining = max(0.0, estimated_run_time_s - ad.elapsed_runtime())
        return cls(
            task_id=ad.task_id,
            job_id=ad.task.job_id or "",
            site=site,
            status=ad.state.value,
            elapsed_time_s=ad.elapsed_runtime(),
            estimated_run_time_s=estimated_run_time_s,
            remaining_time_s=remaining if estimated_run_time_s > 0 else 0.0,
            progress=ad.progress,
            queue_position=queue_position,
            priority=ad.priority,
            submission_time=ad.submit_time,
            execution_time=ad.start_time,
            completion_time=ad.end_time,
            cpu_time_used_s=ad.accrued_work,
            input_io_mb=ad.input_io_mb,
            output_io_mb=ad.output_io_mb,
            owner=ad.task.spec.owner,
            environment=dict(ad.task.spec.environment),
            snapshot_time=snapshot_time,
        )

    @property
    def is_terminal(self) -> bool:
        """Whether the snapshot shows a finished task."""
        return self.status in ("completed", "failed", "killed", "moved")
