"""Unified pluggable state-store layer (persistence & recovery substrate).

Public surface:

- :class:`StateStore` protocol with :class:`MemoryStore` and
  :class:`SqliteStore` backends (same JSON value codec → bit-identical
  reads across backends);
- the canonical namespace registry (:data:`NAMESPACES`, ``register_all``);
- GAE-wide checkpoint/restore (:class:`Checkpointer`, :func:`restore_gae`)
  in :mod:`repro.store.checkpoint`.
"""

from repro.store.base import (
    Namespace,
    NamespaceVersionError,
    StateStore,
    StoreError,
    UnknownNamespaceError,
)
from repro.store.memory import MemoryStore
from repro.store.registry import NAMESPACES, namespace_names, register_all
from repro.store.sqlite import SqliteStore

__all__ = [
    "CheckpointError",
    "CheckpointInfo",
    "Checkpointer",
    "MemoryStore",
    "NAMESPACES",
    "Namespace",
    "NamespaceVersionError",
    "SqliteStore",
    "StateStore",
    "StoreError",
    "UnknownNamespaceError",
    "namespace_names",
    "register_all",
    "restore_gae",
]

_CHECKPOINT_EXPORTS = ("CheckpointError", "CheckpointInfo", "Checkpointer", "restore_gae")


def __getattr__(name: str):
    # The checkpoint module imports repro.gae (the whole wiring), which in
    # turn imports repro.store.base — loading it eagerly here would be a
    # cycle.  Resolve the checkpoint names on first touch instead.
    if name in _CHECKPOINT_EXPORTS:
        from repro.store import checkpoint

        return getattr(checkpoint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
