"""Canonical registry of every GAE state-store namespace.

One authoritative tuple of :class:`~repro.store.base.Namespace` records,
used three ways:

- ``register_all(store)`` prepares a store to hold a full checkpoint;
- ``tools/check_docs.py`` verifies the "State-store namespaces" table in
  ``docs/ARCHITECTURE.md`` lists exactly these names (docs cannot drift);
- the webui and CLI render it so operators can see what a checkpoint
  file contains.

Bump a namespace's version here (and write a migration in the owning
service) whenever its value shape changes incompatibly.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.store.base import Namespace, StateStore

__all__ = [
    "ACCOUNTING_STATE",
    "CHECKPOINT_GRIDSIM",
    "CHECKPOINT_META",
    "ESTIMATOR_HISTORY",
    "ESTIMATOR_RUNTIME",
    "EVENTCORE_CURSORS",
    "MONALISA_EVENTS",
    "MONALISA_TIMESERIES",
    "MONITORING_JOBS",
    "NAMESPACES",
    "OBSERVABILITY_JOURNAL",
    "OBSERVABILITY_METRICS",
    "OBSERVABILITY_TELEMETRY",
    "OBSERVABILITY_TRACING",
    "STEERING_STATE",
    "namespace_names",
    "namespace_record",
    "register_all",
]

ESTIMATOR_HISTORY = "estimator.history"
ESTIMATOR_RUNTIME = "estimator.runtime"
MONITORING_JOBS = "monitoring.jobs"
MONALISA_TIMESERIES = "monalisa.timeseries"
MONALISA_EVENTS = "monalisa.events"
OBSERVABILITY_JOURNAL = "observability.journal"
EVENTCORE_CURSORS = "eventcore.cursors"
OBSERVABILITY_TRACING = "observability.tracing"
OBSERVABILITY_METRICS = "observability.metrics"
OBSERVABILITY_TELEMETRY = "observability.telemetry"
CHECKPOINT_META = "checkpoint.meta"
CHECKPOINT_GRIDSIM = "checkpoint.gridsim"
STEERING_STATE = "checkpoint.steering"
ACCOUNTING_STATE = "checkpoint.accounting"

NAMESPACES: Tuple[Namespace, ...] = (
    Namespace(ESTIMATOR_HISTORY, 1, "completed TaskRecords backing the runtime estimator"),
    Namespace(ESTIMATOR_RUNTIME, 1, "at-submission runtime estimates (RuntimeEstimateDB)"),
    Namespace(MONITORING_JOBS, 1, "job monitoring rows + progress history (DBManager)"),
    Namespace(MONALISA_TIMESERIES, 1, "MonALISA per-farm metric time series"),
    Namespace(MONALISA_EVENTS, 1, "MonALISA job-state event log"),
    Namespace(OBSERVABILITY_JOURNAL, 1, "lifecycle event journal rows"),
    Namespace(EVENTCORE_CURSORS, 1, "per-consumer journal cursors and checkpoint high-water marks"),
    Namespace(OBSERVABILITY_TRACING, 1, "tracer span store"),
    Namespace(OBSERVABILITY_METRICS, 1, "metrics registry instrument values"),
    Namespace(OBSERVABILITY_TELEMETRY, 1, "windowed telemetry series and health-rule state"),
    Namespace(CHECKPOINT_META, 1, "checkpoint barrier metadata, grid spec, id counters"),
    Namespace(CHECKPOINT_GRIDSIM, 1, "scheduler, Condor pools, replica catalog, RNG streams"),
    Namespace(STEERING_STATE, 1, "steering subscriptions and Backup & Recovery state"),
    Namespace(ACCOUNTING_STATE, 1, "quota balances, reservations, and the charge ledger"),
)


def register_all(store: StateStore) -> None:
    """Register every canonical namespace on *store* (idempotent)."""
    for ns in NAMESPACES:
        store.register_namespace(ns)


def namespace_names() -> List[str]:
    """Just the names, in canonical order."""
    return [ns.name for ns in NAMESPACES]


def namespace_record(name: str) -> Namespace:
    """The canonical record for *name* (KeyError if not canonical).

    Services registering their own namespace should register this record
    so descriptions and versions never drift from the registry.
    """
    for ns in NAMESPACES:
        if ns.name == name:
            return ns
    raise KeyError(f"no canonical namespace named {name!r}")
