"""GAE-wide checkpoint/restore.

A checkpoint is one SQLite file (a :class:`~repro.store.sqlite.SqliteStore`)
holding every canonical namespace: the five migrated service stores
(estimator history, runtime estimates, monitoring DB, MonALISA, event
journal), the observability layer, and the live gridsim/steering/accounting
state captured at a *barrier event* — a scheduled simulation instant, so
the snapshot is taken between events while the system is quiescent.

:func:`restore_gae` rebuilds the grid from its declarative spec, rewires a
fresh GAE through :func:`repro.gae.build_gae`, and rehydrates every layer
*without firing listeners*: a restore replays state, not events.  The
restored system's estimator answers, monitoring answers, MonALISA series,
Backup & Recovery failed-set, and ``system.observability`` report are
identical to the pre-snapshot system at the checkpoint instant, and running
it to completion finishes every in-flight job.

Restore ordering matters and is documented inline; the broad strokes:

1. id counters and RNG streams first (nothing may draw before they are
   re-seeded),
2. the grid substrate from its spec, clock started at the checkpoint time,
3. ``build_gae`` with the saved build parameters, policy, and history,
4. store-backed layers (estimates, monitoring rows, MonALISA, journal),
5. scheduler entries, then pools (ads resolve task ids against the
   restored jobs), then incremental queue accounting reseeded from the
   restored queues,
6. steering/accounting/observability state,
7. the periodic activities re-armed via :meth:`repro.gae.GAE.start`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Optional

from repro.store.base import StateStore, StoreError, UnknownNamespaceError
from repro.store.registry import (
    ACCOUNTING_STATE,
    CHECKPOINT_GRIDSIM,
    CHECKPOINT_META,
    MONITORING_JOBS,
    STEERING_STATE,
    register_all,
)
from repro.store.sqlite import SqliteStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gae import GAE
    from repro.gridsim.events import EventHandle

#: Bump when the overall checkpoint layout (not an individual namespace)
#: changes incompatibly.
CHECKPOINT_FORMAT = 1


class CheckpointError(StoreError):
    """Raised for unreadable, incomplete, or incompatible checkpoints."""


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary of a written checkpoint."""

    path: str
    time: float
    jobs: int
    tasks: int


class Checkpointer:
    """Snapshots a running :class:`~repro.gae.GAE` into a state store."""

    def __init__(self, gae: "GAE") -> None:
        self.gae = gae
        #: The most recent :meth:`checkpoint` result; lets callers of
        #: :meth:`checkpoint_at` read the outcome after the event fires.
        self.last_info: Optional[CheckpointInfo] = None

    def checkpoint(self, path: str) -> CheckpointInfo:
        """Write a full checkpoint to the SQLite file at *path*."""
        with SqliteStore(path) as store:
            self.write_state(store)
        jobs = self.gae.scheduler.jobs()
        self.last_info = CheckpointInfo(
            path=str(path),
            time=self.gae.sim.now,
            jobs=len(jobs),
            tasks=sum(len(j.tasks) for j in jobs),
        )
        return self.last_info

    def checkpoint_at(self, time: float, path: str) -> "EventHandle":
        """Schedule a checkpoint as a barrier event at simulated *time*.

        The snapshot runs between other events at that instant, so it
        observes a quiescent system — exactly what a kill-and-restore
        test interrupts.
        """
        return self.gae.sim.at(
            time, lambda: self.checkpoint(path), label=f"gae.checkpoint:{path}"
        )

    def write_state(self, store: StateStore) -> None:
        """Write every layer's state into *store* (any backend)."""
        from repro.gridsim.job import snapshot_id_counters

        gae = self.gae
        grid = gae.grid
        register_all(store)

        tracking = (
            gae.observability.export_tracking()
            if gae.observability is not None
            else None
        )
        store.put(
            CHECKPOINT_META,
            "meta",
            {
                "format": CHECKPOINT_FORMAT,
                "time": gae.sim.now,
                "grid_spec": grid.spec,
                "id_counters": list(snapshot_id_counters()),
                "policy": asdict(gae.steering.policy),
                "build_params": dict(gae.build_params),
                "observability_tracking": tracking,
                "users": gae.host.users.export_state(),
            },
        )

        # The five migrated service stores.
        gae.history.save_to(store)
        gae.estimators.estimate_db.save_to(store)
        store.put(MONITORING_JOBS, "state", gae.monitoring.db_manager.export_state())
        gae.monalisa.save_to(store)
        if gae.observability is not None:
            gae.observability.save_to(store)

        # The gridsim substrate.  Pool snapshots sync running accruals to
        # the barrier instant themselves.
        store.put(CHECKPOINT_GRIDSIM, "scheduler", gae.scheduler.snapshot_state())
        for name in sorted(grid.sites):
            store.put(
                CHECKPOINT_GRIDSIM,
                f"pool:{name}",
                grid.sites[name].pool.snapshot_state(),
            )
        store.put(CHECKPOINT_GRIDSIM, "catalog", grid.catalog.snapshot_files())
        if gae.estimators.transfer is not None:
            store.put(
                CHECKPOINT_GRIDSIM,
                "transfer_cache",
                gae.estimators.transfer.export_cache_state(),
            )
        store.put(CHECKPOINT_GRIDSIM, "rng", grid.rngs.export_states())
        store.put(
            CHECKPOINT_GRIDSIM,
            "services",
            {
                name: grid.execution_services[name].failed
                for name in sorted(grid.execution_services)
            },
        )

        # Steering and accounting.
        store.put(STEERING_STATE, "subscriber", gae.steering.subscriber.export_state())
        store.put(
            STEERING_STATE,
            "backup_recovery",
            gae.steering.backup_recovery.export_state(),
        )
        store.put(ACCOUNTING_STATE, "quotas", gae.accounting.quotas.export_state())


def restore_gae(path: str, store: Optional[StateStore] = None) -> "GAE":
    """Rehydrate a runnable :class:`~repro.gae.GAE` from a checkpoint file.

    *store* becomes the restored system's live state store (a fresh
    in-memory store when omitted, so the checkpoint file itself is never
    mutated and can be restored from repeatedly).  The returned GAE's
    periodic activities are armed; ``gae.sim.run()`` resumes the workload.
    """
    from repro.core.estimators.history import HistoryRepository
    from repro.core.steering.optimizer import SteeringPolicy
    from repro.gae import build_gae
    from repro.gridsim.grid import GridBuilder
    from repro.gridsim.job import restore_id_counters

    source = SqliteStore(path)
    try:
        try:
            meta = source.get(CHECKPOINT_META, "meta", default=None)
        except UnknownNamespaceError:
            meta = None
        if meta is None:
            raise CheckpointError(f"{path!r} holds no checkpoint metadata")
        if meta["format"] != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint format {meta['format']} unsupported "
                f"(this build reads format {CHECKPOINT_FORMAT})"
            )

        # 1. Allocators and streams before anything may draw from them.
        restore_id_counters(*meta["id_counters"])

        # 2. The substrate, clock starting at the barrier instant.
        grid = GridBuilder.from_spec(meta["grid_spec"], start_time=meta["time"]).build()
        grid.rngs.restore_states(source.get(CHECKPOINT_GRIDSIM, "rng"))

        # 3. The same wiring the original had.
        history = HistoryRepository.load_from(source)
        gae = build_gae(
            grid,
            policy=SteeringPolicy(**meta["policy"]),
            history=history,
            store=store,
            **meta["build_params"],
        )

        # 4. Store-backed layers: direct loads, no listener traffic.
        gae.estimators.estimate_db.load_from(source)
        gae.monitoring.db_manager.import_state(source.get(MONITORING_JOBS, "state"))
        gae.monalisa.load_from(source)

        # 5. Scheduler before pools: pool ads resolve task ids against the
        # restored job entries.  Queue accounting reseeds from the restored
        # queues afterwards (its incremental sums saw none of the restores).
        gae.scheduler.restore_state(source.get(CHECKPOINT_GRIDSIM, "scheduler"))
        for name in sorted(grid.sites):
            grid.sites[name].pool.restore_state(
                source.get(CHECKPOINT_GRIDSIM, f"pool:{name}"), gae.scheduler.task
            )
        for name in sorted(grid.execution_services):
            accounting = grid.execution_services[name].queue_accounting
            if accounting is not None:
                accounting.reseed()
        for name, failed in source.get(CHECKPOINT_GRIDSIM, "services").items():
            grid.execution_services[name].restore_availability(failed)
        grid.catalog.restore_files(source.get(CHECKPOINT_GRIDSIM, "catalog"))
        transfer_cache = source.get(CHECKPOINT_GRIDSIM, "transfer_cache", default=None)
        if transfer_cache is not None and gae.estimators.transfer is not None:
            gae.estimators.transfer.import_cache_state(transfer_cache)

        # 6. Steering, accounting, observability.
        gae.steering.subscriber.import_state(
            source.get(STEERING_STATE, "subscriber"), gae.scheduler.job
        )
        gae.steering.backup_recovery.import_state(
            source.get(STEERING_STATE, "backup_recovery")
        )
        gae.accounting.quotas.import_state(source.get(ACCOUNTING_STATE, "quotas"))
        gae.host.users.import_state(meta["users"])
        if gae.observability is not None:
            gae.observability.load_from(
                source, tracking=meta["observability_tracking"]
            )

        # 7. Re-arm the periodic activities; the caller just runs.
        return gae.start()
    finally:
        source.close()
