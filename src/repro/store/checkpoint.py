"""GAE-wide checkpoint/restore, full and incremental.

A full checkpoint is one SQLite file (a
:class:`~repro.store.sqlite.SqliteStore`) holding every canonical
namespace: the five migrated service stores (estimator history, runtime
estimates, monitoring DB, MonALISA, event journal), the observability
layer, and the live gridsim/steering/accounting state captured at a
*barrier event* — a scheduled simulation instant, so the snapshot is
taken between events while the system is quiescent.

With the event-sourced core, the four journal consumers (estimators,
monitoring, MonALISA, queue accounting) are pure folds over the journal.
That makes a cheaper *incremental* checkpoint possible: skip the
consumer namespaces entirely and record only the journal (whose retained
window covers the tail since the last full checkpoint), the runtime
state, and the per-consumer ``(namespace, cursor)`` high-water marks.
:func:`restore_incremental` rebuilds consumer state as *base snapshot +
quiet replay of the journal tail*, bit-identical to a full restore.

:func:`restore_gae` rebuilds the grid from its declarative spec, rewires
a fresh GAE through :func:`repro.gae.build_gae`, and rehydrates every
layer *without firing listeners*: a restore replays state, not events.
The restored system's estimator answers, monitoring answers, MonALISA
series, Backup & Recovery failed-set, and ``system.observability``
report are identical to the pre-snapshot system at the checkpoint
instant, and running it to completion finishes every in-flight job.

Restore ordering matters and is documented inline; the broad strokes:

1. id counters and RNG streams first (nothing may draw before they are
   re-seeded),
2. the grid substrate from its spec, clock started at the checkpoint time,
3. ``build_gae`` with the saved build parameters, policy, and history,
4. store-backed layers (estimates, monitoring rows, MonALISA, journal),
   then — on the incremental path — the quiet journal-tail replay that
   brings consumer state from the base snapshot to the barrier,
5. scheduler entries, then pools (ads resolve task ids against the
   restored jobs), then incremental queue accounting reseeded from the
   restored queues,
6. steering/accounting state and the publishers' resume phases,
7. the periodic activities re-armed via :meth:`repro.gae.GAE.start`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.store.base import StateStore, StoreError, UnknownNamespaceError
from repro.store.registry import (
    ACCOUNTING_STATE,
    CHECKPOINT_GRIDSIM,
    CHECKPOINT_META,
    EVENTCORE_CURSORS,
    MONITORING_JOBS,
    STEERING_STATE,
    register_all,
)
from repro.store.sqlite import SqliteStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gae import GAE
    from repro.gridsim.events import EventHandle

#: Bump when the overall checkpoint layout (not an individual namespace)
#: changes incompatibly.
CHECKPOINT_FORMAT = 1


class CheckpointError(StoreError):
    """Raised for unreadable, incomplete, or incompatible checkpoints."""


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary of a written checkpoint."""

    path: str
    time: float
    jobs: int
    tasks: int
    #: ``True`` for a journal-tail delta written by
    #: :meth:`Checkpointer.checkpoint_incremental`.
    incremental: bool = False
    #: Journal head sequence at the barrier (``None`` without observability).
    head_seq: Optional[int] = None


class Checkpointer:
    """Snapshots a running :class:`~repro.gae.GAE` into a state store."""

    def __init__(self, gae: "GAE") -> None:
        self.gae = gae
        #: The most recent :meth:`checkpoint` result; lets callers of
        #: :meth:`checkpoint_at` read the outcome after the event fires.
        self.last_info: Optional[CheckpointInfo] = None
        #: Journal head seq of the last *full* checkpoint — the default
        #: base for :meth:`checkpoint_incremental`.
        self.last_full_head_seq: Optional[int] = None

    # ------------------------------------------------------------------
    # full checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> CheckpointInfo:
        """Write a full checkpoint to the SQLite file at *path*."""
        with SqliteStore(path) as store:
            self.write_state(store)
        self.last_full_head_seq = self._head_seq()
        self.last_info = self._info(path, incremental=False)
        return self.last_info

    def checkpoint_at(self, time: float, path: str) -> "EventHandle":
        """Schedule a checkpoint as a barrier event at simulated *time*.

        The snapshot runs between other events at that instant, so it
        observes a quiescent system — exactly what a kill-and-restore
        test interrupts.
        """
        return self.gae.sim.at(
            time, lambda: self.checkpoint(path), label=f"gae.checkpoint:{path}"
        )

    def write_state(self, store: StateStore) -> None:
        """Write every layer's state into *store* (any backend)."""
        gae = self.gae
        register_all(store)
        self._write_meta(store)

        # The five migrated service stores (the journal-consumer base).
        gae.history.save_to(store)
        gae.estimators.estimate_db.save_to(store)
        store.put(MONITORING_JOBS, "state", gae.monitoring.db_manager.export_state())
        gae.monalisa.save_to(store)

        self._write_runtime(store)

    # ------------------------------------------------------------------
    # incremental checkpoints
    # ------------------------------------------------------------------
    def checkpoint_incremental(
        self, path: str, *, base_seq: Optional[int] = None
    ) -> CheckpointInfo:
        """Write a journal-tail delta against the last full checkpoint.

        The delta skips the four consumer namespaces entirely — their
        state at the barrier is ``base snapshot + fold of journal events
        with seq > base_seq``, which :func:`restore_incremental` replays
        quietly.  *base_seq* defaults to the journal head recorded by the
        last :meth:`checkpoint` on this instance.

        Raises :class:`CheckpointError` when observability is off, when
        no base is known, or when the journal's retained window no longer
        reaches ``base_seq`` (the tail cannot be replayed).
        """
        gae = self.gae
        if gae.observability is None:
            raise CheckpointError("incremental checkpoints require observability")
        if base_seq is None:
            base_seq = self.last_full_head_seq
        if base_seq is None:
            raise CheckpointError(
                "no base checkpoint: write a full checkpoint() first "
                "or pass base_seq explicitly"
            )
        retained = gae.observability.journal.events()
        if retained and retained[0].seq > base_seq + 1:
            raise CheckpointError(
                f"journal retention starts at seq {retained[0].seq}, "
                f"after base {base_seq}: tail is not replayable "
                "(raise journal max_events or checkpoint more often)"
            )
        with SqliteStore(path) as store:
            self.write_incremental_state(store, base_seq)
        self.last_info = self._info(path, incremental=True)
        return self.last_info

    def checkpoint_incremental_at(self, time: float, path: str) -> "EventHandle":
        """Schedule :meth:`checkpoint_incremental` as a barrier event."""
        return self.gae.sim.at(
            time,
            lambda: self.checkpoint_incremental(path),
            label=f"gae.checkpoint.incremental:{path}",
        )

    def write_incremental_state(self, store: StateStore, base_seq: int) -> None:
        """Write the delta layers (everything but the consumer stores)."""
        register_all(store)
        self._write_meta(
            store,
            incremental={"base_seq": base_seq, "head_seq": self._head_seq()},
        )
        self._write_runtime(store)

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def _head_seq(self) -> Optional[int]:
        obs = self.gae.observability
        return obs.journal.head_seq if obs is not None else None

    def _info(self, path: str, *, incremental: bool) -> CheckpointInfo:
        jobs = self.gae.scheduler.jobs()
        return CheckpointInfo(
            path=str(path),
            time=self.gae.sim.now,
            jobs=len(jobs),
            tasks=sum(len(j.tasks) for j in jobs),
            incremental=incremental,
            head_seq=self._head_seq(),
        )

    def _write_meta(
        self, store: StateStore, incremental: Optional[Dict[str, Any]] = None
    ) -> None:
        from repro.gridsim.job import snapshot_id_counters

        gae = self.gae
        tracking = (
            gae.observability.export_tracking()
            if gae.observability is not None
            else None
        )
        store.put(
            CHECKPOINT_META,
            "meta",
            {
                "format": CHECKPOINT_FORMAT,
                "time": gae.sim.now,
                "grid_spec": gae.grid.spec,
                "id_counters": list(snapshot_id_counters()),
                "policy": asdict(gae.steering.policy),
                "build_params": dict(gae.build_params),
                "observability_tracking": tracking,
                "users": gae.host.users.export_state(),
                "incremental": incremental,
            },
        )

    def _write_runtime(self, store: StateStore) -> None:
        """Observability, gridsim substrate, steering, and accounting."""
        gae = self.gae
        grid = gae.grid

        if gae.observability is not None:
            gae.observability.save_to(store)
            core = getattr(gae.observability, "eventcore", None)
            if core is not None:
                store.put(EVENTCORE_CURSORS, "state", core.snapshot())

        # The gridsim substrate.  Pool snapshots sync running accruals to
        # the barrier instant themselves.
        store.put(CHECKPOINT_GRIDSIM, "scheduler", gae.scheduler.snapshot_state())
        for name in sorted(grid.sites):
            store.put(
                CHECKPOINT_GRIDSIM,
                f"pool:{name}",
                grid.sites[name].pool.snapshot_state(),
            )
        store.put(CHECKPOINT_GRIDSIM, "catalog", grid.catalog.snapshot_files())
        if gae.estimators.transfer is not None:
            store.put(
                CHECKPOINT_GRIDSIM,
                "transfer_cache",
                gae.estimators.transfer.export_cache_state(),
            )
        store.put(CHECKPOINT_GRIDSIM, "rng", grid.rngs.export_states())
        store.put(
            CHECKPOINT_GRIDSIM,
            "services",
            {
                name: grid.execution_services[name].failed
                for name in sorted(grid.execution_services)
            },
        )
        # Periodic-activity phases: a restore re-joins every original
        # cadence, so a resumed run fires publishers, the steering poll,
        # the B&R sweep, and monitoring snapshots at the same instants
        # the uninterrupted run would have.
        store.put(
            CHECKPOINT_GRIDSIM,
            "publishers",
            {
                "site_load": gae.load_publisher.next_fire_time,
                "service_metrics": gae.service_metrics_publisher.next_fire_time,
                "steering_loop": gae.steering.next_fire_time,
                "backup_recovery": gae.steering.backup_recovery.next_fire_time,
                "monitor_snapshots": gae.monitoring.next_fire_time,
            },
        )

        # Steering and accounting.
        store.put(STEERING_STATE, "subscriber", gae.steering.subscriber.export_state())
        store.put(
            STEERING_STATE,
            "backup_recovery",
            gae.steering.backup_recovery.export_state(),
        )
        store.put(ACCOUNTING_STATE, "quotas", gae.accounting.quotas.export_state())


def restore_gae(path: str, store: Optional[StateStore] = None) -> "GAE":
    """Rehydrate a runnable :class:`~repro.gae.GAE` from a full checkpoint.

    *store* becomes the restored system's live state store (a fresh
    in-memory store when omitted, so the checkpoint file itself is never
    mutated and can be restored from repeatedly).  The returned GAE's
    periodic activities are armed; ``gae.sim.run()`` resumes the workload.
    """
    source = SqliteStore(path)
    try:
        meta = _read_meta(source, path)
        if meta.get("incremental") is not None:
            raise CheckpointError(
                f"{path!r} is an incremental checkpoint: restore it with "
                "restore_incremental(base_path, delta_path)"
            )
        return _restore(meta, source, source, store=store)
    finally:
        source.close()


def restore_incremental(
    base_path: str, delta_path: str, store: Optional[StateStore] = None
) -> "GAE":
    """Rehydrate a GAE from a full checkpoint plus a journal-tail delta.

    Consumer state (estimates, history, monitoring rows, MonALISA) comes
    from *base_path*; everything else — clock, scheduler, pools, journal,
    steering, accounting — comes from *delta_path*.  The journal tail
    (events with ``seq > base_seq``) is replayed quietly through the
    event core, which brings every consumer to the exact barrier state a
    full checkpoint would have stored.
    """
    base = SqliteStore(base_path)
    delta = SqliteStore(delta_path)
    try:
        meta = _read_meta(delta, delta_path)
        inc = meta.get("incremental")
        if inc is None:
            raise CheckpointError(
                f"{delta_path!r} is a full checkpoint, not a delta: "
                "use restore_gae"
            )
        base_meta = _read_meta(base, base_path)
        if base_meta.get("incremental") is not None:
            raise CheckpointError(
                f"{base_path!r} is itself incremental: deltas must be "
                "restored against a full checkpoint"
            )
        base_state = base.get(EVENTCORE_CURSORS, "state", default=None)
        if base_state is not None:
            base_head = base_state.get("journal_head_seq")
            if base_head is not None and base_head != inc["base_seq"]:
                raise CheckpointError(
                    f"delta was cut against journal head {inc['base_seq']} "
                    f"but {base_path!r} stops at {base_head}"
                )
        return _restore(
            meta, delta, base, store=store, replay_from=inc["base_seq"]
        )
    finally:
        base.close()
        delta.close()


def _read_meta(source: StateStore, path: str) -> Dict[str, Any]:
    try:
        meta = source.get(CHECKPOINT_META, "meta", default=None)
    except UnknownNamespaceError:
        meta = None
    if meta is None:
        raise CheckpointError(f"{path!r} holds no checkpoint metadata")
    if meta["format"] != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format {meta['format']} unsupported "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    return meta


def _restore(
    meta: Dict[str, Any],
    source: StateStore,
    consumer_source: StateStore,
    store: Optional[StateStore] = None,
    replay_from: Optional[int] = None,
) -> "GAE":
    """Shared restore path.

    *source* provides the runtime state (clock, scheduler, pools,
    journal, steering, accounting); *consumer_source* provides the four
    consumer stores.  For a full restore they are the same file and
    *replay_from* is ``None``; for an incremental restore the consumers
    load from the base file and the journal tail past *replay_from* is
    folded on top.
    """
    from repro.core.estimators.history import HistoryRepository
    from repro.core.steering.optimizer import SteeringPolicy
    from repro.gae import build_gae
    from repro.gridsim.grid import GridBuilder
    from repro.gridsim.job import restore_id_counters

    # 1. Allocators and streams before anything may draw from them.
    restore_id_counters(*meta["id_counters"])

    # 2. The substrate, clock starting at the barrier instant.
    grid = GridBuilder.from_spec(meta["grid_spec"], start_time=meta["time"]).build()
    grid.rngs.restore_states(source.get(CHECKPOINT_GRIDSIM, "rng"))

    # 3. The same wiring the original had.
    history = HistoryRepository.load_from(consumer_source)
    gae = build_gae(
        grid,
        policy=SteeringPolicy(**meta["policy"]),
        history=history,
        store=store,
        **meta["build_params"],
    )

    # 4. Store-backed layers: direct loads, no listener traffic.  On the
    # incremental path the journal tail is folded quietly on top, BEFORE
    # queue accounting reseeds (step 5) so the reseed sees post-tail
    # estimates exactly as the live run did.
    gae.estimators.estimate_db.load_from(consumer_source)
    gae.monitoring.db_manager.import_state(consumer_source.get(MONITORING_JOBS, "state"))
    gae.monalisa.load_from(consumer_source)
    core = None
    if gae.observability is not None:
        gae.observability.load_from(source, tracking=meta["observability_tracking"])
        core = getattr(gae.observability, "eventcore", None)
        if replay_from is not None:
            if core is None:
                raise CheckpointError(
                    "incremental restore needs the event core, but this "
                    "build has no consumers registered"
                )
            tail = [
                e
                for e in gae.observability.journal.events()
                if e.seq > replay_from
            ]
            core.replay_tail(tail)
    elif replay_from is not None:
        raise CheckpointError("incremental restore requires observability")

    # 5. Scheduler before pools: pool ads resolve task ids against the
    # restored job entries.  Queue accounting reseeds from the restored
    # queues afterwards (its incremental sums saw none of the restores).
    gae.scheduler.restore_state(source.get(CHECKPOINT_GRIDSIM, "scheduler"))
    for name in sorted(grid.sites):
        grid.sites[name].pool.restore_state(
            source.get(CHECKPOINT_GRIDSIM, f"pool:{name}"), gae.scheduler.task
        )
    for name in sorted(grid.execution_services):
        accounting = grid.execution_services[name].queue_accounting
        if accounting is not None:
            accounting.reseed()
    for name, failed in source.get(CHECKPOINT_GRIDSIM, "services").items():
        grid.execution_services[name].restore_availability(failed)
    grid.catalog.restore_files(source.get(CHECKPOINT_GRIDSIM, "catalog"))
    transfer_cache = source.get(CHECKPOINT_GRIDSIM, "transfer_cache", default=None)
    if transfer_cache is not None and gae.estimators.transfer is not None:
        gae.estimators.transfer.import_cache_state(transfer_cache)

    # 6. Steering, accounting, publisher resume phases.
    gae.steering.subscriber.import_state(
        source.get(STEERING_STATE, "subscriber"), gae.scheduler.job
    )
    gae.steering.backup_recovery.import_state(
        source.get(STEERING_STATE, "backup_recovery")
    )
    gae.accounting.quotas.import_state(source.get(ACCOUNTING_STATE, "quotas"))
    gae.host.users.import_state(meta["users"])
    phases = source.get(CHECKPOINT_GRIDSIM, "publishers", default=None)
    if phases is not None:
        gae.load_publisher.resume_at = phases.get("site_load")
        gae.service_metrics_publisher.resume_at = phases.get("service_metrics")
        gae.steering.resume_at = phases.get("steering_loop")
        gae.steering.backup_recovery.resume_at = phases.get("backup_recovery")
        gae.monitoring.resume_at = phases.get("monitor_snapshots")

    # Consumers now hold barrier state; re-anchor their baselines so
    # verify()/rebuild() fold only post-restore events.
    if core is not None:
        core.rebaseline_all()

    # 7. Re-arm the periodic activities; the caller just runs.
    return gae.start()
