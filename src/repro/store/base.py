"""The pluggable state-store protocol every GAE service persists through.

The paper's services are explicitly stateful and recoverable: the Job
Monitoring Service owns "a database repository" behind a DBManager
(§5.4) and Backup & Recovery (§4.2.4) must outlive any single Execution
Service.  This module gives all of that state one home: a
:class:`StateStore` is a namespaced key/value store with *typed,
versioned namespaces* and an escape hatch (:meth:`StateStore.sql_connection`)
for the one service whose public API is genuinely relational.

Two backends implement the protocol (see :mod:`repro.store.memory` and
:mod:`repro.store.sqlite`).  Both run every value through the same JSON
codec, so a value read back from a ``SqliteStore`` is *bit-identical* to
the same value read back from a ``MemoryStore`` — tuples become lists,
floats round-trip exactly (``repr``-based JSON float encoding is
lossless for IEEE doubles), dict key order is preserved.  That property
is what lets checkpoint/restore promise bit-identical estimator and
monitoring answers.

Namespaces are registered before use (:meth:`StateStore.register_namespace`)
with an integer schema version; reading or writing an unregistered
namespace raises :class:`UnknownNamespaceError`, and re-registering a
namespace at a different version raises :class:`NamespaceVersionError` —
the guard that future schema migrations hang off.
"""

from __future__ import annotations

import abc
import json
import sqlite3
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

__all__ = [
    "Namespace",
    "NamespaceVersionError",
    "StateStore",
    "StoreError",
    "UnknownNamespaceError",
    "decode_value",
    "encode_value",
]


class StoreError(RuntimeError):
    """Base class for state-store failures."""


class UnknownNamespaceError(StoreError, KeyError):
    """A namespace was used before being registered.

    Subclasses :class:`KeyError` so callers treating namespaces as a
    mapping keep working.
    """

    def __init__(self, namespace: str) -> None:
        super().__init__(f"namespace {namespace!r} is not registered")
        self.namespace = namespace

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class NamespaceVersionError(StoreError):
    """A namespace was re-registered at an incompatible schema version."""

    def __init__(self, namespace: str, registered: int, requested: int) -> None:
        super().__init__(
            f"namespace {namespace!r} is at schema version {registered}, "
            f"cannot open as version {requested}"
        )
        self.namespace = namespace
        self.registered = registered
        self.requested = requested


@dataclass(frozen=True)
class Namespace:
    """A typed, versioned bucket of keys inside a :class:`StateStore`."""

    name: str
    version: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("namespace name must be non-empty")
        if self.version < 1:
            raise ValueError(f"namespace version must be >= 1, got {self.version}")


def encode_value(value: Any) -> str:
    """Canonical JSON encoding shared by every backend.

    ``sort_keys`` is deliberately off: dict insertion order is part of
    several stores' semantics (e.g. MonALISA series registration order).
    """
    return json.dumps(value, separators=(",", ":"), allow_nan=True)


def decode_value(raw: str) -> Any:
    """Inverse of :func:`encode_value`."""
    return json.loads(raw)


_MISSING = object()


class StateStore(abc.ABC):
    """Namespaced key/value persistence with versioned schemas.

    Keys within a namespace preserve **first-insertion order** — an
    overwrite keeps the key's original position.  This mirrors Python
    dict semantics so in-memory and SQLite backends iterate identically.
    """

    # -- namespace management ------------------------------------------

    @abc.abstractmethod
    def register_namespace(self, namespace: Namespace) -> Namespace:
        """Idempotently register a namespace; version mismatch raises."""

    @abc.abstractmethod
    def namespaces(self) -> List[Namespace]:
        """All registered namespaces, in registration order."""

    def namespace(self, name: str) -> Namespace:
        """One registered namespace by name."""
        for ns in self.namespaces():
            if ns.name == name:
                return ns
        raise UnknownNamespaceError(name)

    # -- key/value ------------------------------------------------------

    @abc.abstractmethod
    def put(self, namespace: str, key: str, value: Any) -> None:
        """Insert or overwrite one value."""

    @abc.abstractmethod
    def put_many(self, namespace: str, items: Iterable[Tuple[str, Any]]) -> int:
        """Batched upsert in one transaction; returns the item count."""

    @abc.abstractmethod
    def get(self, namespace: str, key: str, default: Any = _MISSING) -> Any:
        """One value; *default* when the key is absent, else KeyError."""

    @abc.abstractmethod
    def keys(self, namespace: str) -> List[str]:
        """Keys in first-insertion order."""

    @abc.abstractmethod
    def items(self, namespace: str) -> List[Tuple[str, Any]]:
        """(key, value) pairs in first-insertion order."""

    @abc.abstractmethod
    def delete(self, namespace: str, key: str) -> bool:
        """Remove one key; True when it existed."""

    @abc.abstractmethod
    def clear(self, namespace: str) -> int:
        """Remove every key in the namespace; returns how many."""

    @abc.abstractmethod
    def count(self, namespace: str) -> int:
        """Number of keys in the namespace."""

    def values(self, namespace: str) -> List[Any]:
        return [v for _, v in self.items(namespace)]

    # -- relational escape hatch ---------------------------------------

    @abc.abstractmethod
    def sql_connection(self) -> sqlite3.Connection:
        """A SQLite connection living in the same storage as the store.

        This is how the monitoring :class:`~repro.core.monitoring.db_manager.DBManager`
        keeps its SQL-queryable schema while sharing the store's file (or
        memory) lifetime.
        """

    # -- lifecycle ------------------------------------------------------

    @abc.abstractmethod
    def close(self) -> None:
        """Idempotently release resources."""

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # -- shared helpers for backends -----------------------------------

    @staticmethod
    def _missing() -> Any:
        return _MISSING

    @staticmethod
    def _resolve_default(key: str, default: Any) -> Any:
        if default is _MISSING:
            raise KeyError(key)
        return default


def check_registration(
    registered: Optional[Namespace], requested: Namespace
) -> Optional[Namespace]:
    """Shared register_namespace version check; returns the surviving record."""
    if registered is None:
        return requested
    if registered.version != requested.version:
        raise NamespaceVersionError(requested.name, registered.version, requested.version)
    return registered
