"""In-memory :class:`StateStore` backend.

The default store behind ``build_gae()`` — everything lives in Python
dicts, but values still round-trip through the shared JSON codec so
reads are bit-identical to what a :class:`~repro.store.sqlite.SqliteStore`
would return for the same writes.  ``sql_connection()`` lazily opens an
in-memory SQLite database, which is exactly the pre-refactor behaviour
of the monitoring DBManager's ``":memory:"`` default.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.store.base import (
    Namespace,
    StateStore,
    UnknownNamespaceError,
    check_registration,
    decode_value,
    encode_value,
)

__all__ = ["MemoryStore"]


class MemoryStore(StateStore):
    """Dict-backed store; thread-safe, value-encoded, namespace-checked."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._namespaces: Dict[str, Namespace] = {}
        self._data: Dict[str, Dict[str, str]] = {}
        self._conn: Optional[sqlite3.Connection] = None
        self._closed = False

    # -- namespace management ------------------------------------------

    def register_namespace(self, namespace: Namespace) -> Namespace:
        with self._lock:
            surviving = check_registration(self._namespaces.get(namespace.name), namespace)
            self._namespaces[namespace.name] = surviving
            self._data.setdefault(namespace.name, {})
            return surviving

    def namespaces(self) -> List[Namespace]:
        with self._lock:
            return list(self._namespaces.values())

    def _bucket(self, namespace: str) -> Dict[str, str]:
        try:
            return self._data[namespace]
        except KeyError:
            raise UnknownNamespaceError(namespace) from None

    # -- key/value ------------------------------------------------------

    def put(self, namespace: str, key: str, value: Any) -> None:
        encoded = encode_value(value)
        with self._lock:
            self._bucket(namespace)[key] = encoded

    def put_many(self, namespace: str, items: Iterable[Tuple[str, Any]]) -> int:
        encoded = [(key, encode_value(value)) for key, value in items]
        with self._lock:
            bucket = self._bucket(namespace)
            for key, raw in encoded:
                bucket[key] = raw
        return len(encoded)

    def get(self, namespace: str, key: str, default: Any = StateStore._missing()) -> Any:
        with self._lock:
            bucket = self._bucket(namespace)
            if key not in bucket:
                return self._resolve_default(key, default)
            raw = bucket[key]
        return decode_value(raw)

    def keys(self, namespace: str) -> List[str]:
        with self._lock:
            return list(self._bucket(namespace))

    def items(self, namespace: str) -> List[Tuple[str, Any]]:
        with self._lock:
            pairs = list(self._bucket(namespace).items())
        return [(key, decode_value(raw)) for key, raw in pairs]

    def delete(self, namespace: str, key: str) -> bool:
        with self._lock:
            return self._bucket(namespace).pop(key, None) is not None

    def clear(self, namespace: str) -> int:
        with self._lock:
            bucket = self._bucket(namespace)
            n = len(bucket)
            bucket.clear()
            return n

    def count(self, namespace: str) -> int:
        with self._lock:
            return len(self._bucket(namespace))

    # -- relational escape hatch ---------------------------------------

    def sql_connection(self) -> sqlite3.Connection:
        with self._lock:
            if self._closed:
                raise RuntimeError("store is closed")
            if self._conn is None:
                self._conn = sqlite3.connect(":memory:", check_same_thread=False)
            return self._conn

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryStore(namespaces={len(self._namespaces)})"
