"""SQLite :class:`StateStore` backend.

One file holds every namespace: a ``gae_store`` key/value table (with a
monotonic ``seq`` column so iteration preserves first-insertion order
even across upserts), a ``gae_store_ns`` table recording each
namespace's schema version, and — via :meth:`SqliteStore.sql_connection`
— whatever relational tables the monitoring DBManager creates, so a
checkpoint is a single ordinary SQLite file.

Durability/throughput knobs follow the usual embedded-store recipe:
WAL journaling (readers don't block the writer) and batched upserts
(:meth:`put_many` is one ``executemany`` inside one transaction).
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Dict, Iterable, List, Tuple

from repro.store.base import (
    Namespace,
    StateStore,
    UnknownNamespaceError,
    check_registration,
    decode_value,
    encode_value,
)

__all__ = ["SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS gae_store_ns (
    name        TEXT PRIMARY KEY,
    version     INTEGER NOT NULL,
    description TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS gae_store (
    namespace TEXT NOT NULL,
    key       TEXT NOT NULL,
    value     TEXT NOT NULL,
    seq       INTEGER NOT NULL,
    PRIMARY KEY (namespace, key)
);
CREATE INDEX IF NOT EXISTS idx_gae_store_ns_seq ON gae_store (namespace, seq);
"""

# Upsert that keeps the row's original seq, so first-insertion order
# survives overwrites (dict semantics, matching MemoryStore).
_UPSERT = (
    "INSERT INTO gae_store (namespace, key, value, seq) VALUES (?, ?, ?, ?) "
    "ON CONFLICT (namespace, key) DO UPDATE SET value = excluded.value"
)


class SqliteStore(StateStore):
    """File-backed store; WAL journaling, batched upserts, shared file."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._closed = False
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
            row = self._conn.execute("SELECT COALESCE(MAX(seq), 0) FROM gae_store").fetchone()
            self._seq = int(row[0])
            self._namespaces: Dict[str, Namespace] = {
                name: Namespace(name=name, version=version, description=description)
                for name, version, description in self._conn.execute(
                    "SELECT name, version, description FROM gae_store_ns ORDER BY rowid"
                )
            }

    # -- namespace management ------------------------------------------

    def register_namespace(self, namespace: Namespace) -> Namespace:
        with self._lock:
            surviving = check_registration(self._namespaces.get(namespace.name), namespace)
            if namespace.name not in self._namespaces:
                self._conn.execute(
                    "INSERT INTO gae_store_ns (name, version, description) VALUES (?, ?, ?)",
                    (namespace.name, namespace.version, namespace.description),
                )
                self._conn.commit()
            self._namespaces[namespace.name] = surviving
            return surviving

    def namespaces(self) -> List[Namespace]:
        with self._lock:
            return list(self._namespaces.values())

    def _check(self, namespace: str) -> str:
        if namespace not in self._namespaces:
            raise UnknownNamespaceError(namespace)
        return namespace

    # -- key/value ------------------------------------------------------

    def put(self, namespace: str, key: str, value: Any) -> None:
        encoded = encode_value(value)
        with self._lock:
            self._check(namespace)
            self._seq += 1
            self._conn.execute(_UPSERT, (namespace, key, encoded, self._seq))
            self._conn.commit()

    def put_many(self, namespace: str, items: Iterable[Tuple[str, Any]]) -> int:
        encoded = [(key, encode_value(value)) for key, value in items]
        with self._lock:
            self._check(namespace)
            base = self._seq
            rows = [
                (namespace, key, raw, base + i + 1) for i, (key, raw) in enumerate(encoded)
            ]
            self._seq = base + len(rows)
            self._conn.executemany(_UPSERT, rows)
            self._conn.commit()
        return len(encoded)

    def get(self, namespace: str, key: str, default: Any = StateStore._missing()) -> Any:
        with self._lock:
            self._check(namespace)
            row = self._conn.execute(
                "SELECT value FROM gae_store WHERE namespace = ? AND key = ?",
                (namespace, key),
            ).fetchone()
        if row is None:
            return self._resolve_default(key, default)
        return decode_value(row[0])

    def keys(self, namespace: str) -> List[str]:
        with self._lock:
            self._check(namespace)
            return [
                key
                for (key,) in self._conn.execute(
                    "SELECT key FROM gae_store WHERE namespace = ? ORDER BY seq", (namespace,)
                )
            ]

    def items(self, namespace: str) -> List[Tuple[str, Any]]:
        with self._lock:
            self._check(namespace)
            rows = self._conn.execute(
                "SELECT key, value FROM gae_store WHERE namespace = ? ORDER BY seq",
                (namespace,),
            ).fetchall()
        return [(key, decode_value(raw)) for key, raw in rows]

    def delete(self, namespace: str, key: str) -> bool:
        with self._lock:
            self._check(namespace)
            cur = self._conn.execute(
                "DELETE FROM gae_store WHERE namespace = ? AND key = ?", (namespace, key)
            )
            self._conn.commit()
            return cur.rowcount > 0

    def clear(self, namespace: str) -> int:
        with self._lock:
            self._check(namespace)
            cur = self._conn.execute(
                "DELETE FROM gae_store WHERE namespace = ?", (namespace,)
            )
            self._conn.commit()
            return cur.rowcount

    def count(self, namespace: str) -> int:
        with self._lock:
            self._check(namespace)
            row = self._conn.execute(
                "SELECT COUNT(*) FROM gae_store WHERE namespace = ?", (namespace,)
            ).fetchone()
            return int(row[0])

    # -- relational escape hatch ---------------------------------------

    def sql_connection(self) -> sqlite3.Connection:
        with self._lock:
            if self._closed:
                raise RuntimeError("store is closed")
            return self._conn

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteStore(path={self.path!r}, namespaces={len(self._namespaces)})"
