"""Command-line interface: regenerate experiments and demos from a shell.

Installed as ``gae-repro`` (or run as ``python -m repro.cli``)::

    gae-repro figure5 [--seed 1995] [--history 100] [--tests 20]
    gae-repro figure7 [--poll 20] [--load 1.5] [--checkpoint]
    gae-repro figure6 [--clients 1 2 5 25] [--calls 10]
    gae-repro trace TASK_ID [--export gae_trace_export.jsonl]
    gae-repro trace --n 200 [--seed 1995] [--out trace.csv]
    gae-repro stats [--calls 5]
    gae-repro bench [--quick] [--out BENCH_estimators.json]
    gae-repro demo [--trace-export gae_trace_export.jsonl]
    gae-repro checkpoint [--out gae_checkpoint.sqlite] [--at 205]
    gae-repro restore gae_checkpoint.sqlite [--inspect]
    gae-repro journal tail [TASK_ID] [--n 20] [--checkpoint PATH]
    gae-repro journal replay [CONSUMER ...] [--until 600]
    gae-repro scenario list
    gae-repro scenario run [NAME ...] [--quick] [--out SCENARIOS.json]
    gae-repro scenario validate [NAME ...] [--report SCENARIOS.json]
    gae-repro health [--scenario NAME] [--quick] [--export telemetry.jsonl]

Each figure command prints the same series, chart and paper-vs-measured
summary as the corresponding ``benchmarks/bench_fig*.py`` module.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.figures import FigureData
from repro.analysis.metrics import summarize_errors
from repro.analysis.report import markdown_table


def _cmd_figure5(args: argparse.Namespace) -> int:
    from repro.core.estimators.runtime import RuntimeEstimator

    if args.swf:
        # The real SDSC Paragon trace (Parallel Workloads Archive, SWF).
        from repro.workloads.swf import read_swf, swf_history_and_tests

        jobs = read_swf(args.swf, limit=args.history + 40 * args.tests)
        history, swf_tests = swf_history_and_tests(
            jobs, n_history=args.history, n_tests=args.tests
        )
        actuals = [t.run_time for t in swf_tests]
        specs = [t.to_task().spec for t in swf_tests]
    else:
        from repro.workloads.downey import DowneyWorkloadGenerator

        gen = DowneyWorkloadGenerator(seed=args.seed)
        history, tests = gen.history_and_tests(args.history, args.tests)
        actuals = [t.runtime_s for t in tests]
        specs = [t.to_task_spec() for t in tests]
    estimator = RuntimeEstimator(history)
    estimates = [estimator.estimate(spec).value for spec in specs]
    summary = summarize_errors(actuals, estimates)

    cases = list(range(1, len(actuals) + 1))
    figure = (
        FigureData(
            title="Figure 5: Actual & Estimated Runtimes",
            x_label="Jobs", y_label="Job Runtime (seconds)",
        )
        .add("Actual Runtime", cases, actuals)
        .add("Estimated Runtime", cases, estimates)
    )
    print(figure.render())
    print(markdown_table(
        ["quantity", "paper", "measured"],
        [
            ["mean |% error|", 13.53, round(summary.mean_abs_pct, 2)],
            ["mean signed % error", "n/a", round(summary.mean_signed_pct, 2)],
            ["cases within ±25%", "n/a", f"{summary.within_25_pct * 100:.0f}%"],
        ],
    ))
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    from repro.core.estimators.history import HistoryRepository
    from repro.core.steering.optimizer import SteeringPolicy
    from repro.gae import build_gae
    from repro.gridsim import GridBuilder, Job
    from repro.workloads.generators import (
        PRIME_JOB_FREE_CPU_SECONDS,
        make_prime_count_task,
        prime_job_history_records,
    )

    grid = (
        GridBuilder(seed=args.seed)
        .site("siteA", background_load=args.load)
        .site("siteB", background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )
    history = HistoryRepository(prime_job_history_records(n=10, sigma=0.01))
    policy = SteeringPolicy(
        poll_interval_s=args.poll, min_elapsed_wall_s=max(args.poll * 2, 40.0),
        slow_rate_threshold=0.8, min_improvement_factor=1.2,
    )
    gae = build_gae(grid, policy=policy, history=history)

    task = make_prime_count_task(owner="cli", checkpointable=args.checkpoint)
    shadow = make_prime_count_task(owner="cli")
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    gae.scheduler.submit_job(Job(tasks=[task], owner="cli"))
    gae.scheduler.select_site = original
    gae.grid.execution_services["siteA"].submit_task(shadow)
    gae.start()

    es = gae.grid.execution_services
    curve_a, curve_b = [], []
    t = 0.0
    while t <= 900.0:
        gae.grid.run_until(t)
        curve_a.append((t, es["siteA"].pool.status(shadow.task_id).progress * 100))
        site = "siteB" if es["siteB"].pool.has_task(task.task_id) else "siteA"
        curve_b.append((t, es[site].pool.status(task.task_id).progress * 100))
        t += 20.0
    gae.grid.run_until(4000.0)
    gae.stop()

    steered_pool = "siteB" if es["siteB"].pool.has_task(task.task_id) else "siteA"
    steered_end = es[steered_pool].pool.ad(task.task_id).end_time
    shadow_end = es["siteA"].pool.ad(shadow.task_id).end_time
    figure = (
        FigureData(
            title="Figure 7: Job Completion at different sites",
            x_label="Elapsed time (s)", y_label="Job progress (%)",
        )
        .add("job at site A (not steered)", *zip(*curve_a))
        .add("steered job", *zip(*curve_b))
    )
    print(figure.render())
    print(markdown_table(
        ["quantity", "paper", "measured"],
        [
            ["free-CPU estimate (s)", 283, PRIME_JOB_FREE_CPU_SECONDS],
            ["steered completion (s)", "~369", round(steered_end, 1)],
            ["stay-at-A completion (s)", "off chart", round(shadow_end, 1)],
        ],
    ))
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    from repro.analysis.latency import build_served_monitoring, measure_mean_latency_ms
    from repro.clarens.server import XmlRpcServerHandle

    gae, task_ids = build_served_monitoring()
    rows = []
    xs, ys = [], []
    with XmlRpcServerHandle(gae.host) as handle:
        for n in args.clients:
            ms = measure_mean_latency_ms(handle.url, task_ids, n, calls_per_client=args.calls)
            rows.append([n, round(ms, 2)])
            xs.append(n)
            ys.append(ms)
    figure = FigureData(
        title="Figure 6: Response times for queries to Job Monitoring Service",
        x_label="Number of parallel clients", y_label="Response time (ms)",
    ).add("Average Response Time", xs, ys)
    print(figure.render())
    print(markdown_table(["parallel clients", "mean latency (ms)"], rows))
    return 0


def _trace_from_export(task_id: str, path: str) -> int:
    """Print one job's span tree and timeline from a JSONL trace export."""
    from repro.observability import load_export, render_span_tree

    try:
        data = load_export(path)
    except FileNotFoundError:
        print(
            f"error: no trace export at {path!r}; run `gae-repro demo` first "
            f"or point --export at one",
            file=sys.stderr,
        )
        return 1
    events = [e for e in data["event"] if e.get("task_id") == task_id]
    trace_id = next((e["trace_id"] for e in events if e.get("trace_id")), None)
    if trace_id is None:
        trace_id = next(
            (s["trace_id"] for s in data["span"] if s["name"] == f"task:{task_id}"),
            None,
        )
    if trace_id is None:
        known = sorted({e["task_id"] for e in data["event"] if e.get("task_id")})
        hint = f" (export has: {', '.join(known)})" if known else ""
        print(f"error: task {task_id!r} not found in {path}{hint}", file=sys.stderr)
        return 1
    spans = [s for s in data["span"] if s["trace_id"] == trace_id]
    print(f"trace {trace_id} — {len(spans)} spans from {path}")
    print(render_span_tree(spans))
    print()
    rows = [
        [f"{e['time']:.1f}", e["type"], e.get("site") or "-", e.get("span_id") or "-"]
        for e in sorted(events, key=lambda e: (e["time"], e["seq"]))
    ]
    print(markdown_table(["t (s)", "event", "site", "span"], rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.task_id:
        return _trace_from_export(args.task_id, args.export)
    if args.n is None:
        print(
            "error: give a task id (lifecycle trace from an export) or "
            "--n (synthetic accounting trace)",
            file=sys.stderr,
        )
        return 2

    from repro.workloads.downey import DowneyWorkloadGenerator
    from repro.workloads.traces import write_trace_csv

    gen = DowneyWorkloadGenerator(seed=args.seed)
    records = gen.generate(args.n)
    text = write_trace_csv(records, args.out)
    if args.out:
        print(f"wrote {len(records)} accounting records to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Drive a small GAE, then print the host's call-pipeline telemetry."""
    from repro.gae import build_gae
    from repro.gridsim import GridBuilder, Job
    from repro.workloads.generators import make_prime_count_task

    grid = (
        GridBuilder(seed=args.seed)
        .site("siteA", nodes=2, background_load=0.5)
        .site("siteB", nodes=2, background_load=0.0)
        .build()
    )
    gae = build_gae(grid)
    gae.add_user("demo", "demo")
    gae.start()
    task = make_prime_count_task(owner="demo")
    gae.scheduler.submit_job(Job(tasks=[task], owner="demo"))

    with gae.client("demo", "demo") as client:
        trace = client.new_trace()
        jobmon = client.service("jobmon")
        for i in range(args.calls):
            gae.grid.run_until(60.0 * (i + 1))
            jobmon.job_info(task.task_id)
            client.batch([("monalisa.grid_weather",), ("system.ping",)])
        stats = client.call("system.stats")
        recent = client.call("system.recent_calls", 200, trace)
    gae.stop()

    rows = []
    for method in sorted(stats["latency_ms"]):
        s = stats["latency_ms"][method]
        rows.append([
            method, s["count"], s["faults"],
            round(s.get("mean_ms", 0.0), 3), round(s.get("p50_ms", 0.0), 3),
            round(s.get("p95_ms", 0.0), 3), round(s.get("p99_ms", 0.0), 3),
        ])
    print(markdown_table(
        ["method", "calls", "faults", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        rows,
    ))
    print(f"total calls: {stats['calls']}  faults: {stats['faults']}")
    print(f"trace {trace}: {len(recent)} calls in the recent-calls ring")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run (or validate) the estimator hot-path benchmark harness."""
    from repro.analysis.bench import run_bench, validate_report_file

    if args.validate:
        validate_report_file(args.validate)
        print(f"{args.validate}: schema ok")
        return 0
    run_bench(
        quick=args.quick,
        seed=args.seed,
        out=None if args.out == "-" else args.out,
        history_scales=args.history_scales,
        queue_scales=args.queue_scales,
    )
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Run (or validate) the closed-loop RPC read-path load harness."""
    from repro.analysis.load import run_loadtest, validate_loadtest_file

    if args.validate:
        validate_loadtest_file(args.validate)
        print(f"{args.validate}: schema ok")
        return 0
    run_loadtest(
        quick=args.quick,
        seed=args.seed,
        out=None if args.out == "-" else args.out,
        n_tasks=args.n_tasks,
        workers=args.workers,
        calls_per_worker=args.calls_per_worker,
    )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    """A steered job's whole life, exported as one trace.

    siteA has a single slot kept busy by a filler task, so the demo job
    flocks to siteB; it is then paused, resumed, and moved back to siteA
    via Clarens steering calls, runs to completion, and the full
    span/journal store is exported as JSONL for ``gae-repro trace``.
    """
    from repro import GridBuilder, Job, build_gae, make_prime_count_task
    from repro.core.steering.optimizer import SteeringPolicy
    from repro.observability import export_observability

    grid = (
        GridBuilder(seed=args.seed)
        .site("siteA", nodes=1, background_load=0.0)
        .site("siteB", nodes=2, background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=622.0, latency_s=0.05)
        .flock("siteA", "siteB")
        .probe_noise(0.0)
        .build()
    )
    # Manual steering only: the demo narrates its own pause/resume/move.
    gae = build_gae(grid, policy=SteeringPolicy(auto_move=False))
    gae.add_user("demo", "demo")
    gae.start()

    filler = make_prime_count_task(owner="demo", work_seconds=240.0)
    gae.grid.execution_services["siteA"].submit_task(filler)
    task = make_prime_count_task(owner="demo", checkpointable=True)
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    plan = gae.scheduler.submit_job(Job(tasks=[task], owner="demo"))
    gae.scheduler.select_site = original
    print(f"scheduled {task.task_id} on {plan.site_for(task.task_id)} "
          f"(flocks to siteB while the filler occupies siteA)")

    client = gae.client("demo", "demo")
    jobmon = client.service("jobmon")
    steering = client.service("steering")

    def show(t: float) -> None:
        gae.grid.run_until(t)
        info = jobmon.job_info(task.task_id)
        print(f"t={t:5.0f}s {info['status']:<10} {info['progress'] * 100:5.1f}% "
              f"at {info['site'] or '-'}")

    show(60.0)
    steering.pause(task.task_id)
    print("steering.pause issued")
    show(120.0)
    steering.resume(task.task_id)
    print("steering.resume issued")
    show(250.0)  # the filler finished at t=240, freeing siteA's slot
    steering.move(task.task_id, "siteA")
    print("steering.move to siteA issued")
    show(900.0)
    gae.stop()

    out_path = args.trace_export
    rows = export_observability(
        out_path, gae.observability.tracer, gae.observability.journal,
        sim_now=gae.sim.now,
    )
    print(f"exported {rows} observability rows to {out_path}")
    print(f"inspect with: gae-repro trace {task.task_id} --export {out_path}")
    return 0


def checkpoint_demo_workload(seed: int = 11, tasks: int = 6):
    """A deterministic two-site GAE with an in-flight bag-of-tasks job.

    Shared by ``gae-repro checkpoint``/``restore`` and the recovery smoke
    test: a mixed-length workload that is part-completed, part-running,
    part-queued around t≈200 s, so a checkpoint taken there captures every
    interesting task state.  Returns ``(gae, job)``.
    """
    from repro.gae import build_gae
    from repro.gridsim import GridBuilder
    from repro.gridsim.job import TaskSpec, bag_of_tasks

    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=2, background_load=0.3)
        .site("siteB", nodes=2, background_load=1.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .file("input.dat", size_mb=50.0, at="siteA")
        .build()
    )
    gae = build_gae(grid, monitor_snapshot_period_s=20.0).start()
    gae.add_user("demo", "demo")
    works = [120.0 + 60.0 * (i % 7) for i in range(tasks)]
    specs = [TaskSpec(owner="demo", input_files=("input.dat",)) for _ in works]
    job = bag_of_tasks(specs, works, owner="demo")
    gae.scheduler.submit_job(job)
    return gae, job


def _task_state_rows(job) -> List[List[str]]:
    return [[t.task_id, t.state.value] for t in job.tasks]


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Run the demo workload and checkpoint it mid-flight."""
    from repro.store.checkpoint import Checkpointer

    gae, job = checkpoint_demo_workload(seed=args.seed, tasks=args.tasks)
    ckpt = Checkpointer(gae)
    ckpt.checkpoint_at(args.at, args.out)
    gae.sim.run_until(args.at)
    info = ckpt.last_info
    if info is None:
        print("error: checkpoint event never fired", file=sys.stderr)
        return 1
    print(f"checkpointed {info.jobs} job(s) / {info.tasks} task(s) "
          f"at t={info.time:.1f}s -> {info.path}")
    print(markdown_table(["task", "state"], _task_state_rows(job)))
    print(f"resume with: gae-repro restore {info.path}")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    """Restore a checkpoint and (unless --inspect) resume to completion."""
    from repro.store import CheckpointError, restore_gae

    try:
        gae = restore_gae(args.path)
    except (CheckpointError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    jobs = gae.scheduler.jobs()
    print(f"restored {len(jobs)} job(s) at t={gae.sim.now:.1f}s from {args.path}")
    for job in jobs:
        print(markdown_table(["task", "state"], _task_state_rows(job)))
    if args.inspect:
        return 0
    gae.sim.run_until(gae.sim.now + args.horizon)
    gae.stop()
    gae.sim.run()
    print(f"resumed to t={gae.sim.now:.1f}s")
    for job in jobs:
        print(markdown_table(["task", "state"], _task_state_rows(job)))
    return 0


def _journal_workload(args: argparse.Namespace):
    """Run the deterministic demo workload to the inspection horizon."""
    gae, job = checkpoint_demo_workload(seed=args.seed, tasks=args.tasks)
    gae.sim.run_until(args.until)
    return gae, job


def _cmd_journal_tail(args: argparse.Namespace) -> int:
    """Print the last N journal events (optionally for one task).

    Reads the journal from a checkpoint file when ``--checkpoint`` is
    given; otherwise runs the deterministic demo workload and tails its
    live journal.
    """
    if args.checkpoint:
        from repro.observability.journal import EventJournal
        from repro.store.sqlite import SqliteStore

        journal = EventJournal(clock=lambda: 0.0)
        try:
            with SqliteStore(args.checkpoint) as store:
                journal.load_from(store)
        except Exception as exc:  # unreadable file or missing namespace
            print(f"error: cannot read journal from {args.checkpoint!r}: {exc}",
                  file=sys.stderr)
            return 1
        source = args.checkpoint
    else:
        gae, _job = _journal_workload(args)
        journal = gae.observability.journal
        source = f"demo workload at t={gae.sim.now:.0f}s"

    events = journal.events()
    if args.task_id:
        events = [e for e in events if e.task_id == args.task_id]
        if not events:
            known = sorted({e.task_id for e in journal.events() if e.task_id})
            hint = f" (journal has: {', '.join(known[:12])})" if known else ""
            print(f"error: no events for task {args.task_id!r}{hint}",
                  file=sys.stderr)
            return 1
    from repro.observability.journal import JOURNAL_SCHEMA_VERSION

    tail = events[-args.n:]
    print(f"{len(tail)} of {len(events)} event(s) from {source} "
          f"(journal schema {JOURNAL_SCHEMA_VERSION}, "
          f"head seq {journal.head_seq})")
    print(markdown_table(
        ["seq", "t (s)", "event", "task", "site", "attributes"],
        [
            [
                e.seq, f"{e.time:.1f}", e.type.value, e.task_id or "-",
                e.site or "-",
                ", ".join(f"{k}={v}" for k, v in sorted(e.attributes.items())) or "-",
            ]
            for e in tail
        ],
    ))
    return 0


def _cmd_journal_replay(args: argparse.Namespace) -> int:
    """Rebuild consumers from the journal and compare with live state.

    Runs the deterministic demo workload, then folds each named
    consumer's events back out of the journal and checks the rebuilt
    state is bit-identical to the live fold.  Exits non-zero on any
    divergence — the event-sourced core's invariant is broken.
    """
    gae, _job = _journal_workload(args)
    core = gae.observability.eventcore
    names = args.consumers or list(core.consumers)
    unknown = [n for n in names if n not in core.consumers]
    if unknown:
        print(f"error: unknown consumer(s) {', '.join(unknown)} "
              f"(registered: {', '.join(core.consumers)})", file=sys.stderr)
        return 2
    journal = gae.observability.journal
    reports = [core.consumers[name].verify(journal) for name in names]
    print(f"journal head seq {journal.head_seq}, "
          f"{len(journal.events())} retained event(s)")
    print(markdown_table(
        ["consumer", "cursor", "baseline", "folded", "covered", "verdict"],
        [
            [
                r["consumer"], r["cursor"], r["baseline_seq"],
                r["events_applied"], "yes" if r["covered"] else "NO",
                "identical" if r["identical"] else "DIVERGED",
            ]
            for r in reports
        ],
    ))
    diverged = [r["consumer"] for r in reports if not r["identical"]]
    if diverged:
        print(f"DIVERGED: {', '.join(diverged)} — rebuilt state does not "
              f"match the live fold", file=sys.stderr)
        return 1
    print("all rebuilt consumers identical to live state")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import write_report

    text = write_report(
        path=args.out, include_figure6=args.with_figure6, seed=args.seed
    )
    if args.out:
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def _resolve_scenarios(names: List[str], seed: Optional[int]):
    """Load scenarios by registry name or path, with optional seed override."""
    from repro.scenarios.registry import load_all, load_scenario
    from repro.scenarios.spec import ScenarioSpec

    specs = [load_scenario(name) for name in names] if names else load_all()
    if seed is not None:
        specs = [
            ScenarioSpec.from_dict({**spec.to_dict(), "seed": seed})
            for spec in specs
        ]
    return specs


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    """Run named scenarios and write the SCENARIOS.json verdict artifact."""
    from repro.scenarios.engine import run_campaign, write_scenarios_report
    from repro.scenarios.spec import ScenarioError

    try:
        specs = _resolve_scenarios(args.names, args.seed)
        if not specs:
            print("error: no scenarios registered under scenarios/", file=sys.stderr)
            return 2
        report = run_campaign(specs, quick=args.quick, echo=print)
    except (ScenarioError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = []
    for entry in report["scenarios"]:
        for verdict in entry["slos"]:
            rows.append([
                entry["name"], verdict["slo"],
                round(verdict["value"], 2), verdict["samples"],
                "PASS" if verdict["passed"] else "FAIL",
            ])
    print(markdown_table(["scenario", "SLO", "value", "samples", "verdict"], rows))
    if args.out != "-":
        path = write_scenarios_report(report, args.out)
        print(f"wrote {path}")
    print(f"campaign: {'PASS' if report['passed'] else 'FAIL'}")
    return 0 if report["passed"] else 1


def _cmd_health(args: argparse.Namespace) -> int:
    """Run one scenario and report its health rules, live and over time.

    Watches a campaign through the health engine: runs the scenario with
    its committed (or default) rules, prints every ok→firing→resolved
    transition plus the final per-rule state, and optionally exports the
    windowed telemetry as schema-validated JSONL (``--export``).
    Exits non-zero when any rule is still firing at the horizon.
    """
    import json

    from repro.scenarios.engine import run_scenario
    from repro.scenarios.spec import ScenarioError

    captured = {}

    def on_complete(gae, entry):
        captured["snapshot"] = gae.observability.health_snapshot()
        if args.export:
            captured["rows"] = gae.observability.telemetry.export_jsonl(args.export)

    try:
        specs = _resolve_scenarios([args.scenario], args.seed)
        entry = run_scenario(specs[0], quick=args.quick, on_complete=on_complete)
    except (ScenarioError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    snapshot = captured["snapshot"]
    firing = [r["name"] for r in snapshot["rules"] if r["state"] == "firing"]
    if args.json:
        print(json.dumps(
            {"scenario": entry["name"], "seed": entry["seed"],
             "quick": entry["quick"], "health": entry["health"],
             "snapshot": snapshot},
            indent=2, sort_keys=True,
        ))
    else:
        print(f"scenario {entry['name']} (seed {entry['seed']}, "
              f"quick={entry['quick']}): "
              f"{snapshot['windows_closed']} windows of "
              f"{snapshot['window_s']:.1f}s closed")
        print(markdown_table(
            ["rule", "kind", "severity", "state", "value", "evaluations"],
            [
                [
                    r["name"], r["kind"], r["severity"], r["state"],
                    "-" if r["value"] is None else round(r["value"], 3),
                    r["evaluations"],
                ]
                for r in snapshot["rules"]
            ],
        ))
        transitions = entry["health"]["transitions"]
        if transitions:
            print(markdown_table(
                ["t (s)", "rule", "to", "value"],
                [
                    [
                        round(t["time_s"], 1), t["rule"], t["to"],
                        "-" if t["value"] is None else round(t["value"], 3),
                    ]
                    for t in transitions
                ],
            ))
        else:
            print("no health transitions (every rule stayed ok)")
        print(f"firing at horizon: {', '.join(firing) or 'none'}")
    if args.export:
        # stderr so --json stdout stays a single parseable document
        print(f"exported {captured['rows']} telemetry rows to {args.export}",
              file=sys.stderr)
    return 1 if firing else 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    """List the registered scenario library."""
    from repro.scenarios.registry import load_all

    specs = load_all()
    if not specs:
        print("no scenarios registered under scenarios/")
        return 0
    rows = [
        [
            spec.name, spec.workload.shape,
            ", ".join(dict.fromkeys(a.kind for a in spec.chaos)) or "none",
            len(spec.slos), ", ".join(spec.tags) or "-",
        ]
        for spec in specs
    ]
    print(markdown_table(["scenario", "workload", "chaos", "SLOs", "tags"], rows))
    return 0


def _cmd_scenario_validate(args: argparse.Namespace) -> int:
    """Validate scenario files and/or a SCENARIOS.json report schema."""
    from repro.scenarios.engine import ScenarioReportError, validate_scenarios_file
    from repro.scenarios.spec import ScenarioError

    status = 0
    if args.report:
        try:
            validate_scenarios_file(args.report)
            print(f"{args.report}: schema ok")
        except ScenarioReportError as exc:
            print(f"{args.report}: INVALID — {exc}", file=sys.stderr)
            status = 1
    if args.names or not args.report:
        try:
            specs = _resolve_scenarios(args.names, seed=None)
        except (ScenarioError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for spec in specs:
            slos = len(spec.slos)
            print(f"{spec.name}: ok ({spec.workload.shape} workload, "
                  f"{len(spec.chaos)} chaos action(s), {slos} SLO(s))")
    return status


def build_parser() -> argparse.ArgumentParser:
    """The ``gae-repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="gae-repro",
        description="Reproduce the GAE resource-management experiments (ICPP 2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p5 = sub.add_parser("figure5", help="runtime-estimator accuracy (Figure 5)")
    p5.add_argument("--seed", type=int, default=1995)
    p5.add_argument("--history", type=int, default=100)
    p5.add_argument("--tests", type=int, default=20)
    p5.add_argument(
        "--swf", type=str, default=None,
        help="run on a real SWF trace file (e.g. SDSC-Par-1995 from the "
             "Parallel Workloads Archive) instead of the synthetic workload",
    )
    p5.set_defaults(func=_cmd_figure5)

    p7 = sub.add_parser("figure7", help="steering experiment (Figure 7)")
    p7.add_argument("--seed", type=int, default=2005)
    p7.add_argument("--poll", type=float, default=20.0, help="steering poll interval (s)")
    p7.add_argument("--load", type=float, default=1.5, help="site A background load")
    p7.add_argument("--checkpoint", action="store_true", help="checkpointable job")
    p7.set_defaults(func=_cmd_figure7)

    p6 = sub.add_parser("figure6", help="monitoring latency under concurrency (Figure 6)")
    p6.add_argument("--clients", type=int, nargs="+", default=[1, 2, 3, 5, 25, 50, 100])
    p6.add_argument("--calls", type=int, default=10)
    p6.set_defaults(func=_cmd_figure6)

    pt = sub.add_parser(
        "trace",
        help="print a job's span tree from a demo export, or generate a "
             "synthetic Paragon accounting trace (--n)",
    )
    pt.add_argument("task_id", type=str, nargs="?", default=None,
                    help="task to trace from a JSONL observability export")
    pt.add_argument("--export", type=str, default="gae_trace_export.jsonl",
                    metavar="PATH", help="observability export to read")
    pt.add_argument("--n", type=int, default=None,
                    help="emit this many synthetic accounting records instead")
    pt.add_argument("--seed", type=int, default=1995)
    pt.add_argument("--out", type=str, default=None)
    pt.set_defaults(func=_cmd_trace)

    pst = sub.add_parser(
        "stats", help="per-method call latency (p50/p95/p99) of a driven GAE host"
    )
    pst.add_argument("--seed", type=int, default=7)
    pst.add_argument("--calls", type=int, default=5,
                     help="monitoring queries to issue before reading stats")
    pst.set_defaults(func=_cmd_stats)

    pb = sub.add_parser(
        "bench",
        help="estimator hot-path benchmarks (indexed vs naive), written as JSON",
    )
    pb.add_argument("--quick", action="store_true", help="small CI-sized run")
    pb.add_argument("--seed", type=int, default=1995)
    pb.add_argument("--out", type=str, default="BENCH_estimators.json",
                    help="report path ('-' to skip writing)")
    pb.add_argument("--history-scales", type=int, nargs="+", default=None)
    pb.add_argument("--queue-scales", type=int, nargs="+", default=None)
    pb.add_argument("--validate", type=str, default=None, metavar="PATH",
                    help="validate an existing report's schema instead of running")
    pb.set_defaults(func=_cmd_bench)

    pl = sub.add_parser(
        "loadtest",
        help="closed-loop RPC read-path load harness (cached vs uncached)",
    )
    pl.add_argument("--quick", action="store_true", help="small CI-sized run")
    pl.add_argument("--seed", type=int, default=1995)
    pl.add_argument("--out", type=str, default="LOAD_readpath.json",
                    help="report path ('-' to skip writing)")
    pl.add_argument("--tasks", type=int, default=None, dest="n_tasks",
                    help="jobs held live on the rig (default 10000, quick 2000)")
    pl.add_argument("--workers", type=int, default=None,
                    help="closed-loop worker threads (default 8, quick 4)")
    pl.add_argument("--calls-per-worker", type=int, default=None,
                    help="schedule length per worker (default 1500, quick 250)")
    pl.add_argument("--validate", type=str, default=None, metavar="PATH",
                    help="validate an existing report's schema instead of running")
    pl.set_defaults(func=_cmd_loadtest)

    pd = sub.add_parser(
        "demo", help="end-to-end GAE demo: flock, pause, move, trace export"
    )
    pd.add_argument("--seed", type=int, default=42)
    pd.add_argument("--trace-export", type=str, default="gae_trace_export.jsonl",
                    metavar="PATH", help="where to write the JSONL trace export")
    pd.set_defaults(func=_cmd_demo)

    pc = sub.add_parser(
        "checkpoint",
        help="run the demo workload and write a mid-flight checkpoint file",
    )
    pc.add_argument("--out", type=str, default="gae_checkpoint.sqlite",
                    metavar="PATH", help="checkpoint file to write")
    pc.add_argument("--seed", type=int, default=11)
    pc.add_argument("--tasks", type=int, default=6)
    pc.add_argument("--at", type=float, default=205.0,
                    help="simulated time of the checkpoint barrier (s)")
    pc.set_defaults(func=_cmd_checkpoint)

    pre = sub.add_parser(
        "restore", help="restore a checkpoint and resume the workload"
    )
    pre.add_argument("path", type=str, help="checkpoint file written by `checkpoint`")
    pre.add_argument("--horizon", type=float, default=20000.0,
                     help="how much further simulated time to run (s)")
    pre.add_argument("--inspect", action="store_true",
                     help="print the restored state without resuming")
    pre.set_defaults(func=_cmd_restore)

    pj = sub.add_parser(
        "journal",
        help="inspect the event journal and verify replayable consumers",
    )
    jsub = pj.add_subparsers(dest="journal_command", required=True)

    pjt = jsub.add_parser(
        "tail", help="print the last N journal events (optionally one task's)"
    )
    pjt.add_argument("task_id", type=str, nargs="?", default=None,
                     help="only this task's events")
    pjt.add_argument("--n", type=int, default=20,
                     help="how many trailing events to show")
    pjt.add_argument("--checkpoint", type=str, default=None, metavar="PATH",
                     help="read the journal from this checkpoint file instead "
                          "of running the demo workload")
    pjt.add_argument("--seed", type=int, default=11)
    pjt.add_argument("--tasks", type=int, default=6)
    pjt.add_argument("--until", type=float, default=600.0,
                     help="demo-workload horizon (s) when no --checkpoint")
    pjt.set_defaults(func=_cmd_journal_tail)

    pjr = jsub.add_parser(
        "replay",
        help="rebuild consumers from the journal and diff against live state "
             "(non-zero exit on divergence)",
    )
    pjr.add_argument("consumers", type=str, nargs="*",
                     help="consumer names (default: every registered consumer)")
    pjr.add_argument("--seed", type=int, default=11)
    pjr.add_argument("--tasks", type=int, default=6)
    pjr.add_argument("--until", type=float, default=600.0,
                     help="demo-workload horizon (s)")
    pjr.set_defaults(func=_cmd_journal_replay)

    ps = sub.add_parser(
        "scenario",
        help="declarative chaos campaigns scored against SLOs (run/list/validate)",
    )
    ssub = ps.add_subparsers(dest="scenario_command", required=True)

    psr = ssub.add_parser(
        "run", help="run scenarios and write the SCENARIOS.json verdict artifact"
    )
    psr.add_argument("names", type=str, nargs="*",
                     help="scenario names (from scenarios/) or JSON file paths; "
                          "default: every registered scenario")
    psr.add_argument("--quick", action="store_true",
                     help="apply each scenario's quick overrides (CI-sized run)")
    psr.add_argument("--seed", type=int, default=None,
                     help="override every scenario's seed")
    psr.add_argument("--out", type=str, default="SCENARIOS.json",
                     help="report path ('-' to skip writing)")
    psr.set_defaults(func=_cmd_scenario_run)

    psl = ssub.add_parser("list", help="list the registered scenario library")
    psl.set_defaults(func=_cmd_scenario_list)

    psv = ssub.add_parser(
        "validate",
        help="validate scenario files and/or a SCENARIOS.json report schema",
    )
    psv.add_argument("names", type=str, nargs="*",
                     help="scenario names or JSON file paths; default: all registered")
    psv.add_argument("--report", type=str, default=None, metavar="PATH",
                     help="also validate an existing SCENARIOS.json against its schema")
    psv.set_defaults(func=_cmd_scenario_validate)

    ph = sub.add_parser(
        "health",
        help="run a scenario and report its health-rule transitions and "
             "final states (optionally exporting windowed telemetry)",
    )
    ph.add_argument("--scenario", type=str, default="site-outage-recovery",
                    help="scenario name (from scenarios/) or JSON file path")
    ph.add_argument("--quick", action="store_true",
                    help="apply the scenario's quick overrides (CI-sized run)")
    ph.add_argument("--seed", type=int, default=None,
                    help="override the scenario's seed")
    ph.add_argument("--export", type=str, default=None, metavar="PATH",
                    help="write the windowed telemetry as JSONL "
                         "(docs/schemas/telemetry_export.schema.json)")
    ph.add_argument("--json", action="store_true",
                    help="emit the health record as JSON instead of tables")
    ph.set_defaults(func=_cmd_health)

    pr = sub.add_parser("report", help="regenerate the experiment report (markdown)")
    pr.add_argument("--out", type=str, default=None, help="write to this file")
    pr.add_argument("--seed", type=int, default=1995)
    pr.add_argument("--with-figure6", action="store_true",
                    help="include the (slow, hardware-dependent) latency sweep")
    pr.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
