"""The Grid Analysis Environment: full wiring of every component.

:func:`build_gae` assembles the complete system of the paper's Figure 1
over a simulated grid:

- the :class:`~repro.gridsim.grid.Grid` substrate (sites, network, replica
  catalog, Sphinx-like scheduler),
- the MonALISA repository with periodic site-load publication,
- the Estimator Service, installed at every site (§6.1) and recording
  at-submission estimates (§6.2),
- the Job Monitoring Service attached to every execution service (§5),
- the Quota & Accounting Service (§4.2.2),
- the Steering Service with its autonomous loop and Backup & Recovery
  (§4), subscribed to the scheduler's concrete job plans, and
- a :class:`~repro.clarens.server.ClarensHost` hosting all of them, with
  the simulator as its clock.

>>> from repro.gridsim import GridBuilder
>>> from repro.gae import build_gae
>>> gae = build_gae(GridBuilder(seed=1).site("a").site("b").build())
>>> sorted(gae.host.registry.names())
['accounting', 'estimator', 'jobmon', 'monalisa', 'steering', 'system']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.accounting.service import QuotaAccountingService
from repro.clarens.acl import AccessControlList
from repro.clarens.client import ClarensClient
from repro.clarens.readcache import wire_epochs
from repro.clarens.server import ClarensHost
from repro.clarens.transport import LoopbackTransport
from repro.core.estimators.history import HistoryRecorder, HistoryRepository
from repro.core.estimators.service import EstimatorService
from repro.core.monitoring.service import JobMonitoringService
from repro.core.steering.optimizer import SteeringPolicy
from repro.core.steering.service import SteeringService
from repro.gridsim.grid import Grid
from repro.monalisa.publisher import ServiceMetricsPublisher, SiteLoadPublisher
from repro.monalisa.repository import MonALISARepository
from repro.monalisa.service import MonALISAQueryService
from repro.observability.eventbus import (
    AccountingConsumer,
    EstimatorConsumer,
    EventCore,
    MonALISAConsumer,
    MonitoringConsumer,
)
from repro.observability.instrument import GAEInstrumentation
from repro.store.base import StateStore
from repro.store.memory import MemoryStore


@dataclass
class GAE:
    """The assembled Grid Analysis Environment."""

    grid: Grid
    host: ClarensHost
    monalisa: MonALISARepository
    history: HistoryRepository
    estimators: EstimatorService
    monitoring: JobMonitoringService
    accounting: QuotaAccountingService
    steering: SteeringService
    load_publisher: SiteLoadPublisher
    service_metrics_publisher: ServiceMetricsPublisher
    #: End-to-end tracing/journal/metrics; None when built with
    #: ``observability=False``.
    observability: Optional[GAEInstrumentation] = None
    #: Period (simulated s) for continuous job snapshots; None disables.
    monitor_snapshot_period_s: Optional[float] = None
    #: The unified state store every persistent layer writes through.
    store: Optional[StateStore] = None
    #: The keyword arguments this GAE was built with (minus objects a
    #: checkpoint captures separately), so a restore can rebuild the same
    #: wiring via :func:`build_gae`.
    build_params: Dict[str, object] = field(default_factory=dict)

    @property
    def sim(self):
        """The discrete-event simulator driving everything."""
        return self.grid.sim

    @property
    def scheduler(self):
        """The Sphinx-like scheduler."""
        return self.grid.scheduler

    def client(self, user: str = "", password: str = "") -> ClarensClient:
        """An in-process client; logs in when credentials are given."""
        client = ClarensClient(LoopbackTransport(self.host))
        if user:
            client.login(user, password)
        return client

    def add_user(
        self, name: str, password: str, groups: Tuple[str, ...] = ("gae-users",)
    ) -> None:
        """Create a user allowed to call every GAE service."""
        self.host.users.add_user(name, password, groups=groups)

    def start(self) -> "GAE":
        """Arm the periodic activities (steering loop, B&R sweep, load
        publisher, and continuous job snapshots when configured).  Call
        before running the simulator."""
        self.steering.start()
        self.load_publisher.start()
        self.service_metrics_publisher.start()
        if self.observability is not None:
            self.observability.start_telemetry()
        if self.monitor_snapshot_period_s is not None:
            self.monitoring.start_periodic_snapshots(self.monitor_snapshot_period_s)
        return self

    def stop(self) -> None:
        """Cancel every periodic activity so the simulator can drain."""
        self.steering.stop()
        self.load_publisher.stop()
        self.service_metrics_publisher.stop()
        if self.observability is not None:
            self.observability.stop_telemetry()
        self.monitoring.stop_periodic_snapshots()

    def checkpoint(self, path: str) -> "object":
        """Write a full-system checkpoint to *path* (a SQLite file).

        Convenience for :class:`repro.store.checkpoint.Checkpointer`;
        returns its :class:`~repro.store.checkpoint.CheckpointInfo`.
        """
        from repro.store.checkpoint import Checkpointer

        return Checkpointer(self).checkpoint(path)


def default_acl() -> AccessControlList:
    """The GAE's shipped access policy.

    ``gae-users`` may call every service; ``grid-admins`` inherit the same
    (plus the session manager recognises them as super-steerers).
    """
    acl = AccessControlList(default_allow=False)
    acl.allow("estimator.*", groups=("gae-users", "grid-admins"))
    acl.allow("jobmon.*", groups=("gae-users", "grid-admins"))
    acl.allow("steering.*", groups=("gae-users", "grid-admins"))
    acl.allow("accounting.*", groups=("gae-users", "grid-admins"))
    acl.allow("monalisa.*", groups=("gae-users", "grid-admins"))
    return acl


def build_gae(
    grid: Grid,
    policy: Optional[SteeringPolicy] = None,
    history: Optional[HistoryRepository] = None,
    load_publish_period_s: float = 30.0,
    record_history: bool = True,
    host_name: str = "jclarens",
    monitor_snapshot_period_s: Optional[float] = None,
    service_metrics_period_s: float = 60.0,
    transfer_cache_ttl_s: Optional[float] = 300.0,
    observability: bool = True,
    telemetry: bool = True,
    telemetry_window_s: float = 60.0,
    health_rules=None,
    store: Optional[StateStore] = None,
    read_cache: bool = True,
) -> GAE:
    """Wire the full GAE over an assembled grid.

    Parameters
    ----------
    grid:
        The substrate from :class:`~repro.gridsim.grid.GridBuilder`.
    policy:
        Steering policy (defaults per :class:`SteeringPolicy`).
    history:
        Pre-seeded task history for the runtime estimator (e.g. a Downey
        workload's completed jobs); empty when omitted.
    record_history:
        When true, completed tasks keep feeding the history live.
    store:
        The :class:`~repro.store.base.StateStore` threaded through every
        persistent layer (an in-memory store when omitted).  The
        monitoring DB's relational tables live on this store's SQL
        connection, and :meth:`GAE.checkpoint` snapshots the whole
        system through the same namespace registry.
    transfer_cache_ttl_s:
        Memoize iperf bandwidth probes for this many simulated seconds
        (matches the default network-weather period, so cached bandwidths
        go stale no slower than the links they describe).  ``None`` probes
        on every transfer estimate.
    observability:
        When true (the default) the end-to-end tracing/journal/metrics
        layer is attached: per-job traces through scheduler, pools,
        steering and MonALISA, a lifecycle event journal, the unified
        metrics registry, the ``system.observability`` Clarens method,
        and an ``rpc:*`` span per dispatched call.
    telemetry:
        When true (and observability is on) the streaming telemetry
        pipeline samples every metric and journal rate onto sim-aligned
        windows and the declarative health-rule engine evaluates on each
        closed window (``system.health``, ``health_*`` journal events,
        MonALISA ``health`` farm).  The window tick arms with
        :meth:`GAE.start`.
    telemetry_window_s:
        Width (simulated s) of one aggregation window.
    health_rules:
        Health rules (:class:`~repro.observability.health.HealthRule`
        instances or their dicts); the shipped defaults when omitted.
    read_cache:
        When true (the default) the host's epoch-keyed read cache is
        enabled and every mutating subsystem is wired to bump its epoch
        (:func:`repro.clarens.readcache.wire_epochs`), so repeat reads
        whose inputs haven't changed are served without re-execution —
        bit-identical by construction.  ``False`` disables caching *and*
        multicall coalescing, restoring the always-execute pipeline (the
        benchmark baseline).
    """
    sim = grid.sim
    store = store if store is not None else MemoryStore()
    monalisa = MonALISARepository()
    history = history if history is not None else HistoryRepository()

    estimators = EstimatorService(
        history, probe=grid.probe, catalog=grid.catalog,
        transfer_cache_ttl_s=transfer_cache_ttl_s, clock=lambda: sim.now,
    )
    for name in sorted(grid.execution_services):
        estimators.install_site_estimator(grid.execution_services[name])
    estimators.attach_to_scheduler(grid.scheduler)

    # The scheduler's load queries go through MonALISA (§6.1 step d).
    grid.scheduler.load_oracle = monalisa.load_oracle(default=0.0)

    monitoring = JobMonitoringService(
        sim,
        monalisa=monalisa,
        estimate_lookup=lambda task_id: estimators.estimate_db.lookup(task_id),
        store=store,
    )
    accounting = QuotaAccountingService()
    for name in sorted(grid.sites):
        site = grid.sites[name]
        monitoring.attach(grid.execution_services[name])
        accounting.register_site(site)

    steering = SteeringService(
        sim=sim,
        scheduler=grid.scheduler,
        services=grid.execution_services,
        monitoring=monitoring,
        estimators=estimators,
        accounting=accounting,
        policy=policy,
    )
    for name in sorted(grid.sites):
        steering.attach_site(grid.sites[name])

    recorder: Optional[HistoryRecorder] = None
    if record_history:
        recorder = HistoryRecorder(history)
        for name in sorted(grid.sites):
            recorder.attach(grid.sites[name])

    load_publisher = SiteLoadPublisher(
        sim, monalisa, [grid.sites[n] for n in sorted(grid.sites)],
        period_s=load_publish_period_s,
    )

    host = ClarensHost(
        name=host_name,
        time_source=lambda: sim.now,
        acl=default_acl(),
        read_cache_enabled=read_cache,
    )
    if read_cache:
        wire_epochs(
            host.epochs,
            sim=sim,
            scheduler=grid.scheduler,
            pools={name: grid.sites[name].pool for name in grid.sites},
            db_manager=monitoring.db_manager,
            history=history,
            estimate_db=estimators.estimate_db,
            quotas=accounting.quotas,
            monalisa=monalisa,
        )
    service_metrics_publisher = ServiceMetricsPublisher(
        sim, monalisa, host, period_s=service_metrics_period_s
    )
    host.register("estimator", estimators, description="runtime/queue/transfer estimates (§6)")
    host.register("jobmon", monitoring, description="job monitoring information (§5)")
    host.register("steering", steering, description="job steering and control (§4)")
    host.register("accounting", accounting, description="quota and accounting (§4.2.2)")
    host.register(
        "monalisa", MonALISAQueryService(monalisa),
        description="grid-weather and job-event queries (MonALISA, §5/§6.1)",
    )

    instrumentation: Optional[GAEInstrumentation] = None
    if observability:
        instrumentation = GAEInstrumentation(
            sim,
            telemetry=telemetry,
            telemetry_window_s=telemetry_window_s,
            health_rules=health_rules,
        ).attach(
            grid,
            steering=steering,
            monitoring=monitoring,
            accounting=accounting,
            estimators=estimators,
            monalisa=monalisa,
        )
        host.observability = instrumentation
        host.add_middleware(instrumentation.middleware())
        host.read_cache.bind_metrics(instrumentation.metrics)

        # Event-sourced core: the journal becomes the authoritative write
        # path.  Consumers fold journalled state changes into their
        # stores; the emit seams below route every producer through the
        # journal first.  Registration order is load-bearing: monitoring
        # (SQL upsert) before monalisa (derived job-state publish).
        core = EventCore(
            instrumentation.journal,
            trace_context=instrumentation.trace_context_of,
        )
        core.register(EstimatorConsumer(estimators.estimate_db, history))
        core.register(MonitoringConsumer(monitoring.db_manager))
        core.register(MonALISAConsumer(monalisa))
        core.register(
            AccountingConsumer(dict(grid.execution_services), estimators.estimate_db)
        )
        core.install()
        core.bind_metrics(instrumentation.metrics)
        # Anchor every fold at the pre-seeded state (e.g. an imported
        # task history) so rebuild-from-journal stays well-defined.
        core.rebaseline_all()
        instrumentation.eventcore = core

        estimators.estimate_sink = core.emit_estimate
        if recorder is not None:
            recorder.sink = core.emit_history
        monitoring.db_manager.emit = core.emit_monitoring
        monalisa.emit = core.emit_metric

    return GAE(
        grid=grid,
        host=host,
        monalisa=monalisa,
        history=history,
        estimators=estimators,
        monitoring=monitoring,
        accounting=accounting,
        steering=steering,
        load_publisher=load_publisher,
        service_metrics_publisher=service_metrics_publisher,
        observability=instrumentation,
        monitor_snapshot_period_s=monitor_snapshot_period_s,
        store=store,
        # Everything a restore must replay through build_gae; the policy
        # and history are checkpointed separately (they evolve at runtime).
        build_params={
            "load_publish_period_s": load_publish_period_s,
            "record_history": record_history,
            "host_name": host_name,
            "monitor_snapshot_period_s": monitor_snapshot_period_s,
            "service_metrics_period_s": service_metrics_period_s,
            "transfer_cache_ttl_s": transfer_cache_ttl_s,
            "observability": observability,
            "telemetry": telemetry,
            "telemetry_window_s": telemetry_window_s,
            "read_cache": read_cache,
        },
    )
