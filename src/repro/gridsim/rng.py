"""Deterministic random-number streams.

Every stochastic component in the reproduction (workload generator, network
probe noise, background-load profiles, failure injection) draws from its own
named :class:`numpy.random.Generator` stream derived from a single master
seed via ``numpy.random.SeedSequence.spawn``-style child seeding.  Two
components never share a stream, so adding draws to one cannot perturb
another — the property that keeps every figure regenerable bit-for-bit.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngStreams:
    """A family of independent named random streams under one master seed.

    Examples
    --------
    >>> rngs = RngStreams(seed=42)
    >>> a = rngs.stream("workload")
    >>> b = rngs.stream("network")
    >>> a is rngs.stream("workload")   # streams are cached by name
    True
    """

    def __init__(self, seed: int = 2005) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically.

        The child seed depends only on ``(master seed, name)``, never on the
        order in which streams are first requested.
        """
        if name not in self._streams:
            # Derive a stable child seed from the stream name so creation
            # order is irrelevant.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=tuple(int(x) for x in digest)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fork(self, name: str, index: int) -> np.random.Generator:
        """Return an indexed sub-stream, e.g. one per site or per client."""
        return self.stream(f"{name}#{index}")

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def export_states(self) -> Dict[str, dict]:
        """The bit-generator state of every materialised stream, by name.

        JSON-safe (ints and strings only), so a checkpoint can persist
        it; a restored stream continues the exact draw sequence.
        """
        return {
            name: gen.bit_generator.state
            for name, gen in sorted(self._streams.items())
        }

    def restore_states(self, states: Dict[str, dict]) -> None:
        """Fast-forward streams to :meth:`export_states` output.

        Streams absent from *states* are untouched; named streams are
        (re)created first, so restore works on a fresh instance.
        """
        for name, state in states.items():
            self.stream(name).bit_generator.state = dict(state)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
