"""The simulation clock and event loop.

:class:`Simulator` owns a :class:`~repro.gridsim.events.EventQueue` and a
:class:`SimClock` and exposes the three operations every other module builds
on: ``schedule`` (relative), ``at`` (absolute) and ``run_until``/``run``.

Periodic activities (monitoring polls, MonALISA publishers, backup-and-
recovery pings) use :meth:`Simulator.every`, which re-arms itself until the
returned :class:`PeriodicHandle` is cancelled.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.gridsim.events import EventHandle, EventQueue, SimulationError, TraceEntry


class SimClock:
    """Monotonic simulated-time clock.

    Time is a float number of seconds since the start of the simulation.
    Only the owning :class:`Simulator` may advance it.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: Listeners called with the new time whenever the clock actually
        #: moves forward (the read-cache "clock" epoch hangs off this).
        self.on_advance: List[Callable[[float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _advance_to(self, t: float) -> None:
        if t < self._now:
            raise SimulationError(
                f"clock may not move backwards ({t:.6g} < {self._now:.6g})"
            )
        if t > self._now:
            self._now = t
            for listener in self.on_advance:
                listener(t)
        else:
            self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6g})"


class PeriodicHandle:
    """Controls a repeating activity created with :meth:`Simulator.every`."""

    __slots__ = ("_current", "_cancelled")

    def __init__(self) -> None:
        self._current: Optional[EventHandle] = None
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def next_time(self) -> Optional[float]:
        """Fire time of the pending occurrence (``None`` once cancelled)."""
        if self._cancelled or self._current is None:
            return None
        return self._current.time

    def cancel(self) -> None:
        """Stop the periodic activity; the pending firing is cancelled too."""
        self._cancelled = True
        if self._current is not None:
            self._current.cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial clock value (seconds).
    trace:
        When true, every executed event is appended to :attr:`trace_log`,
        which integration tests use to assert exact interleavings.
    """

    def __init__(self, start: float = 0.0, trace: bool = False) -> None:
        self.clock = SimClock(start)
        self.queue = EventQueue()
        self.trace_enabled = trace
        self.trace_log: List[TraceEntry] = []
        self._running = False
        self._executed = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self.queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *action* to run *delay* seconds from now.

        ``delay`` must be non-negative; zero-delay events run after every
        event already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.queue.push(self.now + delay, action, label)

    def at(self, time: float, action: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule *action* at absolute simulated *time* (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past (t={time:.6g} < now={self.now:.6g})"
            )
        return self.queue.push(time, action, label)

    def every(
        self,
        interval: float,
        action: Callable[[], None],
        label: str = "",
        first_delay: Optional[float] = None,
    ) -> PeriodicHandle:
        """Run *action* every *interval* seconds until cancelled.

        The first firing happens after ``first_delay`` (defaults to
        ``interval``) seconds.  The action runs *before* the next firing is
        armed, so an action that cancels the handle stops the cycle cleanly.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval!r}")
        handle = PeriodicHandle()

        def fire() -> None:
            if handle._cancelled:
                return
            action()
            if not handle._cancelled:
                handle._current = self.schedule(interval, fire, label)

        handle._current = self.schedule(
            interval if first_delay is None else first_delay, fire, label
        )
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remain."""
        head = self.queue.peek()
        if head is None:
            return False
        self.queue.pop()
        self.clock._advance_to(head.time)
        if self.trace_enabled:
            self.trace_log.append(TraceEntry(time=head.time, seq=head.seq, label=head.label))
        self._executed += 1
        head.action()
        return True

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events with timestamps <= *time*; returns events executed.

        The clock lands exactly on *time* afterwards even if the last event
        fired earlier, so callers can interleave ``run_until`` with direct
        state inspection at known instants.
        """
        if time < self.now:
            raise SimulationError(
                f"run_until target {time:.6g} is in the past (now={self.now:.6g})"
            )
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            head = self.queue.peek()
            if head is None or head.time > time:
                break
            self.step()
            executed += 1
        self.clock._advance_to(time)
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains; returns events executed.

        ``max_events`` is a runaway guard: exceeding it raises
        :class:`SimulationError` instead of looping forever (e.g. when a
        periodic activity was never cancelled).
        """
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; "
                    "did a periodic activity never get cancelled?"
                )
        return executed
