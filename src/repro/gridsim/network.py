"""Wide-area network model and an iperf-like bandwidth probe.

The File Transfer Time Estimator (§6.3) works exactly the way the paper
describes: "we first determine the bandwidth between the client and the
Clarens server using iperf, and then using this bandwidth and the file size,
we calculate the transfer time."  Because we have no physical network, this
module substitutes a link-graph model:

- sites are vertices; :class:`Link` edges carry capacity (Mbit/s), latency
  (s) and a background-utilisation fraction;
- routing is shortest-path by latency over the link graph (networkx);
- an :class:`IperfProbe` measures the bottleneck link's *available*
  bandwidth along the route, with multiplicative measurement noise, exactly
  the quantity a real iperf run would report;
- :meth:`Network.transfer_time` computes ground-truth transfer durations the
  simulator uses, so the estimator's probe-based prediction can be compared
  against an honest actual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import networkx as nx
import numpy as np


class NetworkError(RuntimeError):
    """Raised for unknown endpoints or unreachable routes."""


@dataclass
class Link:
    """A bidirectional network link between two sites.

    Attributes
    ----------
    capacity_mbps:
        Raw capacity in megabits per second.
    latency_s:
        One-way propagation delay in seconds.
    utilization:
        Fraction of capacity consumed by background traffic, in [0, 1).
    """

    a: str
    b: str
    capacity_mbps: float
    latency_s: float = 0.01
    utilization: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_mbps}")
        if self.latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_s}")
        if not 0.0 <= self.utilization < 1.0:
            raise ValueError(f"utilization must be in [0, 1), got {self.utilization}")

    @property
    def available_mbps(self) -> float:
        """Capacity left over after background traffic."""
        return self.capacity_mbps * (1.0 - self.utilization)


class Network:
    """A graph of sites connected by :class:`Link` objects."""

    def __init__(self) -> None:
        self._graph = nx.Graph()

    def add_site(self, name: str) -> None:
        """Register a site vertex (idempotent)."""
        self._graph.add_node(name)

    def add_link(self, link: Link) -> None:
        """Attach a link; endpoints are added implicitly."""
        self._graph.add_edge(link.a, link.b, link=link, weight=link.latency_s)

    def sites(self) -> List[str]:
        """All registered site names."""
        return sorted(self._graph.nodes)

    def link_between(self, a: str, b: str) -> Link:
        """The direct link between *a* and *b* (NetworkError if absent)."""
        if not self._graph.has_edge(a, b):
            raise NetworkError(f"no direct link between {a!r} and {b!r}")
        return self._graph.edges[a, b]["link"]

    def route(self, src: str, dst: str) -> List[Link]:
        """Lowest-latency route between two sites as a list of links."""
        if src == dst:
            return []
        for endpoint in (src, dst):
            if endpoint not in self._graph:
                raise NetworkError(f"unknown site {endpoint!r}")
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="weight")
        except nx.NetworkXNoPath as exc:
            raise NetworkError(f"no route between {src!r} and {dst!r}") from exc
        return [self._graph.edges[u, v]["link"] for u, v in zip(path, path[1:])]

    # ------------------------------------------------------------------
    # ground truth used by the simulator
    # ------------------------------------------------------------------
    def path_bandwidth_mbps(self, src: str, dst: str) -> float:
        """Available end-to-end bandwidth = bottleneck link's available rate."""
        route = self.route(src, dst)
        if not route:
            return float("inf")
        return min(link.available_mbps for link in route)

    def path_latency_s(self, src: str, dst: str) -> float:
        """End-to-end one-way latency along the route."""
        return sum(link.latency_s for link in self.route(src, dst))

    def transfer_time(self, src: str, dst: str, size_mb: float) -> float:
        """Ground-truth seconds to move *size_mb* megabytes from src to dst.

        Local transfers are free.  The formula is the classic
        ``latency + size / bandwidth`` with megabytes converted to megabits.
        """
        if size_mb < 0:
            raise ValueError(f"size must be non-negative, got {size_mb}")
        if src == dst or size_mb == 0:
            return 0.0
        bw = self.path_bandwidth_mbps(src, dst)
        return self.path_latency_s(src, dst) + (size_mb * 8.0) / bw

    def set_utilization(self, a: str, b: str, utilization: float) -> None:
        """Change background traffic on the direct link a—b."""
        link = self.link_between(a, b)
        if not 0.0 <= utilization < 1.0:
            raise ValueError(f"utilization must be in [0, 1), got {utilization}")
        link.utilization = utilization


@dataclass
class ProbeResult:
    """One iperf-style measurement."""

    src: str
    dst: str
    measured_mbps: float
    true_mbps: float
    duration_s: float


class IperfProbe:
    """An iperf-like active bandwidth measurement over the simulated network.

    Real iperf measurements fluctuate with cross traffic; we model that with
    multiplicative lognormal noise around the true available path bandwidth.
    ``noise_sigma=0`` yields a perfect probe (useful in unit tests).
    """

    def __init__(
        self,
        network: Network,
        rng: Optional[np.random.Generator] = None,
        noise_sigma: float = 0.05,
        probe_duration_s: float = 10.0,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.noise_sigma = noise_sigma
        self.probe_duration_s = probe_duration_s
        self.history: List[ProbeResult] = []

    def measure(self, src: str, dst: str) -> ProbeResult:
        """Measure available bandwidth between two sites.

        Returns a :class:`ProbeResult`; the measurement is also appended to
        :attr:`history` so estimators can smooth over repeated probes.
        """
        true_bw = self.network.path_bandwidth_mbps(src, dst)
        if true_bw == float("inf"):
            measured = float("inf")
        elif self.noise_sigma == 0.0:
            measured = true_bw
        else:
            measured = float(true_bw * self.rng.lognormal(0.0, self.noise_sigma))
        result = ProbeResult(
            src=src,
            dst=dst,
            measured_mbps=measured,
            true_mbps=true_bw,
            duration_s=self.probe_duration_s,
        )
        self.history.append(result)
        return result

    def smoothed_mbps(self, src: str, dst: str, window: int = 3) -> float:
        """Mean of the last *window* measurements for the pair (probing as
        needed to fill the window)."""
        relevant = [r for r in self.history if r.src == src and r.dst == dst]
        while len(relevant) < window:
            relevant.append(self.measure(src, dst))
        recent = relevant[-window:]
        return float(np.mean([r.measured_mbps for r in recent]))


class NetworkWeather:
    """Time-varying background traffic on every link ("network weather").

    §1 motivates the GAE with the "volatile nature of a Grid environment";
    this drives the network side of that volatility: each link's
    utilization follows a seeded mean-reverting random walk, stepped every
    *period_s* of simulated time.  Transfer-time estimates made from old
    probes go stale, exactly as they did on the 2005 WAN.
    """

    def __init__(
        self,
        sim,
        network: Network,
        rng: Optional[np.random.Generator] = None,
        period_s: float = 300.0,
        mean_utilization: float = 0.3,
        volatility: float = 0.1,
        max_utilization: float = 0.95,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= mean_utilization < 1.0:
            raise ValueError("mean_utilization must be in [0, 1)")
        self.sim = sim
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.period_s = period_s
        self.mean_utilization = mean_utilization
        self.volatility = volatility
        self.max_utilization = max_utilization
        self._handle = None

    def _links(self) -> List[Link]:
        graph = self.network._graph
        return [graph.edges[e]["link"] for e in sorted(graph.edges)]

    def step(self) -> None:
        """Advance every link's utilization one random-walk step."""
        for link in self._links():
            drift = 0.3 * (self.mean_utilization - link.utilization)
            noise = float(self.rng.normal(0.0, self.volatility))
            link.utilization = float(
                min(self.max_utilization, max(0.0, link.utilization + drift + noise))
            )

    def start(self) -> "NetworkWeather":
        """Begin stepping under the simulation clock."""
        if self._handle is not None:
            raise RuntimeError("network weather already started")
        self._handle = self.sim.every(self.period_s, self.step, label="network.weather")
        return self

    def stop(self) -> None:
        """Cancel the periodic stepping."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
