"""Stochastic fault injection for robustness experiments.

§1 motivates steering with "the volatile nature of a Grid environment";
Backup & Recovery (§4.2.4) exists because execution services *do* die.
:class:`FaultInjector` drives that volatility deterministically: seeded
exponential failure/repair processes per site, taking execution services
down (crashing their pools) and bringing them back, all under the
simulation clock.  Robustness tests assert that the GAE still completes
every job while sites churn underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService


@dataclass(frozen=True)
class FaultEvent:
    """One injected failure or repair."""

    time: float
    site: str
    kind: str  # "failure" | "repair"


@dataclass
class FaultPlan:
    """Per-site fault process parameters."""

    mtbf_s: float          # mean time between failures (exponential)
    mttr_s: float          # mean time to repair (exponential)

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("MTBF and MTTR must be positive")


class FaultInjector:
    """Schedules site failures and repairs on the simulation clock."""

    def __init__(self, sim: Simulator, rng: Optional[np.random.Generator] = None) -> None:
        self.sim = sim
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._plans: Dict[str, FaultPlan] = {}
        self._services: Dict[str, ExecutionService] = {}
        self.events: List[FaultEvent] = []
        self._armed = False

    def add_site(
        self, service: ExecutionService, mtbf_s: float, mttr_s: float
    ) -> None:
        """Subject a site's execution service to the fault process."""
        name = service.site.name
        if name in self._plans:
            raise ValueError(f"site {name!r} already under fault injection")
        self._plans[name] = FaultPlan(mtbf_s=mtbf_s, mttr_s=mttr_s)
        self._services[name] = service

    def start(self) -> "FaultInjector":
        """Arm the first failure for every registered site."""
        if self._armed:
            raise RuntimeError("fault injector already started")
        self._armed = True
        for name in sorted(self._plans):
            self._arm_failure(name)
        return self

    # ------------------------------------------------------------------
    def _arm_failure(self, site: str) -> None:
        delay = float(self.rng.exponential(self._plans[site].mtbf_s))
        self.sim.schedule(delay, lambda: self._fail(site), label=f"fault:{site}")

    def _arm_repair(self, site: str) -> None:
        delay = float(self.rng.exponential(self._plans[site].mttr_s))
        self.sim.schedule(delay, lambda: self._repair(site), label=f"repair:{site}")

    def _fail(self, site: str) -> None:
        service = self._services[site]
        try:
            service.ping()
        except Exception:
            # Already down (e.g. failed by the test directly); try later.
            self._arm_failure(site)
            return
        service.fail()
        self.events.append(FaultEvent(time=self.sim.now, site=site, kind="failure"))
        self._arm_repair(site)

    def _repair(self, site: str) -> None:
        self._services[site].recover()
        self.events.append(FaultEvent(time=self.sim.now, site=site, kind="repair"))
        self._arm_failure(site)

    # ------------------------------------------------------------------
    def failures(self, site: Optional[str] = None) -> List[FaultEvent]:
        """Injected failure events, optionally for one site."""
        return [
            e for e in self.events
            if e.kind == "failure" and (site is None or e.site == site)
        ]

    def availability(self, site: str, horizon: float) -> float:
        """Fraction of [0, horizon] the site was up, from the event log."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        down = 0.0
        down_since: Optional[float] = None
        for e in self.events:
            if e.site != site:
                continue
            if e.kind == "failure" and down_since is None:
                down_since = e.time
            elif e.kind == "repair" and down_since is not None:
                down += min(e.time, horizon) - down_since
                down_since = None
        if down_since is not None:
            down += max(0.0, horizon - down_since)
        return 1.0 - down / horizon
