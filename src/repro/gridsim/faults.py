"""Fault injection: stochastic churn and deterministic outage windows.

§1 motivates steering with "the volatile nature of a Grid environment";
Backup & Recovery (§4.2.4) exists because execution services *do* die.
Two injectors drive that volatility under the simulation clock:

- :class:`FaultInjector` — seeded exponential failure/repair processes
  per site (the robustness-test workhorse: the GAE must still complete
  every job while sites churn underneath it);
- :class:`OutageScheduler` — *declarative* outage windows for chaos
  campaigns (:mod:`repro.scenarios`): each window ``[start_s, end_s)``
  takes a site's execution service down at its start and repairs it at
  its end, with exact, pinned boundary semantics (see below).

Window boundary semantics
-------------------------
Windows are half-open ``[start_s, end_s)``.  Before any event is
scheduled, each site's windows are **merged**: overlapping windows and
windows that abut exactly (one ends at the clock tick another starts,
``end == next.start``) collapse into one continuous outage.  This is
what makes flapping with a 100 % duty cycle equal a single long outage,
and — the regression the merge pins — it means a window ending exactly
at a clock tick never double-fires recovery: without merging, abutting
windows would emit a ``repair`` immediately followed by a ``failure``
at the same instant (and a second, spurious ``repair`` at the end of
the second window if the first repair already re-armed state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService


@dataclass(frozen=True)
class FaultEvent:
    """One injected failure or repair."""

    time: float
    site: str
    kind: str  # "failure" | "repair"


@dataclass
class FaultPlan:
    """Per-site fault process parameters."""

    mtbf_s: float          # mean time between failures (exponential)
    mttr_s: float          # mean time to repair (exponential)

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("MTBF and MTTR must be positive")


class FaultInjector:
    """Schedules site failures and repairs on the simulation clock."""

    def __init__(self, sim: Simulator, rng: Optional[np.random.Generator] = None) -> None:
        self.sim = sim
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._plans: Dict[str, FaultPlan] = {}
        self._services: Dict[str, ExecutionService] = {}
        self.events: List[FaultEvent] = []
        self._armed = False

    def add_site(
        self, service: ExecutionService, mtbf_s: float, mttr_s: float
    ) -> None:
        """Subject a site's execution service to the fault process."""
        name = service.site.name
        if name in self._plans:
            raise ValueError(f"site {name!r} already under fault injection")
        self._plans[name] = FaultPlan(mtbf_s=mtbf_s, mttr_s=mttr_s)
        self._services[name] = service

    def start(self) -> "FaultInjector":
        """Arm the first failure for every registered site."""
        if self._armed:
            raise RuntimeError("fault injector already started")
        self._armed = True
        for name in sorted(self._plans):
            self._arm_failure(name)
        return self

    # ------------------------------------------------------------------
    def _arm_failure(self, site: str) -> None:
        delay = float(self.rng.exponential(self._plans[site].mtbf_s))
        self.sim.schedule(delay, lambda: self._fail(site), label=f"fault:{site}")

    def _arm_repair(self, site: str) -> None:
        delay = float(self.rng.exponential(self._plans[site].mttr_s))
        self.sim.schedule(delay, lambda: self._repair(site), label=f"repair:{site}")

    def _fail(self, site: str) -> None:
        service = self._services[site]
        try:
            service.ping()
        except Exception:
            # Already down (e.g. failed by the test directly); try later.
            self._arm_failure(site)
            return
        service.fail()
        self.events.append(FaultEvent(time=self.sim.now, site=site, kind="failure"))
        self._arm_repair(site)

    def _repair(self, site: str) -> None:
        self._services[site].recover()
        self.events.append(FaultEvent(time=self.sim.now, site=site, kind="repair"))
        self._arm_failure(site)

    # ------------------------------------------------------------------
    def failures(self, site: Optional[str] = None) -> List[FaultEvent]:
        """Injected failure events, optionally for one site."""
        return [
            e for e in self.events
            if e.kind == "failure" and (site is None or e.site == site)
        ]

    def availability(self, site: str, horizon: float) -> float:
        """Fraction of [0, horizon] the site was up, from the event log."""
        return _availability(self.events, site, horizon)


def _availability(events: Sequence[FaultEvent], site: str, horizon: float) -> float:
    """Up-time fraction over [0, horizon] from an injector's event log."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    down = 0.0
    down_since: Optional[float] = None
    for e in events:
        if e.site != site:
            continue
        if e.kind == "failure" and down_since is None:
            down_since = e.time
        elif e.kind == "repair" and down_since is not None:
            down += min(e.time, horizon) - down_since
            down_since = None
    if down_since is not None:
        down += max(0.0, horizon - down_since)
    return 1.0 - down / horizon


# ----------------------------------------------------------------------
# deterministic outage windows (chaos campaigns)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OutageWindow:
    """One half-open outage window ``[start_s, end_s)``."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError(f"window start must be non-negative, got {self.start_s}")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"window end must be after its start, got [{self.start_s}, {self.end_s})"
            )


def merge_windows(windows: Sequence[OutageWindow]) -> List[OutageWindow]:
    """Merge overlapping **and abutting** windows into disjoint ones.

    Two windows touch when ``a.end_s >= b.start_s`` (half-open windows
    that share a boundary instant describe one continuous outage), so
    the merged list never contains a repair scheduled at the same clock
    tick as a failure — the double-fire guard the boundary regression
    test pins.
    """
    if not windows:
        return []
    ordered = sorted(windows, key=lambda w: (w.start_s, w.end_s))
    merged = [ordered[0]]
    for window in ordered[1:]:
        last = merged[-1]
        if window.start_s <= last.end_s:  # overlap or exact abutment
            if window.end_s > last.end_s:
                merged[-1] = OutageWindow(last.start_s, window.end_s)
        else:
            merged.append(window)
    return merged


def flapping_windows(
    start_s: float, end_s: float, period_s: float, duty: float = 0.5
) -> List[OutageWindow]:
    """Down/up cycles as outage windows: down for ``duty * period_s``
    at the head of every period in ``[start_s, end_s)``.

    ``duty == 1.0`` degenerates (by way of :func:`merge_windows`) into
    one continuous outage — abutting windows are one outage, not many.
    """
    if period_s <= 0:
        raise ValueError(f"flapping period must be positive, got {period_s}")
    if not 0.0 < duty <= 1.0:
        raise ValueError(f"duty cycle must be in (0, 1], got {duty}")
    if end_s <= start_s:
        raise ValueError(f"flapping needs end_s > start_s, got [{start_s}, {end_s})")
    windows = []
    t = start_s
    while t < end_s:
        windows.append(OutageWindow(t, min(t + duty * period_s, end_s)))
        t += period_s
    return windows


class OutageScheduler:
    """Schedules declarative outage windows on the simulation clock.

    The deterministic counterpart of :class:`FaultInjector`: chaos
    campaigns declare *when* each site is down instead of sampling
    failure processes.  Windows registered via :meth:`add_outage` /
    :meth:`add_flapping` are merged per site at :meth:`start` (see the
    module docstring for the pinned boundary semantics), then one
    ``fail``/``recover`` pair is scheduled per merged window.

    A site already down at a window start (e.g. failed directly by a
    test, or by a concurrently running :class:`FaultInjector`) is left
    alone and the window records nothing — this scheduler only repairs
    outages it caused.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._services: Dict[str, ExecutionService] = {}
        self._windows: Dict[str, List[OutageWindow]] = {}
        self.events: List[FaultEvent] = []
        self._down_by_us: Dict[str, bool] = {}
        self._started = False

    def _register(self, service: ExecutionService) -> str:
        name = service.site.name
        existing = self._services.setdefault(name, service)
        if existing is not service:
            raise ValueError(f"site {name!r} registered with two services")
        return name

    def add_outage(
        self, service: ExecutionService, start_s: float, duration_s: float
    ) -> None:
        """One outage window ``[start_s, start_s + duration_s)``."""
        if self._started:
            raise RuntimeError("outage scheduler already started")
        name = self._register(service)
        self._windows.setdefault(name, []).append(
            OutageWindow(start_s, start_s + duration_s)
        )

    def add_flapping(
        self,
        service: ExecutionService,
        start_s: float,
        end_s: float,
        period_s: float,
        duty: float = 0.5,
    ) -> None:
        """Down/up cycles over ``[start_s, end_s)`` (see :func:`flapping_windows`)."""
        if self._started:
            raise RuntimeError("outage scheduler already started")
        name = self._register(service)
        self._windows.setdefault(name, []).extend(
            flapping_windows(start_s, end_s, period_s, duty)
        )

    def windows(self, site: str) -> List[OutageWindow]:
        """The merged, disjoint windows that will drive (or drove) *site*."""
        return merge_windows(self._windows.get(site, []))

    def start(self) -> "OutageScheduler":
        """Merge every site's windows and schedule their fail/recover events."""
        if self._started:
            raise RuntimeError("outage scheduler already started")
        self._started = True
        for name in sorted(self._windows):
            for window in self.windows(name):
                self.sim.at(
                    window.start_s,
                    lambda s=name: self._window_start(s),
                    label=f"outage:{name}",
                )
                self.sim.at(
                    window.end_s,
                    lambda s=name: self._window_end(s),
                    label=f"outage-end:{name}",
                )
        return self

    # ------------------------------------------------------------------
    def _window_start(self, site: str) -> None:
        service = self._services[site]
        try:
            service.ping()
        except Exception:
            return  # already down (not by us): leave it to whoever failed it
        service.fail()
        self._down_by_us[site] = True
        self.events.append(FaultEvent(time=self.sim.now, site=site, kind="failure"))

    def _window_end(self, site: str) -> None:
        if not self._down_by_us.get(site, False):
            return  # we never took it down, so we must not bring it up
        self._services[site].recover()
        self._down_by_us[site] = False
        self.events.append(FaultEvent(time=self.sim.now, site=site, kind="repair"))

    # ------------------------------------------------------------------
    def availability(self, site: str, horizon: float) -> float:
        """Fraction of [0, horizon] the site was up, from the event log."""
        return _availability(self.events, site, horizon)
