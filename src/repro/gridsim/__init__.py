"""Discrete-event grid substrate.

This subpackage provides everything the paper's services run *on top of*:

- a deterministic discrete-event simulation kernel
  (:mod:`repro.gridsim.events`, :mod:`repro.gridsim.clock`),
- jobs, tasks and concrete job plans (:mod:`repro.gridsim.job`),
- compute nodes with time-varying background CPU load
  (:mod:`repro.gridsim.node`),
- execution sites hosting a Condor-like batch pool
  (:mod:`repro.gridsim.site`, :mod:`repro.gridsim.condor`),
- a wide-area network model with an iperf-like bandwidth probe
  (:mod:`repro.gridsim.network`),
- storage elements and a replica catalog (:mod:`repro.gridsim.storage`),
- the execution service each site exposes (:mod:`repro.gridsim.execution`),
- a Sphinx-like scheduler (:mod:`repro.gridsim.scheduler`), and
- a :class:`~repro.gridsim.grid.Grid` facade that wires a whole testbed
  together.

The real system in the paper ran on Condor pools scheduled by Sphinx; this
package substitutes a faithful simulator so that every experiment in the
paper's evaluation section can be regenerated on a laptop.
"""

from repro.gridsim.clock import SimClock, Simulator
from repro.gridsim.condor import CondorPool, CondorJobAd
from repro.gridsim.events import Event, EventHandle, EventQueue
from repro.gridsim.execution import ExecutionService
from repro.gridsim.grid import Grid, GridBuilder
from repro.gridsim.job import (
    ConcreteJobPlan,
    Job,
    JobState,
    Task,
    TaskBinding,
    TaskSpec,
)
from repro.gridsim.network import IperfProbe, Link, Network
from repro.gridsim.node import LoadProfile, Node
from repro.gridsim.rng import RngStreams
from repro.gridsim.scheduler import SchedulingError, SphinxScheduler
from repro.gridsim.site import Site
from repro.gridsim.storage import GridFile, ReplicaCatalog, StorageElement

__all__ = [
    "CondorJobAd",
    "CondorPool",
    "ConcreteJobPlan",
    "Event",
    "EventHandle",
    "EventQueue",
    "ExecutionService",
    "Grid",
    "GridBuilder",
    "GridFile",
    "IperfProbe",
    "Job",
    "JobState",
    "Link",
    "LoadProfile",
    "Network",
    "Node",
    "ReplicaCatalog",
    "RngStreams",
    "SchedulingError",
    "SimClock",
    "Simulator",
    "Site",
    "SphinxScheduler",
    "StorageElement",
    "Task",
    "TaskBinding",
    "TaskSpec",
]
