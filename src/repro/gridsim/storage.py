"""Storage elements and the replica catalog.

The paper's data-grid side (§2: tera/petabytes "stored and replicated to
several geographically distributed sites"; §7: "the time taken to transfer
the data files needed by the job" matters for move decisions) is modelled
by:

- :class:`GridFile` — a logical file with a size;
- :class:`StorageElement` — a per-site store holding physical copies;
- :class:`ReplicaCatalog` — maps logical file names to the sites holding a
  replica, and answers "closest replica" queries using the network model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.gridsim.network import Network, NetworkError


class StorageError(RuntimeError):
    """Raised for missing files or exhausted capacity."""


@dataclass(frozen=True)
class GridFile:
    """A logical grid file."""

    name: str
    size_mb: float

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"size must be non-negative, got {self.size_mb}")


class StorageElement:
    """A site-local file store with finite capacity."""

    def __init__(self, site_name: str, capacity_mb: float = float("inf")) -> None:
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mb}")
        self.site_name = site_name
        self.capacity_mb = capacity_mb
        self._files: Dict[str, GridFile] = {}

    @property
    def used_mb(self) -> float:
        """Total size of stored files."""
        return sum(f.size_mb for f in self._files.values())

    @property
    def free_mb(self) -> float:
        """Remaining capacity."""
        return self.capacity_mb - self.used_mb

    def store(self, file: GridFile) -> None:
        """Add (or overwrite) a file; raises StorageError when full."""
        existing = self._files.get(file.name)
        needed = file.size_mb - (existing.size_mb if existing else 0.0)
        if needed > self.free_mb:
            raise StorageError(
                f"storage at {self.site_name} full: need {needed:.1f} MB, "
                f"have {self.free_mb:.1f} MB"
            )
        self._files[file.name] = file

    def has(self, name: str) -> bool:
        """Whether a file with *name* is stored here."""
        return name in self._files

    def get(self, name: str) -> GridFile:
        """Fetch file metadata (StorageError if absent)."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"file {name!r} not at site {self.site_name}") from None

    def delete(self, name: str) -> None:
        """Remove a file (StorageError if absent)."""
        if name not in self._files:
            raise StorageError(f"file {name!r} not at site {self.site_name}")
        del self._files[name]

    def files(self) -> List[GridFile]:
        """All stored files, sorted by name."""
        return [self._files[k] for k in sorted(self._files)]

    def snapshot_state(self) -> List[List[object]]:
        """Stored files as ``[name, size_mb]`` pairs in insertion order."""
        return [[f.name, f.size_mb] for f in self._files.values()]

    def restore_state(self, files: List[List[object]]) -> None:
        """Replace the stored files from :meth:`snapshot_state` output."""
        self._files = {}
        for name, size_mb in files:
            self.store(GridFile(name=name, size_mb=size_mb))


class ReplicaCatalog:
    """Grid-wide map of logical file name → replica sites."""

    def __init__(self, network: Optional[Network] = None) -> None:
        self.network = network
        self._elements: Dict[str, StorageElement] = {}

    def register(self, element: StorageElement) -> None:
        """Attach a site's storage element to the catalog."""
        self._elements[element.site_name] = element

    def element(self, site_name: str) -> StorageElement:
        """The storage element at a site (StorageError if unregistered)."""
        try:
            return self._elements[site_name]
        except KeyError:
            raise StorageError(f"no storage element registered at {site_name!r}") from None

    def publish(self, site_name: str, file: GridFile) -> None:
        """Store a file at a site and record the replica."""
        self.element(site_name).store(file)

    def snapshot_files(self) -> Dict[str, List[List[object]]]:
        """Every site's stored files — replicas published mid-run included."""
        return {site: el.snapshot_state() for site, el in self._elements.items()}

    def restore_files(self, state: Dict[str, List[List[object]]]) -> None:
        """Replace every site's files from :meth:`snapshot_files` output."""
        for site, files in state.items():
            self.element(site).restore_state(files)

    def replicas(self, name: str) -> Set[str]:
        """Sites currently holding a replica of logical file *name*."""
        return {s for s, el in self._elements.items() if el.has(name)}

    def lookup(self, name: str) -> GridFile:
        """Metadata for a logical file (StorageError if no replica exists)."""
        for el in self._elements.values():
            if el.has(name):
                return el.get(name)
        raise StorageError(f"no replica of {name!r} anywhere")

    def closest_replica(self, name: str, to_site: str) -> str:
        """Replica site with the cheapest transfer to *to_site*.

        Requires a network model; a replica already at *to_site* wins with
        zero cost.
        """
        sites = self.replicas(name)
        if not sites:
            raise StorageError(f"no replica of {name!r} anywhere")
        if to_site in sites:
            return to_site
        if self.network is None:
            # Deterministic fallback without a network: lexicographic.
            return sorted(sites)[0]
        size = self.lookup(name).size_mb
        best_site, best_cost = None, float("inf")
        for s in sorted(sites):
            try:
                cost = self.network.transfer_time(s, to_site, size)
            except NetworkError:
                continue
            if cost < best_cost:
                best_site, best_cost = s, cost
        if best_site is None:
            raise StorageError(f"no reachable replica of {name!r} from {to_site!r}")
        return best_site

    def stage_in_time(
        self, file_names: List[str], to_site: str, missing: str = "error"
    ) -> float:
        """Total ground-truth time to pull every named file to *to_site*.

        Files already local cost nothing.  Transfers are assumed sequential
        (the common single-GridFTP-stream case in 2005).

        ``missing="skip"`` ignores files with no replica anywhere — the
        scheduler uses this when ranking sites for a DAG task whose inputs
        are intermediate files an upstream task has not produced yet.
        """
        if missing not in ("error", "skip"):
            raise ValueError(f"missing must be 'error' or 'skip', got {missing!r}")
        if self.network is None:
            return 0.0
        total = 0.0
        for name in file_names:
            try:
                src = self.closest_replica(name, to_site)
            except StorageError:
                if missing == "skip":
                    continue
                raise
            if src == to_site:
                continue
            total += self.network.transfer_time(src, to_site, self.lookup(name).size_mb)
        return total
