"""Jobs, tasks, and concrete job plans.

Terminology follows the paper:

- a *task* is the atomic schedulable unit (§6.1: "an input task (the atomic
  component of a job)");
- a *job* is a set of tasks arranged in a directed acyclic graph (§2: "a
  large number of computing jobs are split up into a number of processing
  steps (arranged to follow a directed acyclic graph structure)");
- a *concrete job plan* is a job plan "precisely describing the nodes where
  the job will be executed" (§4.2.1), i.e. a binding of every task to an
  execution site.  The scheduler produces it and sends it to the steering
  service's Subscriber.

Task attributes deliberately mirror the SDSC Paragon accounting-trace fields
used in the paper's evaluation (account, login, partition, nodes, job type,
queue, requested CPU hours), because those are the features the runtime
estimator's similarity templates match on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class JobState(enum.Enum):
    """Lifecycle of a task (and, in aggregate, of a job).

    The control verbs in §4 map to transitions:
    ``kill`` → KILLED, ``pause`` → PAUSED, ``resume`` → RUNNING,
    ``move`` → MOVED at the old site + re-queued at the new one.
    """

    PENDING = "pending"        # created, not yet submitted anywhere
    QUEUED = "queued"          # waiting in an execution-site queue
    RUNNING = "running"        # accruing wall-clock time on a node
    PAUSED = "paused"          # suspended by a steering command
    COMPLETED = "completed"    # finished successfully
    FAILED = "failed"          # execution error or site failure
    KILLED = "killed"          # removed by a steering command
    MOVED = "moved"            # terminal at the old site after a move

    @property
    def is_terminal(self) -> bool:
        """True for states a task never leaves."""
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.KILLED, JobState.MOVED)

    @property
    def is_active(self) -> bool:
        """True while the task occupies queue or CPU at some site."""
        return self in (JobState.QUEUED, JobState.RUNNING, JobState.PAUSED)


class _IdCounter:
    """``itertools.count`` with an inspectable next value (checkpointable)."""

    __slots__ = ("next_value",)

    def __init__(self, start: int = 1) -> None:
        self.next_value = start

    def __next__(self) -> int:
        value = self.next_value
        self.next_value = value + 1
        return value


_task_counter = _IdCounter(1)
_job_counter = _IdCounter(1)


def _next_task_id() -> str:
    return f"task-{next(_task_counter):06d}"


def _next_job_id() -> str:
    return f"job-{next(_job_counter):06d}"


def reset_id_counters() -> None:
    """Reset the module-level id allocators (test isolation helper)."""
    _task_counter.next_value = 1
    _job_counter.next_value = 1


def snapshot_id_counters() -> Tuple[int, int]:
    """The next (task, job) id numbers the allocators would hand out."""
    return (_task_counter.next_value, _job_counter.next_value)


def restore_id_counters(task_next: int, job_next: int) -> None:
    """Re-seed the allocators so restored ids never collide with new ones."""
    _task_counter.next_value = int(task_next)
    _job_counter.next_value = int(job_next)


@dataclass(frozen=True)
class TaskSpec:
    """The externally visible description of a task.

    These are the attributes a scheduler and the runtime estimator can see
    *before* the task runs.  ``requested_cpu_hours`` is the user's request
    (as in the Paragon trace), not the true runtime.
    """

    owner: str = "anonymous"
    account: str = "default"
    partition: str = "compute"
    queue: str = "standard"
    nodes: int = 1
    task_type: str = "batch"            # "batch" | "interactive"
    requested_cpu_hours: float = 1.0
    executable: str = "a.out"
    arguments: Tuple[str, ...] = ()
    input_files: Tuple[str, ...] = ()
    output_files: Tuple[str, ...] = ()
    priority: int = 0
    environment: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.requested_cpu_hours <= 0:
            raise ValueError(
                f"requested_cpu_hours must be positive, got {self.requested_cpu_hours}"
            )
        if self.task_type not in ("batch", "interactive"):
            raise ValueError(f"unknown task_type {self.task_type!r}")
        # Freeze the environment mapping so the spec is hashable-by-value.
        object.__setattr__(self, "environment", dict(self.environment))

    def attributes(self) -> Dict[str, object]:
        """The attribute dictionary similarity templates match on."""
        return {
            "owner": self.owner,
            "account": self.account,
            "partition": self.partition,
            "queue": self.queue,
            "nodes": self.nodes,
            "task_type": self.task_type,
            "executable": self.executable,
        }

    def with_priority(self, priority: int) -> "TaskSpec":
        """Return a copy with a different priority (steering verb)."""
        return replace(self, priority=priority)


@dataclass
class Task:
    """A schedulable unit of work.

    ``work_seconds`` is the ground-truth CPU time the task needs on one free
    CPU.  It is *hidden state*: the estimator service may only learn it from
    completed history records, never read it directly — that discipline is
    what makes the Figure 5 experiment honest.
    """

    spec: TaskSpec
    work_seconds: float
    task_id: str = field(default_factory=_next_task_id)
    job_id: Optional[str] = None
    state: JobState = JobState.PENDING
    checkpointable: bool = False
    #: Size of the checkpoint image a move must ship (0 = negligible).
    checkpoint_image_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.work_seconds <= 0:
            raise ValueError(f"work_seconds must be positive, got {self.work_seconds}")

    @property
    def priority(self) -> int:
        return self.spec.priority

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Task({self.task_id}, {self.spec.executable}, "
            f"{self.work_seconds:.1f}s, {self.state.value})"
        )


class DependencyError(ValueError):
    """Raised for malformed task DAGs (cycles, unknown task ids)."""


@dataclass
class Job:
    """A DAG of tasks submitted as one unit.

    ``dependencies`` maps a task id to the ids of tasks that must complete
    first.  A job with no edges is an embarrassingly parallel bag of tasks.
    """

    tasks: List[Task]
    owner: str = "anonymous"
    job_id: str = field(default_factory=_next_job_id)
    dependencies: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a job must contain at least one task")
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise DependencyError("duplicate task ids inside one job")
        known = set(ids)
        for tid, parents in self.dependencies.items():
            if tid not in known:
                raise DependencyError(f"dependency for unknown task {tid!r}")
            for parent in parents:
                if parent not in known:
                    raise DependencyError(f"unknown parent task {parent!r}")
        self._assert_acyclic()
        for task in self.tasks:
            task.job_id = self.job_id

    def _assert_acyclic(self) -> None:
        # Kahn's algorithm; cheaper than importing networkx for a validity check.
        indegree = {t.task_id: 0 for t in self.tasks}
        children: Dict[str, List[str]] = {t.task_id: [] for t in self.tasks}
        for tid, parents in self.dependencies.items():
            for parent in parents:
                indegree[tid] += 1
                children[parent].append(tid)
        frontier = [tid for tid, deg in indegree.items() if deg == 0]
        seen = 0
        while frontier:
            tid = frontier.pop()
            seen += 1
            for child in children[tid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if seen != len(self.tasks):
            raise DependencyError("task dependency graph contains a cycle")

    # ------------------------------------------------------------------
    def task(self, task_id: str) -> Task:
        """Look a task up by id (raises KeyError if absent)."""
        for t in self.tasks:
            if t.task_id == task_id:
                return t
        raise KeyError(task_id)

    def parents(self, task_id: str) -> Tuple[str, ...]:
        """Ids of tasks that must complete before *task_id* may start."""
        return self.dependencies.get(task_id, ())

    def ready_tasks(self, completed: Iterable[str]) -> List[Task]:
        """Tasks whose parents all appear in *completed* and are PENDING."""
        done = set(completed)
        return [
            t
            for t in self.tasks
            if t.state is JobState.PENDING
            and t.task_id not in done
            and all(p in done for p in self.parents(t.task_id))
        ]

    def topological_order(self) -> List[Task]:
        """Tasks in an order compatible with the dependency DAG."""
        order: List[Task] = []
        done: set = set()
        remaining = {t.task_id: t for t in self.tasks}
        while remaining:
            progress = False
            for tid in list(remaining):
                if all(p in done for p in self.parents(tid)):
                    order.append(remaining.pop(tid))
                    done.add(tid)
                    progress = True
            if not progress:  # pragma: no cover - guarded by _assert_acyclic
                raise DependencyError("cycle detected during topological sort")
        return order

    @property
    def state(self) -> JobState:
        """Aggregate job state derived from task states.

        FAILED/KILLED dominate, then any in-flight activity, then COMPLETED
        only when every task completed.
        """
        states = {t.state for t in self.tasks}
        if JobState.FAILED in states:
            return JobState.FAILED
        if JobState.KILLED in states:
            return JobState.KILLED
        if JobState.RUNNING in states:
            return JobState.RUNNING
        if JobState.PAUSED in states:
            return JobState.PAUSED
        if JobState.QUEUED in states:
            return JobState.QUEUED
        if states == {JobState.COMPLETED}:
            return JobState.COMPLETED
        return JobState.PENDING


@dataclass(frozen=True)
class TaskBinding:
    """One row of a concrete job plan: task → execution site."""

    task_id: str
    site_name: str


@dataclass(frozen=True)
class ConcreteJobPlan:
    """A job plan "precisely describing the nodes where the job will be
    executed" (§4.2.1), produced by the scheduler and consumed by the
    steering service's Subscriber."""

    job_id: str
    bindings: Tuple[TaskBinding, ...]
    created_at: float = 0.0

    def site_for(self, task_id: str) -> str:
        """The site a task is bound to (KeyError if unbound)."""
        for b in self.bindings:
            if b.task_id == task_id:
                return b.site_name
        raise KeyError(task_id)

    def sites(self) -> List[str]:
        """Distinct execution sites used by the plan, in binding order."""
        seen: List[str] = []
        for b in self.bindings:
            if b.site_name not in seen:
                seen.append(b.site_name)
        return seen

    def rebind(self, task_id: str, new_site: str) -> "ConcreteJobPlan":
        """Return a plan with *task_id* moved to *new_site* (steering move)."""
        if task_id not in {b.task_id for b in self.bindings}:
            raise KeyError(task_id)
        bindings = tuple(
            TaskBinding(b.task_id, new_site if b.task_id == task_id else b.site_name)
            for b in self.bindings
        )
        return ConcreteJobPlan(job_id=self.job_id, bindings=bindings, created_at=self.created_at)


def sequential_job(specs: Sequence[TaskSpec], works: Sequence[float], owner: str = "anonymous") -> Job:
    """Build a chain job where each task depends on the previous one."""
    if len(specs) != len(works):
        raise ValueError("specs and works must have equal length")
    tasks = [Task(spec=s, work_seconds=w) for s, w in zip(specs, works)]
    deps = {
        tasks[i].task_id: (tasks[i - 1].task_id,)
        for i in range(1, len(tasks))
    }
    return Job(tasks=tasks, owner=owner, dependencies=deps)


def bag_of_tasks(specs: Sequence[TaskSpec], works: Sequence[float], owner: str = "anonymous") -> Job:
    """Build an embarrassingly parallel job (no dependencies)."""
    if len(specs) != len(works):
        raise ValueError("specs and works must have equal length")
    tasks = [Task(spec=s, work_seconds=w) for s, w in zip(specs, works)]
    return Job(tasks=tasks, owner=owner)


# ----------------------------------------------------------------------
# wire codecs (checkpoint/restore)
# ----------------------------------------------------------------------
def spec_to_wire(spec: TaskSpec) -> Dict[str, object]:
    """JSON-safe dict capturing every :class:`TaskSpec` field."""
    return {
        "owner": spec.owner,
        "account": spec.account,
        "partition": spec.partition,
        "queue": spec.queue,
        "nodes": spec.nodes,
        "task_type": spec.task_type,
        "requested_cpu_hours": spec.requested_cpu_hours,
        "executable": spec.executable,
        "arguments": list(spec.arguments),
        "input_files": list(spec.input_files),
        "output_files": list(spec.output_files),
        "priority": spec.priority,
        "environment": dict(spec.environment),
    }


def spec_from_wire(data: Mapping[str, object]) -> TaskSpec:
    """Inverse of :func:`spec_to_wire`."""
    fields_ = dict(data)
    for tuple_field in ("arguments", "input_files", "output_files"):
        fields_[tuple_field] = tuple(fields_.get(tuple_field, ()))  # type: ignore[arg-type]
    return TaskSpec(**fields_)  # type: ignore[arg-type]


def task_to_wire(task: Task) -> Dict[str, object]:
    """JSON-safe dict capturing one task, including hidden ground truth.

    Checkpoints are trusted system state, so ``work_seconds`` (the
    estimator-invisible truth) travels too — a restored grid must run
    the task for exactly the remaining time the original would have.
    """
    return {
        "spec": spec_to_wire(task.spec),
        "work_seconds": task.work_seconds,
        "task_id": task.task_id,
        "job_id": task.job_id,
        "state": task.state.value,
        "checkpointable": task.checkpointable,
        "checkpoint_image_mb": task.checkpoint_image_mb,
    }


def task_from_wire(data: Mapping[str, object]) -> Task:
    """Inverse of :func:`task_to_wire` (explicit id, no allocator draw)."""
    return Task(
        spec=spec_from_wire(data["spec"]),  # type: ignore[arg-type]
        work_seconds=data["work_seconds"],  # type: ignore[arg-type]
        task_id=data["task_id"],  # type: ignore[arg-type]
        job_id=data["job_id"],  # type: ignore[arg-type]
        state=JobState(data["state"]),
        checkpointable=bool(data["checkpointable"]),
        checkpoint_image_mb=data["checkpoint_image_mb"],  # type: ignore[arg-type]
    )


def plan_to_wire(plan: ConcreteJobPlan) -> Dict[str, object]:
    """JSON-safe dict capturing one concrete job plan."""
    return {
        "job_id": plan.job_id,
        "created_at": plan.created_at,
        "bindings": [[b.task_id, b.site_name] for b in plan.bindings],
    }


def plan_from_wire(data: Mapping[str, object]) -> ConcreteJobPlan:
    """Inverse of :func:`plan_to_wire`."""
    return ConcreteJobPlan(
        job_id=data["job_id"],  # type: ignore[arg-type]
        bindings=tuple(
            TaskBinding(task_id=task_id, site_name=site)
            for task_id, site in data["bindings"]  # type: ignore[union-attr]
        ),
        created_at=data["created_at"],  # type: ignore[arg-type]
    )


def job_to_wire(job: Job) -> Dict[str, object]:
    """JSON-safe dict capturing one job and all its tasks."""
    return {
        "job_id": job.job_id,
        "owner": job.owner,
        "description": job.description,
        "dependencies": {tid: list(parents) for tid, parents in job.dependencies.items()},
        "tasks": [task_to_wire(t) for t in job.tasks],
    }


def job_from_wire(data: Mapping[str, object]) -> Job:
    """Inverse of :func:`job_to_wire`.

    ``Job.__post_init__`` re-validates the DAG and re-stamps each task's
    ``job_id``; task states survive because they are set on the Task
    objects themselves.
    """
    return Job(
        tasks=[task_from_wire(t) for t in data["tasks"]],  # type: ignore[union-attr]
        owner=data["owner"],  # type: ignore[arg-type]
        job_id=data["job_id"],  # type: ignore[arg-type]
        dependencies={
            tid: tuple(parents)
            for tid, parents in data["dependencies"].items()  # type: ignore[union-attr]
        },
        description=data["description"],  # type: ignore[arg-type]
    )
