"""Event primitives for the discrete-event simulation kernel.

The kernel is intentionally small and classical: a binary heap of timestamped
events, each carrying a zero-argument callback.  Determinism is guaranteed by
a monotonically increasing sequence number that breaks ties between events
scheduled for the same instant, so two runs with the same seeds execute the
same event interleaving bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly."""


@dataclass(frozen=True)
class Event:
    """A single scheduled occurrence.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the event fires.
    seq:
        Tie-breaking sequence number; lower fires first at equal times.
    action:
        Zero-argument callable executed when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    """

    time: float
    seq: int
    action: Callable[[], None]
    label: str = ""

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventHandle:
    """A cancellable reference to a scheduled :class:`Event`.

    Cancellation is *lazy*: the underlying heap entry stays in place and is
    skipped when popped.  This keeps scheduling O(log n) with no heap
    surgery, which matters for the steering service's frequently re-armed
    poll timers.  The owning queue counts cancellations and compacts the
    heap once cancelled entries outnumber live ones, so a workload that
    re-arms timers forever cannot grow the heap without bound.
    """

    __slots__ = ("event", "_cancelled", "_queue")

    def __init__(self, event: Event, queue: Optional["EventQueue"] = None) -> None:
        self.event = event
        self._cancelled = False
        self._queue = queue

    @property
    def time(self) -> float:
        """Simulated time at which the referenced event fires."""
        return self.event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the referenced event from firing.

        Idempotent; cancelling an already-fired event has no effect on the
        past but marks the handle cancelled.
        """
        if self._cancelled:
            return
        self._cancelled = True
        if self._queue is not None:
            self._queue._note_cancel(self.event.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "armed"
        return f"EventHandle(t={self.event.time:.6g}, {self.event.label!r}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Events pop in ``(time, seq)`` order.  The queue never reorders equal
    keys: insertion order *is* execution order at a given instant.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._handles: dict[int, EventHandle] = {}
        self._counter: Iterator[int] = itertools.count()
        # Cancelled events still sitting in the heap.  Kept exact by
        # _note_cancel/peek/pop so __len__ is O(1) and compaction can
        # trigger the moment cancelled entries outnumber live ones.
        self._cancelled_pending = 0

    def __len__(self) -> int:
        # Cancelled events still occupy heap slots; report live events only.
        return len(self._heap) - self._cancelled_pending

    def _note_cancel(self, seq: int) -> None:
        """Handle-cancellation callback: count it, compact when dominant.

        Only counts events still pending (an already-fired event's seq is
        gone from ``_handles``).  Compaction drops every cancelled entry
        and re-heapifies — safe bit-for-bit because ``(time, seq)`` is a
        total order with unique ``seq``, so the surviving events pop in
        exactly the order they would have anyway.
        """
        if seq not in self._handles:
            return
        self._cancelled_pending += 1
        if self._cancelled_pending > len(self._heap) // 2:
            live = [ev for ev in self._heap if not self._handles[ev.seq].cancelled]
            for ev in self._heap:
                if self._handles[ev.seq].cancelled:
                    del self._handles[ev.seq]
            heapq.heapify(live)
            self._heap = live
            self._cancelled_pending = 0

    def __bool__(self) -> bool:
        return self.peek() is not None

    def push(self, time: float, action: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule *action* at absolute simulated *time*.

        Returns an :class:`EventHandle` that can cancel the event before it
        fires.
        """
        if time != time:  # NaN guard
            raise SimulationError("event time must not be NaN")
        event = Event(time=float(time), seq=next(self._counter), action=action, label=label)
        handle = EventHandle(event, self)
        heapq.heappush(self._heap, event)
        self._handles[event.seq] = handle
        return handle

    def peek(self) -> Optional[Event]:
        """Return the next live event without removing it, or ``None``."""
        while self._heap:
            head = self._heap[0]
            if self._handles[head.seq].cancelled:
                heapq.heappop(self._heap)
                del self._handles[head.seq]
                self._cancelled_pending -= 1
                continue
            return head
        return None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises
        ------
        SimulationError
            If the queue holds no live events.
        """
        head = self.peek()
        if head is None:
            raise SimulationError("pop from an empty event queue")
        heapq.heappop(self._heap)
        del self._handles[head.seq]
        return head

    def clear(self) -> None:
        """Drop every pending event (live and cancelled)."""
        self._heap.clear()
        self._handles.clear()
        self._cancelled_pending = 0


@dataclass
class TraceEntry:
    """One executed event, as recorded by :class:`repro.gridsim.clock.Simulator`."""

    time: float
    seq: int
    label: str = ""
    extras: dict = field(default_factory=dict)
