"""A facade wiring a whole simulated grid testbed together.

:class:`GridBuilder` gives examples and tests a concise way to declare a
testbed — sites, nodes, load profiles, links, replicas, flocking — and
:class:`Grid` exposes the assembled pieces:

>>> from repro.gridsim import GridBuilder
>>> grid = (
...     GridBuilder(seed=7)
...     .site("caltech", nodes=4, background_load=0.2)
...     .site("cern", nodes=8, background_load=1.5)
...     .link("caltech", "cern", capacity_mbps=622.0, latency_s=0.08)
...     .file("hits.db", size_mb=500.0, at="cern")
...     .build()
... )
>>> sorted(grid.sites)
['caltech', 'cern']

The higher-level GAE wiring (Clarens host + the three paper services) lives
in :mod:`repro.gae`; this module is pure substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.network import IperfProbe, Link, Network
from repro.gridsim.node import LoadProfile, Node
from repro.gridsim.rng import RngStreams
from repro.gridsim.scheduler import SphinxScheduler
from repro.gridsim.site import ChargeRates, Site
from repro.gridsim.storage import GridFile, ReplicaCatalog


@dataclass
class Grid:
    """An assembled simulated grid."""

    sim: Simulator
    rngs: RngStreams
    network: Network
    catalog: ReplicaCatalog
    sites: Dict[str, Site]
    execution_services: Dict[str, ExecutionService]
    scheduler: SphinxScheduler
    probe: IperfProbe
    #: The declarative recipe this grid was built from (JSON-safe).  A
    #: checkpoint stores it so :meth:`GridBuilder.from_spec` can rebuild
    #: an identical testbed before state is rehydrated into it.
    spec: Dict[str, object] = field(default_factory=dict)

    def site(self, name: str) -> Site:
        """Look up a site by name."""
        return self.sites[name]

    def execution_service(self, site_name: str) -> ExecutionService:
        """Look up a site's execution service."""
        return self.execution_services[site_name]

    def run_until(self, t: float) -> int:
        """Advance the simulation to time *t* (delegates to the simulator)."""
        return self.sim.run_until(t)

    def run(self) -> int:
        """Run the simulation until the event queue drains."""
        return self.sim.run()


@dataclass
class _SiteDecl:
    name: str
    nodes: int
    cpus_per_node: int
    background_load: float
    load_profile: Optional[LoadProfile]
    charge_rates: ChargeRates


class GridBuilder:
    """Fluent builder for :class:`Grid` testbeds."""

    def __init__(self, seed: int = 2005, start_time: float = 0.0, trace: bool = False) -> None:
        self._seed = seed
        self._start = start_time
        self._trace = trace
        self._sites: List[_SiteDecl] = []
        self._links: List[Link] = []
        self._files: List[Tuple[GridFile, str]] = []
        self._flocking: List[Tuple[str, str]] = []
        self._probe_noise = 0.05
        self._output_file_size_mb = 1.0

    def site(
        self,
        name: str,
        nodes: int = 1,
        cpus_per_node: int = 1,
        background_load: float = 0.0,
        load_profile: Optional[LoadProfile] = None,
        cpu_hour_rate: float = 1.0,
        idle_hour_rate: float = 0.1,
    ) -> "GridBuilder":
        """Declare a site.

        ``load_profile`` (if given) overrides the constant
        ``background_load`` and applies to every node at the site.
        """
        if any(d.name == name for d in self._sites):
            raise ValueError(f"site {name!r} declared twice")
        self._sites.append(
            _SiteDecl(
                name=name,
                nodes=nodes,
                cpus_per_node=cpus_per_node,
                background_load=background_load,
                load_profile=load_profile,
                charge_rates=ChargeRates(cpu_hour=cpu_hour_rate, idle_hour=idle_hour_rate),
            )
        )
        return self

    def link(
        self, a: str, b: str, capacity_mbps: float, latency_s: float = 0.01, utilization: float = 0.0
    ) -> "GridBuilder":
        """Declare a network link between two sites."""
        self._links.append(
            Link(a=a, b=b, capacity_mbps=capacity_mbps, latency_s=latency_s, utilization=utilization)
        )
        return self

    def file(self, name: str, size_mb: float, at: str) -> "GridBuilder":
        """Publish a replica of a logical file at a site."""
        self._files.append((GridFile(name=name, size_mb=size_mb), at))
        return self

    def flock(self, src: str, dst: str) -> "GridBuilder":
        """Allow idle jobs at *src* to flock to *dst*."""
        self._flocking.append((src, dst))
        return self

    def probe_noise(self, sigma: float) -> "GridBuilder":
        """Set the iperf probe's lognormal noise sigma (0 = perfect probe)."""
        self._probe_noise = sigma
        return self

    def output_file_size(self, size_mb: float) -> "GridBuilder":
        """Size assumed for task output files published as replicas."""
        if size_mb < 0:
            raise ValueError("output file size must be non-negative")
        self._output_file_size_mb = size_mb
        return self

    def spec(self) -> Dict[str, object]:
        """The builder's declarations as a JSON-safe recipe.

        ``GridBuilder.from_spec(builder.spec()).build()`` produces a
        structurally identical grid — the mechanism checkpoints use to
        rebuild the testbed before rehydrating state into it.
        """
        return {
            "seed": self._seed,
            "start_time": self._start,
            "trace": self._trace,
            "probe_noise": self._probe_noise,
            "output_file_size_mb": self._output_file_size_mb,
            "sites": [
                {
                    "name": decl.name,
                    "nodes": decl.nodes,
                    "cpus_per_node": decl.cpus_per_node,
                    "background_load": decl.background_load,
                    "load_profile": (
                        None
                        if decl.load_profile is None
                        else [list(seg) for seg in decl.load_profile.segments()]
                    ),
                    "cpu_hour_rate": decl.charge_rates.cpu_hour,
                    "idle_hour_rate": decl.charge_rates.idle_hour,
                }
                for decl in self._sites
            ],
            "links": [
                {
                    "a": link.a,
                    "b": link.b,
                    "capacity_mbps": link.capacity_mbps,
                    "latency_s": link.latency_s,
                    "utilization": link.utilization,
                }
                for link in self._links
            ],
            "files": [
                {"name": file.name, "size_mb": file.size_mb, "at": at}
                for file, at in self._files
            ],
            "flocking": [[src, dst] for src, dst in self._flocking],
        }

    @classmethod
    def from_spec(
        cls, spec: Dict[str, object], start_time: Optional[float] = None
    ) -> "GridBuilder":
        """Reconstruct a builder from :meth:`spec` output.

        ``start_time`` overrides the recorded start — a restore passes
        the checkpoint instant so the rebuilt simulator's clock begins
        where the snapshot was taken.
        """
        builder = cls(
            seed=spec["seed"],  # type: ignore[arg-type]
            start_time=(
                spec["start_time"] if start_time is None else start_time  # type: ignore[arg-type]
            ),
            trace=spec["trace"],  # type: ignore[arg-type]
        )
        builder._probe_noise = spec["probe_noise"]  # type: ignore[assignment]
        builder._output_file_size_mb = spec["output_file_size_mb"]  # type: ignore[assignment]
        for site in spec["sites"]:  # type: ignore[union-attr]
            builder.site(
                site["name"],
                nodes=site["nodes"],
                cpus_per_node=site["cpus_per_node"],
                background_load=site["background_load"],
                load_profile=(
                    None
                    if site["load_profile"] is None
                    else LoadProfile(
                        [(t, v) for t, v in site["load_profile"]]
                    )
                ),
                cpu_hour_rate=site["cpu_hour_rate"],
                idle_hour_rate=site["idle_hour_rate"],
            )
        for link in spec["links"]:  # type: ignore[union-attr]
            builder.link(
                link["a"],
                link["b"],
                capacity_mbps=link["capacity_mbps"],
                latency_s=link["latency_s"],
                utilization=link["utilization"],
            )
        for file in spec["files"]:  # type: ignore[union-attr]
            builder.file(file["name"], size_mb=file["size_mb"], at=file["at"])
        for src, dst in spec["flocking"]:  # type: ignore[union-attr]
            builder.flock(src, dst)
        return builder

    def build(self) -> Grid:
        """Assemble the grid."""
        if not self._sites:
            raise ValueError("a grid needs at least one site")
        sim = Simulator(start=self._start, trace=self._trace)
        rngs = RngStreams(seed=self._seed)
        network = Network()
        for decl in self._sites:
            network.add_site(decl.name)
        for link in self._links:
            network.add_link(link)
        catalog = ReplicaCatalog(network=network)

        sites: Dict[str, Site] = {}
        services: Dict[str, ExecutionService] = {}
        for decl in self._sites:
            profile = (
                decl.load_profile
                if decl.load_profile is not None
                else LoadProfile.constant(decl.background_load)
            )
            nodes = [
                Node(
                    name=f"{decl.name}-node{i:02d}",
                    cpu_count=decl.cpus_per_node,
                    load_profile=profile,
                )
                for i in range(decl.nodes)
            ]
            site = Site(sim, decl.name, nodes, charge_rates=decl.charge_rates)
            sites[decl.name] = site
            services[decl.name] = ExecutionService(site)
            catalog.register(site.storage)

        for file, at in self._files:
            catalog.publish(at, file)
        for src, dst in self._flocking:
            sites[src].pool.enable_flocking(sites[dst].pool)

        # A completed task's declared output files become replicas at the
        # site that ran it, so downstream DAG tasks can be ranked (and
        # charged) for staging them in.
        def publish_outputs(site_name: str):
            def on_complete(ad) -> None:
                for name in ad.task.spec.output_files:
                    try:
                        catalog.publish(
                            site_name,
                            GridFile(name=name, size_mb=self._output_file_size_mb),
                        )
                    except Exception:
                        pass  # storage full: outputs simply aren't replicated

            return on_complete

        for name, site in sites.items():
            site.pool.on_complete.append(publish_outputs(name))

        probe = IperfProbe(network, rng=rngs.stream("iperf"), noise_sigma=self._probe_noise)
        scheduler = SphinxScheduler(sim, replica_catalog=catalog)
        for name in sorted(services):
            scheduler.register_site(services[name])

        return Grid(
            sim=sim,
            rngs=rngs,
            network=network,
            catalog=catalog,
            sites=sites,
            execution_services=services,
            scheduler=scheduler,
            probe=probe,
            spec=self.spec(),
        )
