"""A Condor-like batch pool simulator.

This is the substrate standing in for the Condor pools the paper ran on
(§3: "an execution service (which can be based on any execution engine such
as Condor)").  It reproduces the Condor behaviours the paper's experiments
rely on:

- a priority queue of idle jobs (higher numeric priority runs first; FIFO
  within a priority level),
- per-job *accumulated wall-clock time* that advances only while the job
  actually receives CPU — the quantity §7 uses to chart job progress ("this
  'wall-clock' time does not include the time during which the job is idle
  and waiting for the CPU"),
- background CPU load on nodes diluting that accrual (Figure 7's site A),
- job-control verbs: suspend (pause), resume, kill (remove), change
  priority, and vacate-for-move,
- optional checkpointing: a vacated checkpointable job carries its accrued
  work to the next pool ("the job can be completed even quicker … if it is
  checkpoint-able and flocking is enabled", §7),
- flocking: a pool with no free slots may forward idle jobs to a friendly
  pool.

Finish times are computed *analytically* from piecewise-constant load
profiles (see :mod:`repro.gridsim.node`), so the simulation is exact — no
time-stepping error in any figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.gridsim.clock import Simulator
from repro.gridsim.events import EventHandle
from repro.gridsim.job import JobState, Task
from repro.gridsim.node import LoadProfile, Node


class CondorError(RuntimeError):
    """Raised for invalid job-control operations (unknown id, bad state)."""


@dataclass
class CondorJobAd:
    """The pool's bookkeeping record for one task (a Condor "ClassAd").

    ``accrued_work`` is the Condor accumulated-wall-clock counter: CPU
    seconds of useful work completed so far.  Progress fraction is
    ``accrued_work / task.work_seconds`` — exactly the paper's "if the job
    has accumulated 141 s of wall-clock time … roughly 50 % of the job is
    complete" for the 283 s prime job.
    """

    task: Task
    condor_id: int
    priority: int
    submit_time: float
    state: JobState = JobState.QUEUED
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    accrued_work: float = 0.0
    last_sync: Optional[float] = None
    #: Nodes holding this task's slots (several for a gang task).
    allocated: List[Node] = field(default_factory=list)
    #: Pointwise-max load profile across the allocated nodes.
    effective_profile: Optional[LoadProfile] = None
    input_io_mb: float = 0.0
    output_io_mb: float = 0.0
    local_output_files: List[str] = field(default_factory=list)
    _finish_handle: Optional[EventHandle] = None

    @property
    def task_id(self) -> str:
        return self.task.task_id

    @property
    def node(self) -> Optional[Node]:
        """The first allocated node (None while queued/terminal)."""
        return self.allocated[0] if self.allocated else None

    @property
    def slots_needed(self) -> int:
        """CPU slots this task occupies when running (spec.nodes)."""
        return self.task.spec.nodes

    @property
    def remaining_work(self) -> float:
        """CPU-seconds of work still to do."""
        return max(0.0, self.task.work_seconds - self.accrued_work)

    @property
    def progress(self) -> float:
        """Completed fraction in [0, 1]."""
        return min(1.0, self.accrued_work / self.task.work_seconds)

    def elapsed_runtime(self) -> float:
        """Accumulated wall-clock (CPU) time, Condor-style."""
        return self.accrued_work

    def sort_key(self) -> tuple:
        """Queue order: higher priority first, then FIFO by condor id."""
        return (-self.priority, self.condor_id)


class CondorPool:
    """A single site's batch pool.

    Parameters
    ----------
    sim:
        The owning discrete-event simulator.
    name:
        Pool (site) name, used in job ads and flocking.
    nodes:
        Worker nodes; each contributes ``cpu_count`` slots.
    """

    def __init__(self, sim: Simulator, name: str, nodes: List[Node]) -> None:
        if not nodes:
            raise ValueError("a pool needs at least one node")
        self.sim = sim
        self.name = name
        self.nodes = list(nodes)
        self._next_condor_id = 1
        self._ads: Dict[str, CondorJobAd] = {}          # task_id -> ad
        self._by_condor_id: Dict[int, CondorJobAd] = {}
        self._idle: List[CondorJobAd] = []              # queued, kept sorted
        self.archive: List[CondorJobAd] = []            # terminal ads displaced by resubmission
        self.flock_targets: List["CondorPool"] = []
        self.on_complete: List[Callable[[CondorJobAd], None]] = []
        self.on_failed: List[Callable[[CondorJobAd], None]] = []
        self.on_state_change: List[Callable[[CondorJobAd], None]] = []
        #: Fired when an idle job leaves this pool by flocking elsewhere.
        #: The ad's state is still QUEUED but the pool no longer owns it —
        #: incremental queue accounting subscribes here to drop the job's
        #: contribution from this pool's per-priority-band sums.
        self.on_forwarded: List[Callable[[CondorJobAd], None]] = []

    # ------------------------------------------------------------------
    # submission and dispatch
    # ------------------------------------------------------------------
    def submit(self, task: Task, initial_work: float = 0.0) -> int:
        """Enqueue *task*; returns its Condor id.

        ``initial_work`` seeds the accrued-work counter — used when a
        checkpointable job flocks/moves in from another pool.
        """
        if task.task_id in self._ads:
            old = self._ads[task.task_id]
            if not old.state.is_terminal:
                raise CondorError(
                    f"task {task.task_id} already submitted to pool {self.name}"
                )
            # A terminal earlier attempt is archived so the task may rerun
            # here (restart-on-same-site after a failure or kill).
            self.archive.append(old)
            del self._ads[task.task_id]
            del self._by_condor_id[old.condor_id]
        if initial_work < 0 or initial_work > task.work_seconds:
            raise CondorError(
                f"initial_work {initial_work!r} outside [0, {task.work_seconds}]"
            )
        if task.spec.nodes > self.total_slots and not self.flock_targets:
            raise CondorError(
                f"task {task.task_id} needs {task.spec.nodes} slots but pool "
                f"{self.name} only has {self.total_slots}"
            )
        ad = CondorJobAd(
            task=task,
            condor_id=self._next_condor_id,
            priority=task.spec.priority,
            submit_time=self.sim.now,
            accrued_work=initial_work,
        )
        self._next_condor_id += 1
        self._ads[task.task_id] = ad
        self._by_condor_id[ad.condor_id] = ad
        task.state = JobState.QUEUED
        ad.state = JobState.QUEUED
        self._idle.append(ad)
        self._idle.sort(key=CondorJobAd.sort_key)
        self._notify_state(ad)
        self._try_dispatch()
        return ad.condor_id

    def _free_slots_total(self) -> int:
        return sum(node.free_slots for node in self.nodes)

    def _try_dispatch(self) -> None:
        # Strict order: the head of the queue runs first.  No backfilling —
        # that keeps the Queue Time Estimator's §6.2 semantics honest (the
        # per-slot division option models drain rate instead).
        while self._idle:
            head = self._idle[0]
            if head.slots_needed > self._free_slots_total():
                self._try_flock()
                return
            self._idle.pop(0)
            self._start(head)

    def _reachable_capacity(self, need: int, visited: frozenset) -> bool:
        """Whether any pool reachable over flock edges can seat *need* slots."""
        for p in self.flock_targets:
            if id(p) in visited:
                continue
            if p._free_slots_total() >= need:
                return True
            if p._reachable_capacity(need, visited | {id(p)}):
                return True
        return False

    def _try_flock(self) -> None:
        """Forward idle jobs toward friendly pools with free slots.

        Flocking cascades: a job handed to a full neighbour keeps moving
        along the flock chain as long as capacity is reachable somewhere
        (cycle-safe via the visited set), as Condor flocking chains do.
        """
        if not self.flock_targets:
            return
        still_idle: List[CondorJobAd] = []
        for ad in self._idle:
            target: Optional["CondorPool"] = None
            for p in self.flock_targets:
                if p._free_slots_total() >= ad.slots_needed or p._reachable_capacity(
                    ad.slots_needed, frozenset({id(self), id(p)})
                ):
                    target = p
                    break
            if target is None:
                still_idle.append(ad)
                continue
            # Hand the job over: it leaves this pool entirely.  The target's
            # own dispatch forwards it onward if the target is full.
            del self._ads[ad.task_id]
            del self._by_condor_id[ad.condor_id]
            for cb in list(self.on_forwarded):
                cb(ad)
            carried = ad.accrued_work if ad.task.checkpointable else 0.0
            target.submit(ad.task, initial_work=carried)
        self._idle = still_idle

    def _start(self, ad: CondorJobAd) -> None:
        # Greedy slot allocation across nodes; a gang task may span several.
        remaining = ad.slots_needed
        for node in self.nodes:
            if remaining == 0:
                break
            take = min(node.free_slots, remaining)
            if take > 0:
                node.occupy(ad.task_id, slots=take)
                ad.allocated.append(node)
                remaining -= take
        assert remaining == 0, "dispatch guaranteed enough free slots"
        ad.effective_profile = LoadProfile.combine_max(
            [n.load_profile for n in ad.allocated]
        )
        ad.state = JobState.RUNNING
        ad.task.state = JobState.RUNNING
        if ad.start_time is None:
            ad.start_time = self.sim.now
        ad.last_sync = self.sim.now
        self._arm_finish(ad)
        self._notify_state(ad)

    def _arm_finish(self, ad: CondorJobAd) -> None:
        assert ad.effective_profile is not None
        delay = ad.effective_profile.time_to_accrue(self.sim.now, ad.remaining_work)
        ad._finish_handle = self.sim.schedule(
            delay, lambda: self._finish(ad), label=f"finish:{ad.task_id}@{self.name}"
        )

    def _sync(self, ad: CondorJobAd) -> None:
        """Bring the accrued-work counter up to the current instant."""
        if (
            ad.state is not JobState.RUNNING
            or ad.last_sync is None
            or ad.effective_profile is None
        ):
            return
        ad.accrued_work = min(
            ad.task.work_seconds,
            ad.accrued_work
            + ad.effective_profile.work_between(ad.last_sync, self.sim.now),
        )
        ad.last_sync = self.sim.now

    def _finish(self, ad: CondorJobAd) -> None:
        self._sync(ad)
        ad.state = JobState.COMPLETED
        ad.task.state = JobState.COMPLETED
        ad.end_time = self.sim.now
        ad.output_io_mb = sum(1.0 for _ in ad.task.spec.output_files)  # 1 MB/file default
        ad.local_output_files = list(ad.task.spec.output_files)
        self._release(ad)
        for cb in list(self.on_complete):
            cb(ad)
        self._notify_state(ad)
        self._try_dispatch()

    def _release(self, ad: CondorJobAd) -> None:
        for node in ad.allocated:
            node.release(ad.task_id)
        ad.allocated = []
        ad.effective_profile = None
        ad._finish_handle = None

    def _notify_state(self, ad: CondorJobAd) -> None:
        for cb in list(self.on_state_change):
            cb(ad)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def ad(self, task_id: str) -> CondorJobAd:
        """The job ad for a task id (CondorError if unknown)."""
        try:
            return self._ads[task_id]
        except KeyError:
            raise CondorError(f"no task {task_id!r} in pool {self.name}") from None

    def ad_by_condor_id(self, condor_id: int) -> CondorJobAd:
        """The job ad for a Condor id (CondorError if unknown)."""
        try:
            return self._by_condor_id[condor_id]
        except KeyError:
            raise CondorError(f"no condor id {condor_id} in pool {self.name}") from None

    def has_task(self, task_id: str) -> bool:
        """Whether this pool knows the task."""
        return task_id in self._ads

    def status(self, task_id: str) -> CondorJobAd:
        """The up-to-date ad (accrual synced to now) for a task."""
        ad = self.ad(task_id)
        self._sync(ad)
        return ad

    def queue_snapshot(self) -> List[CondorJobAd]:
        """Idle (queued) ads in dispatch order."""
        return list(self._idle)

    def running_snapshot(self) -> List[CondorJobAd]:
        """Currently running ads (accruals synced), in condor-id order."""
        running = [ad for ad in self._ads.values() if ad.state is JobState.RUNNING]
        for ad in running:
            self._sync(ad)
        return sorted(running, key=lambda a: a.condor_id)

    def queue_position(self, task_id: str) -> int:
        """0-based position in the idle queue; -1 if not queued."""
        for i, ad in enumerate(self._idle):
            if ad.task_id == task_id:
                return i
        return -1

    def tasks_ahead_of(self, task_id: str) -> List[CondorJobAd]:
        """Ads that will complete before the given queued task can start.

        This is the input set of the Queue Time Estimator (§6.2): every
        running job plus every queued job with higher priority (or equal
        priority but earlier submission).  A task that is already running
        (or finished) has nothing ahead of it.
        """
        ad = self.ad(task_id)
        if ad.state is not JobState.QUEUED:
            return []
        ahead = [a for a in self.running_snapshot() if a.task_id != task_id]
        for other in self._idle:
            if other.task_id == task_id:
                continue
            if other.sort_key() < ad.sort_key():
                ahead.append(other)
        return ahead

    @property
    def total_slots(self) -> int:
        """Total CPU slots across all nodes."""
        return sum(n.cpu_count for n in self.nodes)

    @property
    def busy_slots(self) -> int:
        """Slots currently running a task."""
        return sum(len(n.running_task_ids) for n in self.nodes)

    def current_load(self) -> float:
        """Pool load indicator published to MonALISA.

        Combines slot occupancy with node background load: 0 means an empty,
        idle pool; values >1 mean oversubscription (queued work waiting).
        """
        bg = sum(n.load_at(self.sim.now) for n in self.nodes) / len(self.nodes)
        occupancy = self.busy_slots / self.total_slots
        queued = len(self._idle) / self.total_slots
        return bg + occupancy + queued

    # ------------------------------------------------------------------
    # job-control verbs (the steering service's command set)
    # ------------------------------------------------------------------
    def pause(self, task_id: str) -> None:
        """Suspend a running task (keeps its slot, Condor-suspend style)."""
        ad = self.ad(task_id)
        if ad.state is not JobState.RUNNING:
            raise CondorError(f"cannot pause task in state {ad.state.value}")
        self._sync(ad)
        if ad._finish_handle is not None:
            ad._finish_handle.cancel()
            ad._finish_handle = None
        ad.state = JobState.PAUSED
        ad.task.state = JobState.PAUSED
        self._notify_state(ad)

    def resume(self, task_id: str) -> None:
        """Resume a paused task on its retained slot."""
        ad = self.ad(task_id)
        if ad.state is not JobState.PAUSED:
            raise CondorError(f"cannot resume task in state {ad.state.value}")
        ad.state = JobState.RUNNING
        ad.task.state = JobState.RUNNING
        ad.last_sync = self.sim.now
        self._arm_finish(ad)
        self._notify_state(ad)

    def kill(self, task_id: str) -> None:
        """Remove a task from the pool (condor_rm)."""
        ad = self.ad(task_id)
        if ad.state.is_terminal:
            raise CondorError(f"cannot kill task in state {ad.state.value}")
        self._terminate(ad, JobState.KILLED)

    def vacate(self, task_id: str) -> CondorJobAd:
        """Evict a task so it can be moved to another pool.

        Returns the final ad; the caller reads ``accrued_work`` to carry
        progress forward when the task is checkpointable.
        """
        ad = self.ad(task_id)
        if ad.state.is_terminal:
            raise CondorError(f"cannot vacate task in state {ad.state.value}")
        self._terminate(ad, JobState.MOVED)
        return ad

    def fail_task(self, task_id: str) -> None:
        """Force a task failure (failure-injection hook)."""
        ad = self.ad(task_id)
        if ad.state.is_terminal:
            raise CondorError(f"cannot fail task in state {ad.state.value}")
        self._terminate(ad, JobState.FAILED)
        for cb in list(self.on_failed):
            cb(ad)

    def crash(self) -> List[CondorJobAd]:
        """Take the whole pool down: every non-terminal task fails.

        Returns the failed ads.  Used to exercise the steering service's
        Backup & Recovery module.
        """
        victims = [ad for ad in self._ads.values() if not ad.state.is_terminal]
        for ad in victims:
            self._terminate(ad, JobState.FAILED)
            for cb in list(self.on_failed):
                cb(ad)
        return victims

    def _terminate(self, ad: CondorJobAd, final_state: JobState) -> None:
        if ad.state is JobState.RUNNING:
            self._sync(ad)
        if ad._finish_handle is not None:
            ad._finish_handle.cancel()
        if ad in self._idle:
            self._idle.remove(ad)
        if ad.allocated:
            self._release(ad)
        ad.state = final_state
        ad.task.state = final_state
        ad.end_time = self.sim.now
        self._notify_state(ad)
        self._try_dispatch()

    def set_priority(self, task_id: str, priority: int) -> None:
        """Change a task's priority; re-sorts the idle queue if needed."""
        ad = self.ad(task_id)
        if ad.state.is_terminal:
            raise CondorError(f"cannot reprioritise task in state {ad.state.value}")
        ad.priority = int(priority)
        ad.task.spec = ad.task.spec.with_priority(int(priority))
        if ad in self._idle:
            self._idle.sort(key=CondorJobAd.sort_key)
        self._notify_state(ad)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def _ad_to_wire(self, ad: CondorJobAd) -> Dict[str, object]:
        return {
            "task_id": ad.task_id,
            "condor_id": ad.condor_id,
            "priority": ad.priority,
            "submit_time": ad.submit_time,
            "state": ad.state.value,
            "start_time": ad.start_time,
            "end_time": ad.end_time,
            "accrued_work": ad.accrued_work,
            "last_sync": ad.last_sync,
            # Slot allocation survives by (node name, slot count); the
            # effective profile is recomputed on restore.
            "allocated": [
                [node.name, node.running_task_ids.count(ad.task_id)]
                for node in ad.allocated
            ],
            "input_io_mb": ad.input_io_mb,
            "output_io_mb": ad.output_io_mb,
            "local_output_files": list(ad.local_output_files),
        }

    @staticmethod
    def _ad_from_wire(
        data: Dict[str, object], task_resolver: Callable[[str], Task]
    ) -> CondorJobAd:
        return CondorJobAd(
            task=task_resolver(data["task_id"]),  # type: ignore[arg-type]
            condor_id=int(data["condor_id"]),  # type: ignore[arg-type]
            priority=int(data["priority"]),  # type: ignore[arg-type]
            submit_time=data["submit_time"],  # type: ignore[assignment]
            state=JobState(data["state"]),
            start_time=data["start_time"],  # type: ignore[assignment]
            end_time=data["end_time"],  # type: ignore[assignment]
            accrued_work=data["accrued_work"],  # type: ignore[assignment]
            last_sync=data["last_sync"],  # type: ignore[assignment]
            input_io_mb=data["input_io_mb"],  # type: ignore[assignment]
            output_io_mb=data["output_io_mb"],  # type: ignore[assignment]
            local_output_files=list(data["local_output_files"]),  # type: ignore[arg-type]
        )

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-safe snapshot of all pool bookkeeping.

        Running accruals are synced to *now* first, so the snapshot is
        exact at the checkpoint instant.  Tasks are referenced by id —
        the scheduler checkpoint owns the task objects themselves.
        """
        for ad in self._ads.values():
            self._sync(ad)
        return {
            "next_condor_id": self._next_condor_id,
            "ads": [self._ad_to_wire(ad) for ad in self._ads.values()],
            "idle": [ad.task_id for ad in self._idle],
            "archive": [self._ad_to_wire(ad) for ad in self.archive],
        }

    def restore_state(
        self, state: Dict[str, object], task_resolver: Callable[[str], Task]
    ) -> None:
        """Rebuild the pool from :meth:`snapshot_state` output.

        A restore replays *state*, not events: no callbacks fire and no
        dispatch pass runs.  RUNNING ads re-occupy their recorded slots
        and re-arm their analytic finish events from the remaining work;
        PAUSED ads keep their slots with the finish event disarmed, as
        a live suspend leaves them.
        """
        by_name = {node.name: node for node in self.nodes}
        self._next_condor_id = int(state["next_condor_id"])  # type: ignore[arg-type]
        self._ads = {}
        self._by_condor_id = {}
        self._idle = []
        self.archive = [
            self._ad_from_wire(wire, task_resolver)
            for wire in state["archive"]  # type: ignore[union-attr]
        ]
        for wire in state["ads"]:  # type: ignore[union-attr]
            ad = self._ad_from_wire(wire, task_resolver)
            self._ads[ad.task_id] = ad
            self._by_condor_id[ad.condor_id] = ad
            if ad.state in (JobState.RUNNING, JobState.PAUSED):
                for node_name, slots in wire["allocated"]:
                    node = by_name[node_name]
                    node.occupy(ad.task_id, slots=int(slots))
                    ad.allocated.append(node)
                ad.effective_profile = LoadProfile.combine_max(
                    [n.load_profile for n in ad.allocated]
                )
            if ad.state is JobState.RUNNING:
                ad.last_sync = self.sim.now
                self._arm_finish(ad)
        self._idle = [self._ads[task_id] for task_id in state["idle"]]  # type: ignore[union-attr]

    def enable_flocking(self, *pools: "CondorPool") -> None:
        """Allow idle jobs to flock to the given pools when this one is full."""
        for pool in pools:
            if pool is self:
                raise CondorError("a pool cannot flock to itself")
            if pool not in self.flock_targets:
                self.flock_targets.append(pool)
