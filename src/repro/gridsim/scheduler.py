"""A Sphinx-like scheduling middleware.

Sphinx (the GAE scheduler the paper integrates with) is substituted by
:class:`SphinxScheduler`, which implements the §6.1 scheduling protocol
verbatim:

a. contact the available execution sites and pass the task's attributes to
   each site's execution service,
b. each execution service estimates the task's run time with its site-local
   estimator,
c. the estimate is returned to the scheduler,
d. the scheduler contacts the (MonALISA-style) load oracle for the load at
   each site,
e. the scheduler selects the site with the least estimated run time and the
   minimum queue time.

On submission the scheduler emits a *concrete job plan* (task → site
bindings) to its plan listeners — the steering service's Subscriber is the
canonical listener (§4.2.1).  It also services redirect requests ("Requests
for job redirection are sent to the scheduler", §4.2.2) and resubmission
after execution-service failure ("the Backup and Recovery module contacts
Sphinx to allocate a new execution service. The scheduler will then resubmit
the job", §4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.gridsim.clock import Simulator
from repro.gridsim.condor import CondorJobAd
from repro.gridsim.execution import ExecutionService, ExecutionServiceDown
from repro.gridsim.job import (
    ConcreteJobPlan,
    Job,
    JobState,
    Task,
    TaskBinding,
    job_from_wire,
    job_to_wire,
    plan_from_wire,
    plan_to_wire,
)
from repro.gridsim.storage import ReplicaCatalog


class SchedulingError(RuntimeError):
    """Raised when no site can run a task, or for unknown jobs/tasks."""


@dataclass
class SiteRank:
    """One site's score for a task, with the ingredients that produced it."""

    site_name: str
    score: float
    estimated_runtime: float
    load: float
    stage_in_time: float = 0.0


def default_ranking(estimated_runtime: float, load: float, stage_in_time: float) -> float:
    """The default site score: smaller is better.

    Expected completion ≈ runtime stretched by current load, plus the time
    to stage input data in.  This is the paper's "least estimated run time
    and … queue time … a minimum" folded into one comparable number (load is
    the queue-time proxy MonALISA provides in step d).
    """
    return estimated_runtime * (1.0 + load) + stage_in_time


@dataclass
class _JobEntry:
    job: Job
    plan: ConcreteJobPlan
    completed: Set[str] = field(default_factory=set)
    submitted: Set[str] = field(default_factory=set)


class SphinxScheduler:
    """Schedules jobs over a set of execution services.

    Parameters
    ----------
    sim:
        The discrete-event simulator.
    load_oracle:
        Callable ``site_name -> float`` returning current load (step d of
        §6.1).  Defaults to asking the execution service directly; the GAE
        wiring replaces it with the MonALISA repository.
    replica_catalog:
        Optional catalog used to charge input-staging time in site ranking.
    ranking:
        Score function ``(runtime, load, stage_in) -> float``; lower wins.
    fallback_runtime:
        Estimate assumed for a site whose estimator is missing (the paper
        notes estimator availability per site is optional).
    """

    def __init__(
        self,
        sim: Simulator,
        load_oracle: Optional[Callable[[str], float]] = None,
        replica_catalog: Optional[ReplicaCatalog] = None,
        ranking: Callable[[float, float, float], float] = default_ranking,
        fallback_runtime: float = 3600.0,
        simulate_stage_in: bool = True,
    ) -> None:
        self.sim = sim
        self.load_oracle = load_oracle
        self.replica_catalog = replica_catalog
        self.ranking = ranking
        self.fallback_runtime = fallback_runtime
        #: When true (and a replica catalog is wired), a task with remote
        #: input files spends the ground-truth transfer time *staging in*
        #: before it reaches the site queue — the §7 "time taken to
        #: transfer the data files needed by the job" made real.
        self.simulate_stage_in = simulate_stage_in
        #: task_id -> (site, stage-in finish time) for in-flight transfers.
        self.staging: Dict[str, Tuple[str, float]] = {}
        #: task_id -> accrued work the in-flight task carries to its site.
        #: Parallel to :attr:`staging`; a checkpoint needs it to re-arm the
        #: delivery with the same seed work the interrupted transfer held.
        self._staging_work: Dict[str, float] = {}
        #: Commitment tracking: task_id -> site it is currently counted
        #: against.  The load oracle (MonALISA) is only as fresh as its
        #: publish period, and zero-age when a whole job is planned in one
        #: instant — without this term every tied task lands on the same
        #: site.  Sphinx balanced; so do we.
        self.commitment_aware = True
        self._commitments: Dict[str, str] = {}
        self._services: Dict[str, ExecutionService] = {}
        self._jobs: Dict[str, _JobEntry] = {}
        self._task_index: Dict[str, str] = {}  # task_id -> job_id
        self.plan_listeners: List[Callable[[ConcreteJobPlan, Job], None]] = []
        self.completion_listeners: List[Callable[[Task, str], None]] = []
        # Called as (task, site_name) right after every pool submission —
        # the estimator service uses this to record its at-submission
        # runtime estimate (§6.2 step c).
        self.submission_listeners: List[Callable[[Task, str], None]] = []
        # Called as (task, site_name, delay_s, kind) whenever a task's data
        # goes in flight before it can queue; ``kind`` is "input" for
        # stage-in and "ckpt-image" for checkpoint-image transfers during a
        # move.  The observability layer turns these into transfer spans.
        self.staging_listeners: List[Callable[[Task, str, float, str], None]] = []

    # ------------------------------------------------------------------
    # site registry
    # ------------------------------------------------------------------
    def register_site(self, service: ExecutionService) -> None:
        """Make an execution site available for scheduling."""
        name = service.site.name
        if name in self._services:
            raise SchedulingError(f"site {name!r} already registered")
        self._services[name] = service
        service.pool.on_complete.append(self._on_task_complete)

        def on_state_change(ad) -> None:
            if ad.state.is_terminal:
                self._commitments.pop(ad.task_id, None)
            elif ad.state is JobState.QUEUED:
                self._note_arrival(ad.task_id, name)

        service.pool.on_state_change.append(on_state_change)

    def sites(self) -> List[str]:
        """Registered site names."""
        return sorted(self._services)

    def service(self, site_name: str) -> ExecutionService:
        """The execution service at a site (SchedulingError if unknown)."""
        try:
            return self._services[site_name]
        except KeyError:
            raise SchedulingError(f"unknown site {site_name!r}") from None

    # ------------------------------------------------------------------
    # site selection (§6.1 a–e)
    # ------------------------------------------------------------------
    def rank_sites(
        self, task: Task, exclude: Iterable[str] = ()
    ) -> List[SiteRank]:
        """Score every reachable site for *task*; best (lowest) first."""
        excluded = set(exclude)
        ranks: List[SiteRank] = []
        for name in sorted(self._services):
            if name in excluded:
                continue
            service = self._services[name]
            try:
                service.ping()
            except ExecutionServiceDown:
                continue
            # A gang task can never start on a site with fewer total slots
            # than it needs (unless the pool can flock it away).
            if (
                task.spec.nodes > service.pool.total_slots
                and not service.pool.flock_targets
            ):
                continue
            if service.has_estimator:
                try:
                    runtime = service.estimate_runtime(task.spec)
                except (RuntimeError, ValueError):
                    runtime = self.fallback_runtime
            else:
                runtime = self.fallback_runtime
            if self.load_oracle is not None:
                load = float(self.load_oracle(name))
            else:
                load = service.current_load()
            if self.commitment_aware:
                committed = sum(1 for s in self._commitments.values() if s == name)
                load += committed / max(1, service.pool.total_slots)
            stage_in = 0.0
            if self.replica_catalog is not None and task.spec.input_files:
                # Inputs of downstream DAG tasks may not exist yet; they
                # contribute no ranking signal until produced.
                stage_in = self.replica_catalog.stage_in_time(
                    list(task.spec.input_files), name, missing="skip"
                )
            ranks.append(
                SiteRank(
                    site_name=name,
                    score=self.ranking(runtime, load, stage_in),
                    estimated_runtime=runtime,
                    load=load,
                    stage_in_time=stage_in,
                )
            )
        ranks.sort(key=lambda r: (r.score, r.site_name))
        return ranks

    def select_site(self, task: Task, exclude: Iterable[str] = ()) -> str:
        """Best site for *task* (SchedulingError when none are available)."""
        ranks = self.rank_sites(task, exclude=exclude)
        if not ranks:
            raise SchedulingError(
                f"no execution site available for task {task.task_id}"
            )
        return ranks[0].site_name

    # ------------------------------------------------------------------
    # job submission
    # ------------------------------------------------------------------
    def submit_job(self, job: Job) -> ConcreteJobPlan:
        """Plan and launch a job.

        Produces a concrete job plan binding every task to its chosen site,
        notifies plan listeners (the steering Subscriber), and submits every
        dependency-free task immediately.
        """
        if job.job_id in self._jobs:
            raise SchedulingError(f"job {job.job_id} already submitted")
        binding_list = []
        for t in job.topological_order():
            site = self.select_site(t)
            binding_list.append(TaskBinding(task_id=t.task_id, site_name=site))
            # Count the binding immediately so the next task in this same
            # plan sees the site as busier (intra-plan load balancing).
            self._commitments[t.task_id] = site
        bindings = tuple(binding_list)
        plan = ConcreteJobPlan(job_id=job.job_id, bindings=bindings, created_at=self.sim.now)
        entry = _JobEntry(job=job, plan=plan)
        self._jobs[job.job_id] = entry
        for t in job.tasks:
            self._task_index[t.task_id] = job.job_id
        self._emit_plan(entry)
        self._submit_ready(entry)
        return plan

    def _emit_plan(self, entry: _JobEntry) -> None:
        for listener in list(self.plan_listeners):
            listener(entry.plan, entry.job)

    def _submit_ready(self, entry: _JobEntry) -> None:
        for task in entry.job.ready_tasks(entry.completed):
            if task.task_id in entry.submitted:
                continue
            site_name = entry.plan.site_for(task.task_id)
            self._submit_to(entry, task, site_name)

    def _submit_to(self, entry: _JobEntry, task: Task, site_name: str, initial_work: float = 0.0) -> None:
        delay = self._stage_in_delay(task, site_name)
        entry.submitted.add(task.task_id)
        self._commitments[task.task_id] = site_name
        if delay <= 0.0:
            self._deliver(task, site_name, initial_work)
            return
        # The input data is in flight; the task reaches the queue when the
        # last file lands.
        self.staging[task.task_id] = (site_name, self.sim.now + delay)
        self._staging_work[task.task_id] = initial_work
        self._emit_staging(task, site_name, delay, "input")

        def deliver() -> None:
            self.staging.pop(task.task_id, None)
            self._staging_work.pop(task.task_id, None)
            # The task may have been killed (or re-routed) while its data
            # was in flight; a terminal task must not rise from the dead.
            if task.state.is_terminal:
                return
            self._deliver(task, site_name, initial_work)

        self.sim.schedule(delay, deliver, label=f"stage-in:{task.task_id}->{site_name}")

    def _emit_staging(self, task: Task, site_name: str, delay: float, kind: str) -> None:
        for listener in list(self.staging_listeners):
            listener(task, site_name, delay, kind)

    def _deliver(self, task: Task, site_name: str, initial_work: float) -> None:
        service = self.service(site_name)
        service.submit_task(task, initial_work=initial_work)
        for listener in list(self.submission_listeners):
            listener(task, site_name)

    def _stage_in_delay(self, task: Task, site_name: str) -> float:
        if (
            not self.simulate_stage_in
            or self.replica_catalog is None
            or not task.spec.input_files
        ):
            return 0.0
        return self.replica_catalog.stage_in_time(
            list(task.spec.input_files), site_name, missing="skip"
        )

    def _note_arrival(self, task_id: str, site_name: str) -> None:
        """Keep the plan honest when Condor flocking moves a queued task.

        Flocking happens entirely inside the pools; without this hook the
        concrete plan would keep binding the task to the pool it left, so
        steering verbs (pause/move/kill) would be sent to the wrong site.
        On arrival at an unplanned pool the binding is updated and the
        revised plan re-emitted to the plan listeners (the Subscriber).
        """
        job_id = self._task_index.get(task_id)
        if job_id is None:
            return  # a task submitted around the scheduler
        entry = self._jobs[job_id]
        if entry.plan.site_for(task_id) == site_name:
            return
        entry.plan = entry.plan.rebind(task_id, site_name)
        self._commitments[task_id] = site_name
        self._emit_plan(entry)

    def _on_task_complete(self, ad: CondorJobAd) -> None:
        job_id = self._task_index.get(ad.task_id)
        if job_id is None:
            return  # a task submitted around the scheduler
        entry = self._jobs[job_id]
        entry.completed.add(ad.task_id)
        for listener in list(self.completion_listeners):
            listener(ad.task, entry.plan.site_for(ad.task_id))
        self._submit_ready(entry)

    # ------------------------------------------------------------------
    # redirection and resubmission
    # ------------------------------------------------------------------
    def redirect_task(
        self,
        task_id: str,
        new_site: Optional[str] = None,
        carry_work: float = 0.0,
        image_size_mb: float = 0.0,
    ) -> str:
        """Move a (vacated) task to a new site; returns the site chosen.

        The caller — the steering service — must already have vacated the
        task at its old site.  ``carry_work`` is the checkpointed progress
        to seed at the new site (0 for non-checkpointable tasks);
        ``image_size_mb`` is the checkpoint image that must travel from the
        old site first, charged as real simulated transfer time (§7: "the
        time taken to transfer the data files needed by the job").
        """
        entry = self._entry_for_task(task_id)
        task = entry.job.task(task_id)
        old_site = entry.plan.site_for(task_id)
        if new_site is None:
            new_site = self.select_site(task, exclude={old_site})
        elif new_site not in self._services:
            raise SchedulingError(f"unknown target site {new_site!r}")
        entry.plan = entry.plan.rebind(task_id, new_site)
        task.state = JobState.PENDING
        image_delay = self._image_transfer_delay(old_site, new_site, image_size_mb)
        if image_delay > 0.0:
            self.staging[task.task_id] = (new_site, self.sim.now + image_delay)
            self._staging_work[task.task_id] = carry_work
            self._emit_staging(task, new_site, image_delay, "ckpt-image")

            def deliver() -> None:
                self.staging.pop(task.task_id, None)
                self._staging_work.pop(task.task_id, None)
                if task.state.is_terminal:
                    return  # killed while the checkpoint image was in flight
                entry.submitted.add(task.task_id)
                self._deliver(task, new_site, carry_work)

            self.sim.schedule(
                image_delay, deliver, label=f"ckpt-image:{task.task_id}->{new_site}"
            )
        else:
            self._submit_to(entry, task, new_site, initial_work=carry_work)
        self._emit_plan(entry)
        return new_site

    def _image_transfer_delay(
        self, src: str, dst: str, image_size_mb: float
    ) -> float:
        if (
            image_size_mb <= 0.0
            or not self.simulate_stage_in
            or self.replica_catalog is None
            or self.replica_catalog.network is None
            or src == dst
        ):
            return 0.0
        try:
            return self.replica_catalog.network.transfer_time(src, dst, image_size_mb)
        except Exception:
            return 0.0  # unreachable route: the image travels out of band

    def resubmit_task(self, task_id: str, exclude: Iterable[str] = ()) -> str:
        """Re-run a failed task on a fresh site; returns the site chosen.

        Used by Backup & Recovery after an execution-service failure.  The
        failed site is excluded automatically.
        """
        entry = self._entry_for_task(task_id)
        task = entry.job.task(task_id)
        old_site = entry.plan.site_for(task_id)
        excluded = set(exclude) | {old_site}
        try:
            new_site = self.select_site(task, exclude=excluded)
        except SchedulingError:
            # Fall back to any live site, even the failed one if it recovered.
            new_site = self.select_site(task)
        entry.plan = entry.plan.rebind(task_id, new_site)
        task.state = JobState.PENDING
        self._submit_to(entry, task, new_site, initial_work=0.0)
        self._emit_plan(entry)
        return new_site

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _entry_for_task(self, task_id: str) -> _JobEntry:
        job_id = self._task_index.get(task_id)
        if job_id is None:
            raise SchedulingError(f"unknown task {task_id!r}")
        return self._jobs[job_id]

    def job(self, job_id: str) -> Job:
        """The job object for an id (SchedulingError if unknown)."""
        try:
            return self._jobs[job_id].job
        except KeyError:
            raise SchedulingError(f"unknown job {job_id!r}") from None

    def plan(self, job_id: str) -> ConcreteJobPlan:
        """The *current* concrete plan (reflects redirects/resubmits)."""
        try:
            return self._jobs[job_id].plan
        except KeyError:
            raise SchedulingError(f"unknown job {job_id!r}") from None

    def site_of_task(self, task_id: str) -> str:
        """The site a task is currently bound to."""
        return self._entry_for_task(task_id).plan.site_for(task_id)

    def task(self, task_id: str) -> Task:
        """The task object for an id (SchedulingError if unknown)."""
        return self._entry_for_task(task_id).job.task(task_id)

    def jobs(self) -> List[Job]:
        """All submitted jobs."""
        return [e.job for e in self._jobs.values()]

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """JSON-safe snapshot of every job entry and in-flight transfer.

        The scheduler checkpoint is the system of record for task/job
        objects; pool snapshots reference them by id and are resolved
        against the restored entries via :meth:`task`.
        """
        return {
            "jobs": [
                {
                    "job": job_to_wire(entry.job),
                    "plan": plan_to_wire(entry.plan),
                    "completed": sorted(entry.completed),
                    "submitted": sorted(entry.submitted),
                }
                for entry in self._jobs.values()
            ],
            "commitments": [
                [task_id, site] for task_id, site in self._commitments.items()
            ],
            "staging": [
                [task_id, site, finish_time, self._staging_work.get(task_id, 0.0)]
                for task_id, (site, finish_time) in self.staging.items()
            ],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild job entries from :meth:`snapshot_state` output.

        No plan/staging listeners fire — a restore replays state, not
        events (the original plan announcements and transfer spans live
        in the restored steering/observability state).  In-flight
        stage-in transfers are re-armed to land at their original finish
        times with the work they were carrying.
        """
        self._jobs = {}
        self._task_index = {}
        for wire in state["jobs"]:  # type: ignore[union-attr]
            job = job_from_wire(wire["job"])
            plan = plan_from_wire(wire["plan"])
            entry = _JobEntry(
                job=job,
                plan=plan,
                completed=set(wire["completed"]),
                submitted=set(wire["submitted"]),
            )
            self._jobs[job.job_id] = entry
            for t in job.tasks:
                self._task_index[t.task_id] = job.job_id
        self._commitments = {
            task_id: site for task_id, site in state["commitments"]  # type: ignore[union-attr]
        }
        self.staging = {}
        self._staging_work = {}
        for task_id, site, finish_time, initial_work in state["staging"]:  # type: ignore[union-attr]
            entry = self._entry_for_task(task_id)
            task = entry.job.task(task_id)
            self.staging[task_id] = (site, finish_time)
            self._staging_work[task_id] = initial_work
            self.sim.schedule(
                max(0.0, finish_time - self.sim.now),
                self._restored_delivery(entry, task, site, initial_work),
                label=f"stage-in:{task_id}->{site}",
            )

    def _restored_delivery(
        self, entry: _JobEntry, task: Task, site_name: str, initial_work: float
    ) -> Callable[[], None]:
        def deliver() -> None:
            self.staging.pop(task.task_id, None)
            self._staging_work.pop(task.task_id, None)
            if task.state.is_terminal:
                return
            entry.submitted.add(task.task_id)
            self._deliver(task, site_name, initial_work)

        return deliver
