"""Compute nodes with time-varying background CPU load.

The Figure 7 experiment hinges on one mechanism: a job on a node with
"significant CPU load" accrues Condor wall-clock time *slower* than real
time.  We model a node's background load as a piecewise-constant function of
simulated time; a task running on the node receives CPU at rate

    rate(t) = 1 / (1 + load(t))

i.e. it fair-shares one CPU with ``load`` competing load units.  With
``load = 0`` the task progresses in real time (the paper's "free CPU"
assumption: the 283 s prime job always takes ~283 s on a free CPU); with
``load = 1`` it takes twice as long, and so on.

Piecewise-constant profiles let the Condor pool compute task finish times
*analytically* between change points — no time-stepping, so the simulator
stays exact and fast.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


class LoadProfile:
    """Piecewise-constant background load as a function of simulated time.

    Segments are ``(start_time, load)`` pairs; the profile holds each load
    value from its start time until the next segment's start time, and the
    last value forever after.  Loads are non-negative floats ("competing
    load units"; 0 = free CPU).
    """

    def __init__(self, segments: Sequence[Tuple[float, float]] = ((0.0, 0.0),)) -> None:
        segs = sorted((float(t), float(v)) for t, v in segments)
        if not segs:
            raise ValueError("a load profile needs at least one segment")
        if segs[0][0] > 0.0:
            # Anything before the first explicit segment is a free CPU.
            segs.insert(0, (0.0, 0.0))
        for _, load in segs:
            if load < 0:
                raise ValueError(f"load must be non-negative, got {load}")
        self._times = [t for t, _ in segs]
        self._loads = [v for _, v in segs]

    @classmethod
    def constant(cls, load: float) -> "LoadProfile":
        """A profile that holds one load value forever."""
        return cls([(0.0, load)])

    @classmethod
    def free(cls) -> "LoadProfile":
        """An always-idle CPU."""
        return cls.constant(0.0)

    @classmethod
    def steps(cls, pairs: Sequence[Tuple[float, float]]) -> "LoadProfile":
        """A profile from explicit ``(start_time, load)`` steps."""
        return cls(pairs)

    @classmethod
    def combine_max(cls, profiles: Sequence["LoadProfile"]) -> "LoadProfile":
        """The pointwise-maximum profile over several profiles.

        A gang (multi-node) task progresses at the rate of its *slowest*
        node — SPMD steps barrier-synchronise — which is the rate under the
        maximum background load.  The result is piecewise-constant on the
        union of all breakpoints, so the analytic accrual machinery keeps
        working unchanged.
        """
        if not profiles:
            raise ValueError("combine_max needs at least one profile")
        if len(profiles) == 1:
            return profiles[0]
        times = sorted({t for p in profiles for t in p._times})
        return cls([(t, max(p.load_at(t) for p in profiles)) for t in times])

    @classmethod
    def random_walk(
        cls,
        rng: np.random.Generator,
        horizon: float,
        step: float = 300.0,
        mean_load: float = 1.0,
        volatility: float = 0.5,
    ) -> "LoadProfile":
        """A mean-reverting random-walk load out to *horizon* seconds.

        Used by workload scenarios to emulate the "volatile nature of a Grid
        environment" (§1) without hand-placing steps.
        """
        if horizon <= 0 or step <= 0:
            raise ValueError("horizon and step must be positive")
        times = np.arange(0.0, horizon, step)
        load = max(0.0, mean_load)
        pairs: List[Tuple[float, float]] = []
        for t in times:
            pairs.append((float(t), load))
            # Ornstein-Uhlenbeck-style pull toward the mean plus noise.
            load += 0.3 * (mean_load - load) + rng.normal(0.0, volatility)
            load = max(0.0, load)
        return cls(pairs)

    # ------------------------------------------------------------------
    def segments(self) -> List[Tuple[float, float]]:
        """The ``(start_time, load)`` steps defining this profile.

        The exact constructor input: ``LoadProfile(p.segments())`` is an
        identical profile — the serialization used by grid-spec capture
        and checkpointing.
        """
        return list(zip(self._times, self._loads))

    def load_at(self, t: float) -> float:
        """Background load at simulated time *t*."""
        i = bisect.bisect_right(self._times, t) - 1
        if i < 0:
            return self._loads[0]
        return self._loads[i]

    def rate_at(self, t: float) -> float:
        """CPU share a single task receives at time *t* (in (0, 1])."""
        return 1.0 / (1.0 + self.load_at(t))

    def next_change_after(self, t: float) -> Optional[float]:
        """First segment boundary strictly after *t*, or None."""
        i = bisect.bisect_right(self._times, t)
        if i >= len(self._times):
            return None
        return self._times[i]

    def work_between(self, t0: float, t1: float) -> float:
        """CPU-seconds a task accrues between *t0* and *t1* (exact integral)."""
        if t1 < t0:
            raise ValueError(f"t1 < t0 ({t1} < {t0})")
        total = 0.0
        t = t0
        while t < t1:
            nxt = self.next_change_after(t)
            seg_end = t1 if nxt is None or nxt > t1 else nxt
            total += (seg_end - t) * self.rate_at(t)
            t = seg_end
        return total

    def time_to_accrue(self, t0: float, work: float) -> float:
        """Wall time from *t0* needed to accrue *work* CPU-seconds.

        Returns ``inf`` only if work is infinite; any finite work completes
        because rates are always positive.
        """
        if work < 0:
            raise ValueError(f"work must be non-negative, got {work}")
        remaining = work
        t = t0
        while remaining > 0:
            rate = self.rate_at(t)
            nxt = self.next_change_after(t)
            if nxt is None:
                return (t - t0) + remaining / rate
            capacity = (nxt - t) * rate
            if capacity >= remaining:
                return (t - t0) + remaining / rate
            remaining -= capacity
            t = nxt
        return t - t0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pairs = list(zip(self._times, self._loads))
        return f"LoadProfile({pairs[:4]}{'...' if len(pairs) > 4 else ''})"


@dataclass
class Node:
    """A worker node in an execution site's pool.

    ``cpu_count`` independent slots share the node's background-load profile;
    the Condor pool places at most one task per slot.
    """

    name: str
    cpu_count: int = 1
    load_profile: LoadProfile = field(default_factory=LoadProfile.free)
    running_task_ids: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cpu_count < 1:
            raise ValueError(f"cpu_count must be >= 1, got {self.cpu_count}")

    @property
    def free_slots(self) -> int:
        """Slots not currently occupied by a task."""
        return self.cpu_count - len(self.running_task_ids)

    def occupy(self, task_id: str, slots: int = 1) -> None:
        """Claim *slots* slots for *task_id* (a gang member may take
        several on one node)."""
        if slots < 1:
            raise RuntimeError(f"slots must be >= 1, got {slots}")
        if self.free_slots < slots:
            raise RuntimeError(
                f"node {self.name} has {self.free_slots} free slots, need {slots}"
            )
        if task_id in self.running_task_ids:
            raise RuntimeError(f"task {task_id} already on node {self.name}")
        self.running_task_ids.extend([task_id] * slots)

    def release(self, task_id: str) -> None:
        """Free every slot held by *task_id*."""
        if task_id not in self.running_task_ids:
            raise ValueError(f"task {task_id} not on node {self.name}")
        self.running_task_ids = [t for t in self.running_task_ids if t != task_id]

    def load_at(self, t: float) -> float:
        """Background load at time *t* (delegates to the profile)."""
        return self.load_profile.load_at(t)
