"""Execution sites.

A :class:`Site` bundles the per-location resources the paper assumes at each
grid endpoint: worker nodes organised in a Condor-like pool, a storage
element, and the accounting charge rates that appear in the Paragon trace
("the rate of charge for CPU hours and idle hours").  The per-site
:class:`~repro.gridsim.execution.ExecutionService` is layered on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.gridsim.clock import Simulator
from repro.gridsim.condor import CondorPool
from repro.gridsim.node import LoadProfile, Node
from repro.gridsim.storage import StorageElement


@dataclass(frozen=True)
class ChargeRates:
    """Money charged per CPU-hour consumed and per idle-hour reserved."""

    cpu_hour: float = 1.0
    idle_hour: float = 0.1

    def __post_init__(self) -> None:
        if self.cpu_hour < 0 or self.idle_hour < 0:
            raise ValueError("charge rates must be non-negative")


class Site:
    """One grid site: a named pool of nodes plus storage and charge rates."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        nodes: List[Node],
        charge_rates: Optional[ChargeRates] = None,
        storage_capacity_mb: float = float("inf"),
    ) -> None:
        self.sim = sim
        self.name = name
        self.pool = CondorPool(sim, name, nodes)
        self.storage = StorageElement(name, capacity_mb=storage_capacity_mb)
        self.charge_rates = charge_rates if charge_rates is not None else ChargeRates()

    @classmethod
    def simple(
        cls,
        sim: Simulator,
        name: str,
        n_nodes: int = 1,
        cpus_per_node: int = 1,
        background_load: float = 0.0,
        charge_rates: Optional[ChargeRates] = None,
    ) -> "Site":
        """Convenience constructor: *n_nodes* identical nodes with a
        constant background load."""
        nodes = [
            Node(
                name=f"{name}-node{i:02d}",
                cpu_count=cpus_per_node,
                load_profile=LoadProfile.constant(background_load),
            )
            for i in range(n_nodes)
        ]
        return cls(sim, name, nodes, charge_rates=charge_rates)

    @property
    def nodes(self) -> List[Node]:
        """The site's worker nodes."""
        return self.pool.nodes

    def current_load(self) -> float:
        """Pool load indicator (see :meth:`CondorPool.current_load`)."""
        return self.pool.current_load()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Site({self.name}, nodes={len(self.nodes)}, slots={self.pool.total_slots})"
