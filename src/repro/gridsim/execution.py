"""The per-site Execution Service.

Every site exposes one of these (§3: the Job Monitoring Service "operat[es]
in close interaction with an execution service (which can be based on any
execution engine such as Condor)").  It is the only interface the paper's
services use to touch a pool:

- the scheduler submits tasks and asks for runtime estimates (§6.1 step a–c:
  each execution site hosts a runtime estimator and returns estimates to the
  scheduler),
- the job monitoring service's Job Information Collector polls it,
- the steering service's Command Processor drives job control through it,
- Backup & Recovery pings it to detect failure.

The service can be *taken down* (:meth:`fail`) to exercise the Backup &
Recovery path: a failed service raises :class:`ExecutionServiceDown` from
every method, and (by default) its pool crashes with it, failing all
resident tasks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.gridsim.condor import CondorJobAd, CondorPool
from repro.gridsim.job import JobState, Task
from repro.gridsim.site import Site


class ExecutionServiceDown(RuntimeError):
    """Raised by every method of a failed execution service."""


class ExecutionService:
    """Job-control and estimate interface to one site's pool.

    Parameters
    ----------
    site:
        The site whose pool this service fronts.
    runtime_estimator:
        Optional callable ``(TaskSpec) -> float`` giving the site-local
        runtime estimate (§6.1).  Installed later by the estimator service;
        until then :meth:`estimate_runtime` raises.

    The estimator service may additionally attach an incremental
    :class:`~repro.core.estimators.queue_time.QueueAccounting` (stored on
    :attr:`queue_accounting`), which follows this pool's submit / start /
    complete / kill events and keeps per-priority-band sums of the queued
    tasks' estimated-remaining runtimes, so queue-wait estimates for the
    steering optimizer need no queue scan.
    """

    def __init__(
        self,
        site: Site,
        runtime_estimator: Optional[Callable[[object], float]] = None,
    ) -> None:
        self.site = site
        self.runtime_estimator = runtime_estimator
        #: Incremental per-band queue accounting, if attached (see
        #: :meth:`repro.core.estimators.queue_time.QueueTimeEstimator.attach`).
        self.queue_accounting: Optional[object] = None
        #: Called as (service, up) on every :meth:`fail` / :meth:`recover`
        #: transition; the observability layer exposes this as the
        #: ``gae_execution_service_up`` gauge.
        self.lifecycle_listeners: List[Callable[["ExecutionService", bool], None]] = []
        self._failed = False

    def _notify_lifecycle(self, up: bool) -> None:
        for listener in list(self.lifecycle_listeners):
            listener(self, up)

    # ------------------------------------------------------------------
    # availability
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Service name, derived from the site name."""
        return f"execution.{self.site.name}"

    @property
    def pool(self) -> CondorPool:
        return self.site.pool

    def _check_up(self) -> None:
        if self._failed:
            raise ExecutionServiceDown(f"execution service at {self.site.name} is down")

    def ping(self) -> bool:
        """Liveness probe used by Backup & Recovery.

        Returns True when healthy; raises :class:`ExecutionServiceDown`
        when failed (mirroring an unreachable endpoint).
        """
        self._check_up()
        return True

    def fail(self, crash_pool: bool = True) -> List[CondorJobAd]:
        """Take the service down (failure injection).

        With ``crash_pool`` (the default) every resident task fails too,
        matching the paper's scenario where losing the execution service
        loses the jobs it managed.  Returns the failed ads.
        """
        self._failed = True
        self._notify_lifecycle(False)
        if crash_pool:
            return self.pool.crash()
        return []

    def recover(self) -> None:
        """Bring the service back up (empty pool, fresh start)."""
        self._failed = False
        self._notify_lifecycle(True)

    @property
    def failed(self) -> bool:
        """Whether the service is currently down (checkpoint-visible)."""
        return self._failed

    def restore_availability(self, failed: bool) -> None:
        """Set the up/down flag without firing lifecycle listeners.

        Used on restore: the original transition already fired (and was
        journalled); replaying state must not re-announce it.
        """
        self._failed = bool(failed)

    # ------------------------------------------------------------------
    # scheduling interface
    # ------------------------------------------------------------------
    def submit_task(self, task: Task, initial_work: float = 0.0) -> int:
        """Submit a task to the pool; returns its Condor id."""
        self._check_up()
        return self.pool.submit(task, initial_work=initial_work)

    def estimate_runtime(self, spec) -> float:
        """Site-local history-based runtime estimate for a task spec (§6.1).

        Raises RuntimeError until an estimator has been installed — the
        paper notes availability of the estimator at each site is not
        guaranteed ("this depends on the availability of the runtime
        estimator at each of the sites").
        """
        self._check_up()
        if self.runtime_estimator is None:
            raise RuntimeError(f"no runtime estimator installed at {self.site.name}")
        return float(self.runtime_estimator(spec))

    @property
    def has_estimator(self) -> bool:
        """Whether a site-local runtime estimator is installed."""
        return self.runtime_estimator is not None

    # ------------------------------------------------------------------
    # monitoring interface
    # ------------------------------------------------------------------
    def job_status(self, task_id: str) -> CondorJobAd:
        """Fresh job ad (accruals synced) for a resident task."""
        self._check_up()
        return self.pool.status(task_id)

    def has_task(self, task_id: str) -> bool:
        """Whether the pool knows this task."""
        self._check_up()
        return self.pool.has_task(task_id)

    def elapsed_runtime(self, task_id: str) -> float:
        """Condor accumulated wall-clock time for the task."""
        self._check_up()
        return self.pool.status(task_id).elapsed_runtime()

    def queue_info(self) -> List[CondorJobAd]:
        """Idle queue in dispatch order."""
        self._check_up()
        return self.pool.queue_snapshot()

    def running_info(self) -> List[CondorJobAd]:
        """Running ads with synced accruals."""
        self._check_up()
        return self.pool.running_snapshot()

    def queue_position(self, task_id: str) -> int:
        """0-based idle-queue position, or -1."""
        self._check_up()
        return self.pool.queue_position(task_id)

    def tasks_ahead_of(self, task_id: str) -> List[CondorJobAd]:
        """Input set for the Queue Time Estimator (§6.2)."""
        self._check_up()
        return self.pool.tasks_ahead_of(task_id)

    def current_load(self) -> float:
        """Load figure published to the MonALISA repository."""
        self._check_up()
        return self.pool.current_load()

    # ------------------------------------------------------------------
    # steering interface (job-control verbs)
    # ------------------------------------------------------------------
    def pause_task(self, task_id: str) -> None:
        """Suspend a running task."""
        self._check_up()
        self.pool.pause(task_id)

    def resume_task(self, task_id: str) -> None:
        """Resume a suspended task."""
        self._check_up()
        self.pool.resume(task_id)

    def kill_task(self, task_id: str) -> None:
        """Remove a task."""
        self._check_up()
        self.pool.kill(task_id)

    def set_task_priority(self, task_id: str, priority: int) -> None:
        """Change a task's priority."""
        self._check_up()
        self.pool.set_priority(task_id, priority)

    def vacate_task(self, task_id: str) -> CondorJobAd:
        """Evict a task for relocation; returns its final ad."""
        self._check_up()
        return self.pool.vacate(task_id)

    def retrieve_local_files(self, task_id: str) -> List[str]:
        """Output files a (failed or completed) task left at this site.

        Backup & Recovery calls this after a failure: "It then contacts the
        execution service to get all the local files that were produced by
        the failed job" (§4.2.4).
        """
        self._check_up()
        ad = self.pool.ad(task_id)
        if ad.state in (JobState.COMPLETED, JobState.FAILED):
            if ad.local_output_files:
                return list(ad.local_output_files)
            # A failed task leaves whatever partial outputs it declared.
            return [f"{name}.partial" for name in ad.task.spec.output_files]
        return []

    def execution_state(self, task_id: str) -> Dict[str, object]:
        """A serialisable summary of the task's execution at this site.

        Backup & Recovery publishes this for download after completion
        ("gets the execution state from the execution service. This
        execution state is made available for download", §4.2.4).
        """
        self._check_up()
        ad = self.pool.ad(task_id)
        return {
            "task_id": ad.task_id,
            "condor_id": ad.condor_id,
            "site": self.site.name,
            "state": ad.state.value,
            "submit_time": ad.submit_time,
            "start_time": ad.start_time,
            "end_time": ad.end_time,
            "accrued_work": ad.accrued_work,
            "progress": ad.progress,
            "priority": ad.priority,
            "owner": ad.task.spec.owner,
            "output_files": list(ad.local_output_files),
        }
