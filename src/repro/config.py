"""Declarative scenario configuration.

Experiments are easier to share as data than as scripts.  This module
defines plain-dataclass configs for a grid, a steering policy, a workload
and a whole scenario, with dict/JSON round-tripping, plus builders that
turn a config into a live :class:`~repro.gridsim.grid.Grid` or
:class:`~repro.gae.GAE`.  The ``gae-repro scenario`` CLI command runs a
scenario file end to end.

Example scenario (JSON)::

    {
      "seed": 2005,
      "grid": {
        "sites": [
          {"name": "siteA", "nodes": 1, "background_load": 1.5},
          {"name": "siteB", "nodes": 1}
        ],
        "links": [{"a": "siteA", "b": "siteB", "capacity_mbps": 100.0}]
      },
      "policy": {"poll_interval_s": 20.0, "slow_rate_threshold": 0.8},
      "workload": {"kind": "prime", "count": 1, "pin_site": "siteA"},
      "horizon_s": 2000.0
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Union

from repro.core.steering.optimizer import SteeringPolicy
from repro.gridsim.grid import Grid, GridBuilder


class ConfigError(ValueError):
    """Raised for malformed scenario configurations."""


def _build(cls, data: Dict, context: str):
    """Construct a config dataclass from a dict, rejecting unknown keys."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(f"{context}: unknown keys {sorted(unknown)}")
    return cls(**data)


@dataclass(frozen=True)
class SiteConfig:
    """One site declaration."""

    name: str
    nodes: int = 1
    cpus_per_node: int = 1
    background_load: float = 0.0
    cpu_hour_rate: float = 1.0
    idle_hour_rate: float = 0.1


@dataclass(frozen=True)
class LinkConfig:
    """One network link declaration."""

    a: str
    b: str
    capacity_mbps: float
    latency_s: float = 0.01
    utilization: float = 0.0


@dataclass(frozen=True)
class FileConfig:
    """One pre-placed replica declaration."""

    name: str
    size_mb: float
    at: str


@dataclass(frozen=True)
class GridConfig:
    """A whole grid declaration."""

    sites: List[SiteConfig] = field(default_factory=list)
    links: List[LinkConfig] = field(default_factory=list)
    files: List[FileConfig] = field(default_factory=list)
    flocking: List[List[str]] = field(default_factory=list)  # [src, dst] pairs
    probe_noise: float = 0.0

    @classmethod
    def from_dict(cls, data: Dict) -> "GridConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"grid: unknown keys {sorted(unknown)}")
        return cls(
            sites=[_build(SiteConfig, s, "site") for s in data.get("sites", [])],
            links=[_build(LinkConfig, l, "link") for l in data.get("links", [])],
            files=[_build(FileConfig, f, "file") for f in data.get("files", [])],
            flocking=[list(pair) for pair in data.get("flocking", [])],
            probe_noise=float(data.get("probe_noise", 0.0)),
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """What to run on the grid.

    ``kind`` is "prime" (N copies of the paper's 283 s job) or "downey"
    (N jobs drawn from the synthetic Paragon trace).  ``pin_site`` forces
    initial placement (how the Figure 7 setup puts work on the loaded
    site); empty lets the scheduler choose.
    """

    kind: str = "prime"
    count: int = 1
    owner: str = "scenario-user"
    pin_site: str = ""
    checkpointable: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("prime", "downey"):
            raise ConfigError(f"unknown workload kind {self.kind!r}")
        if self.count < 1:
            raise ConfigError("workload count must be >= 1")


@dataclass(frozen=True)
class ScenarioConfig:
    """A full runnable scenario."""

    grid: GridConfig
    seed: int = 2005
    policy: Dict[str, object] = field(default_factory=dict)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    horizon_s: float = 3600.0

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"scenario: unknown keys {sorted(unknown)}")
        if "grid" not in data:
            raise ConfigError("scenario: missing 'grid' section")
        return cls(
            grid=GridConfig.from_dict(data["grid"]),
            seed=int(data.get("seed", 2005)),
            policy=dict(data.get("policy", {})),
            workload=_build(WorkloadConfig, data.get("workload", {}), "workload"),
            horizon_s=float(data.get("horizon_s", 3600.0)),
        )

    @classmethod
    def from_json(cls, text_or_path: Union[str, Path]) -> "ScenarioConfig":
        """Parse a scenario from JSON text or a JSON file path."""
        raw = str(text_or_path)
        try:
            is_file = "\n" not in raw and len(raw) < 1024 and Path(raw).exists()
        except OSError:
            is_file = False
        if is_file:
            raw = Path(raw).read_text()
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict:
        """The dict representation (JSON-serialisable)."""
        return asdict(self)

    def steering_policy(self) -> SteeringPolicy:
        """The SteeringPolicy with this scenario's overrides applied."""
        try:
            return SteeringPolicy(**self.policy)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ConfigError(f"bad policy options: {exc}") from exc


def grid_from_config(config: GridConfig, seed: int = 2005) -> Grid:
    """Build a live grid from its declaration."""
    if not config.sites:
        raise ConfigError("grid has no sites")
    builder = GridBuilder(seed=seed).probe_noise(config.probe_noise)
    for site in config.sites:
        builder.site(
            site.name,
            nodes=site.nodes,
            cpus_per_node=site.cpus_per_node,
            background_load=site.background_load,
            cpu_hour_rate=site.cpu_hour_rate,
            idle_hour_rate=site.idle_hour_rate,
        )
    for link in config.links:
        builder.link(
            link.a, link.b,
            capacity_mbps=link.capacity_mbps,
            latency_s=link.latency_s,
            utilization=link.utilization,
        )
    for file in config.files:
        builder.file(file.name, size_mb=file.size_mb, at=file.at)
    for pair in config.flocking:
        if len(pair) != 2:
            raise ConfigError(f"flocking entries are [src, dst] pairs, got {pair!r}")
        builder.flock(pair[0], pair[1])
    return builder.build()


def gae_from_scenario(scenario: ScenarioConfig):
    """Build the fully wired GAE for a scenario (workload not submitted)."""
    from repro.gae import build_gae

    grid = grid_from_config(scenario.grid, seed=scenario.seed)
    return build_gae(grid, policy=scenario.steering_policy())


def submit_scenario_workload(gae, scenario: ScenarioConfig) -> List[str]:
    """Create and submit the scenario's workload; returns task ids."""
    from repro.gridsim.job import Job
    from repro.workloads.downey import DowneyWorkloadGenerator
    from repro.workloads.generators import make_prime_count_task

    wl = scenario.workload
    tasks = []
    if wl.kind == "prime":
        tasks = [
            make_prime_count_task(owner=wl.owner, checkpointable=wl.checkpointable)
            for _ in range(wl.count)
        ]
    else:  # downey
        gen = DowneyWorkloadGenerator(seed=scenario.seed)
        records = [r for r in gen.generate(4 * wl.count) if r.status == "successful"]
        tasks = [r.to_task() for r in records[: wl.count]]
        if len(tasks) < wl.count:
            raise ConfigError("not enough successful trace jobs for the workload")

    original = gae.scheduler.select_site
    if wl.pin_site:
        gae.scheduler.select_site = lambda t, exclude=(): wl.pin_site
    try:
        for task in tasks:
            gae.scheduler.submit_job(Job(tasks=[task], owner=wl.owner))
    finally:
        gae.scheduler.select_site = original
    return [t.task_id for t in tasks]
