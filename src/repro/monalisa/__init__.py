"""A MonALISA-style distributed monitoring repository.

MonALISA [8] is the monitoring backbone the paper's services publish to and
query: the Job Monitoring Service "sends an update to MonALISA whenever the
state of a job changes" (§5), and the scheduler "contact[s] the MonALISA
repository to get the status of load at execution sites" (§6.1 step d).

We substitute :class:`~repro.monalisa.repository.MonALISARepository` — a
time-series store with publish/subscribe — plus
:class:`~repro.monalisa.publisher.SiteLoadPublisher`, which periodically
samples each site's pool load into the repository under the simulator's
clock.
"""

from repro.monalisa.publisher import (
    JobStatePublisher,
    ServiceMetricsPublisher,
    SiteLoadPublisher,
)
from repro.monalisa.repository import MetricUpdate, MonALISARepository
from repro.monalisa.service import MonALISAQueryService
from repro.monalisa.timeseries import TimeSeries

__all__ = [
    "JobStatePublisher",
    "MetricUpdate",
    "MonALISAQueryService",
    "MonALISARepository",
    "ServiceMetricsPublisher",
    "SiteLoadPublisher",
    "TimeSeries",
]
