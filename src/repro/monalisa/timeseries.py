"""Append-only time series with window queries.

The repository stores one :class:`TimeSeries` per (farm, metric) pair.
Timestamps must be non-decreasing — monitoring data arrives in clock order
from the simulator — which lets every query run on a sorted array with
binary search.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

import numpy as np


class TimeSeries:
    """A non-decreasing sequence of ``(time, value)`` samples."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        """Add a sample; *time* must not precede the last sample."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"out-of-order sample at t={time:.6g} (last was {self._times[-1]:.6g})"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    def latest(self) -> Tuple[float, float]:
        """The most recent ``(time, value)`` (ValueError when empty)."""
        if not self._times:
            raise ValueError("empty time series")
        return self._times[-1], self._values[-1]

    def value_at(self, time: float) -> float:
        """Last value at or before *time* (step interpolation).

        Raises ValueError if *time* precedes every sample.
        """
        i = bisect.bisect_right(self._times, time) - 1
        if i < 0:
            raise ValueError(f"no sample at or before t={time:.6g}")
        return self._values[i]

    # ------------------------------------------------------------------
    # window queries
    # ------------------------------------------------------------------
    def window(self, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Samples with ``t0 <= time <= t1`` as (times, values) arrays."""
        if t1 < t0:
            raise ValueError(f"t1 < t0 ({t1} < {t0})")
        lo = bisect.bisect_left(self._times, t0)
        hi = bisect.bisect_right(self._times, t1)
        return (
            np.asarray(self._times[lo:hi], dtype=float),
            np.asarray(self._values[lo:hi], dtype=float),
        )

    def mean(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Mean value over a window (whole series by default)."""
        if t0 is None and t1 is None:
            values: Sequence[float] = self._values
        else:
            t0 = self._times[0] if t0 is None else t0
            t1 = self._times[-1] if t1 is None else t1
            _, values = self.window(t0, t1)
        if len(values) == 0:
            raise ValueError("window contains no samples")
        return float(np.mean(values))

    def max(self) -> float:
        """Largest value seen (ValueError when empty)."""
        if not self._values:
            raise ValueError("empty time series")
        return max(self._values)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full series as (times, values) numpy arrays (copies)."""
        return (
            np.asarray(self._times, dtype=float),
            np.asarray(self._values, dtype=float),
        )

    def samples(self) -> List[Tuple[float, float]]:
        """The full series as plain ``(time, value)`` pairs (copies)."""
        return list(zip(self._times, self._values))

    @classmethod
    def from_samples(cls, samples: Sequence[Tuple[float, float]]) -> "TimeSeries":
        """Rebuild a series from :meth:`samples` output."""
        ts = cls()
        for time, value in samples:
            ts.append(time, value)
        return ts
