"""Periodic publishers feeding the monitoring repository.

:class:`SiteLoadPublisher` samples every site's pool load on a fixed period
under the simulator clock — the stand-in for MonALISA's farm agents.
:class:`JobStatePublisher` adapts Condor pool state-change callbacks into
repository job-state events (used directly in tests; in the full GAE wiring
the Job Monitoring Service's DBManager plays this role, as in the paper).
:class:`ServiceMetricsPublisher` samples a Clarens host's call-pipeline
telemetry (``CallStats``) and publishes per-method latency series, so the
monitoring repository — and therefore ``monalisa.service_health`` — can
report the health of the GAE services themselves, not just the sites.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.gridsim.clock import PeriodicHandle, Simulator
from repro.gridsim.condor import CondorJobAd
from repro.gridsim.site import Site
from repro.monalisa.repository import JobStateEvent, MonALISARepository


class SiteLoadPublisher:
    """Publishes each site's load metric every *period_s* seconds."""

    def __init__(
        self,
        sim: Simulator,
        repository: MonALISARepository,
        sites: Iterable[Site],
        period_s: float = 30.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.repository = repository
        self.sites = list(sites)
        self.period_s = period_s
        self._handle: Optional[PeriodicHandle] = None
        self._stopped = False
        #: When set, the next :meth:`start` resumes the original cadence:
        #: no immediate sample, first firing at this absolute sim time.
        #: Checkpoint restore uses this so a resumed run publishes on the
        #: same schedule (and the event journal folds identically).
        self.resume_at: Optional[float] = None

    def publish_now(self) -> None:
        """Take one sample of every site immediately.

        A no-op after :meth:`stop`, so a straggling caller cannot smear
        stale samples into the repository.
        """
        if self._stopped:
            return
        for site in self.sites:
            self.repository.publish(site.name, "load", self.sim.now, site.current_load())

    def start(self) -> "SiteLoadPublisher":
        """Begin periodic publication (first sample at t=now).

        Idempotent: calling again while running is a no-op, matching the
        client/transport lifecycle convention.  After :meth:`stop` a new
        ``start`` re-arms the publisher.
        """
        if self._handle is not None:
            return self
        self._stopped = False
        first_delay = self._consume_resume_phase()
        if first_delay is None:
            self.publish_now()
        self._handle = self.sim.every(
            self.period_s,
            self.publish_now,
            label="monalisa.site_load",
            first_delay=first_delay,
        )
        return self

    def _consume_resume_phase(self) -> Optional[float]:
        """Return the ``first_delay`` that re-joins the original cadence."""
        if self.resume_at is None:
            return None
        delay = self.resume_at - self.sim.now
        self.resume_at = None
        return max(delay, 0.0)

    @property
    def next_fire_time(self) -> Optional[float]:
        """Absolute sim time of the next periodic sample (``None`` if idle)."""
        return self._handle.next_time if self._handle is not None else None

    def stop(self) -> None:
        """Cancel the periodic publication (idempotent)."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def __enter__(self) -> "SiteLoadPublisher":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


#: Latency-summary keys republished as metrics per method.
_LATENCY_KEYS = ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")


class ServiceMetricsPublisher:
    """Publishes a Clarens host's per-method RPC latency every period.

    Metrics land under ``farm = host.name``:

    - ``rpc.calls`` / ``rpc.faults`` — host-wide totals;
    - ``rpc.<service.method>.calls`` — per-method call count;
    - ``rpc.<service.method>.{mean,p50,p95,p99,max}_ms`` — latency summary
      from the metrics middleware's reservoir.

    *host* is duck-typed: anything with ``name`` and a ``stats.snapshot()``
    returning the redesigned ``system.stats`` shape works.
    """

    def __init__(
        self,
        sim: Simulator,
        repository: MonALISARepository,
        host: Any,
        period_s: float = 60.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.repository = repository
        self.host = host
        self.period_s = period_s
        self._handle: Optional[PeriodicHandle] = None
        self._stopped = False
        #: See :attr:`SiteLoadPublisher.resume_at` — phase-faithful restart.
        self.resume_at: Optional[float] = None

    def publish_now(self) -> None:
        """Take one sample of the host's call statistics immediately.

        A no-op after :meth:`stop` (publish-after-stop guard).
        """
        if self._stopped:
            return
        snapshot = self.host.stats.snapshot()
        farm, now = self.host.name, self.sim.now
        self.repository.publish(farm, "rpc.calls", now, float(snapshot["calls"]))
        self.repository.publish(farm, "rpc.faults", now, float(snapshot["faults"]))
        for method, summary in snapshot["latency_ms"].items():
            self.repository.publish(
                farm, f"rpc.{method}.calls", now, float(summary["count"])
            )
            for key in _LATENCY_KEYS:
                if key in summary:
                    self.repository.publish(
                        farm, f"rpc.{method}.{key}", now, float(summary[key])
                    )

    def start(self) -> "ServiceMetricsPublisher":
        """Begin periodic publication (first sample at t=now).

        Idempotent: calling again while running is a no-op.  After
        :meth:`stop` a new ``start`` re-arms the publisher.
        """
        if self._handle is not None:
            return self
        self._stopped = False
        first_delay = self._consume_resume_phase()
        if first_delay is None:
            self.publish_now()
        self._handle = self.sim.every(
            self.period_s,
            self.publish_now,
            label="monalisa.service_metrics",
            first_delay=first_delay,
        )
        return self

    def _consume_resume_phase(self) -> Optional[float]:
        """Return the ``first_delay`` that re-joins the original cadence."""
        if self.resume_at is None:
            return None
        delay = self.resume_at - self.sim.now
        self.resume_at = None
        return max(delay, 0.0)

    @property
    def next_fire_time(self) -> Optional[float]:
        """Absolute sim time of the next periodic sample (``None`` if idle)."""
        return self._handle.next_time if self._handle is not None else None

    def stop(self) -> None:
        """Cancel the periodic publication (idempotent)."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def __enter__(self) -> "ServiceMetricsPublisher":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class JobStatePublisher:
    """Bridges Condor pool state changes into repository job events."""

    def __init__(self, sim: Simulator, repository: MonALISARepository) -> None:
        self.sim = sim
        self.repository = repository

    def attach(self, site: Site) -> None:
        """Subscribe to a site pool's state-change callbacks."""

        def on_change(ad: CondorJobAd) -> None:
            self.repository.publish_job_state(
                JobStateEvent(
                    time=self.sim.now,
                    task_id=ad.task_id,
                    job_id=ad.task.job_id or "",
                    site=site.name,
                    state=ad.state.value,
                    progress=ad.progress,
                )
            )

        site.pool.on_state_change.append(on_change)
