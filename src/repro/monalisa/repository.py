"""The monitoring repository: numeric metrics, job-state events, pub/sub.

Two kinds of data flow in (mirroring how the paper's services use
MonALISA):

- **numeric metrics** — e.g. each site's load, published periodically by
  :class:`~repro.monalisa.publisher.SiteLoadPublisher` and queried by the
  scheduler (§6.1 step d) and the steering optimizer;
- **job-state events** — published by the Job Monitoring Service's
  DBManager "whenever the state of a job changes" (§5).

Subscribers receive every update for the keys they watch; the repository
itself is transport-neutral and can be registered on a Clarens host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.monalisa.timeseries import TimeSeries
from repro.store.base import StateStore
from repro.store.registry import (
    MONALISA_EVENTS,
    MONALISA_TIMESERIES,
    namespace_record,
)


class UnknownMetricError(KeyError):
    """Structured "no such farm/metric" error.

    Subclasses :class:`KeyError` so existing ``except KeyError`` callers
    keep working, but carries the farm and metric names plus a
    ``to_wire()`` shape matching the webui's structured 404 bodies.
    """

    def __init__(self, farm: str, metric: str, reason: str = "never published") -> None:
        super().__init__(f"no samples for {farm}/{metric} ({reason})")
        self.farm = farm
        self.metric = metric
        self.reason = reason

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]

    def to_wire(self) -> Dict[str, object]:
        """The webui-style structured error body."""
        return {
            "error": "not-found",
            "resource": "metric",
            "id": f"{self.farm}/{self.metric}",
            "reason": self.reason,
            "status": 404,
        }


@dataclass(frozen=True)
class MetricUpdate:
    """One published sample."""

    farm: str          # site / source name (MonALISA's "farm")
    metric: str
    time: float
    value: float


@dataclass(frozen=True)
class JobStateEvent:
    """One job-state transition published by a monitoring service."""

    time: float
    task_id: str
    job_id: str
    site: str
    state: str
    progress: float


class MonALISARepository:
    """Grid-wide monitoring store with publish/subscribe."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, str], TimeSeries] = {}
        self._metric_subscribers: List[Callable[[MetricUpdate], None]] = []
        self._job_events: List[JobStateEvent] = []
        self._job_subscribers: List[Callable[[JobStateEvent], None]] = []
        #: Event-sourced write seam: when set (to
        #: ``EventCore.emit_metric``) :meth:`publish` journals a
        #: ``metric-published`` event and the monalisa consumer applies
        #: the sample; ``None`` keeps the original direct append.
        self.emit: Optional[Callable[[str, str, float, float], None]] = None

    # ------------------------------------------------------------------
    # numeric metrics
    # ------------------------------------------------------------------
    def publish(self, farm: str, metric: str, time: float, value: float) -> None:
        """Record one sample and fan it out to metric subscribers."""
        if self.emit is not None:
            self.emit(farm, metric, time, value)
            return
        self._apply_publish(farm, metric, time, value)

    def _apply_publish(
        self, farm: str, metric: str, time: float, value: float, notify: bool = True
    ) -> None:
        """Append one sample (the journal consumer's fold primitive).

        ``notify=False`` is the quiet variant used when replaying a
        journal tail during an incremental restore.
        """
        key = (farm, metric)
        if key not in self._series:
            self._series[key] = TimeSeries()
        self._series[key].append(time, value)
        if notify:
            update = MetricUpdate(farm=farm, metric=metric, time=time, value=value)
            for cb in list(self._metric_subscribers):
                cb(update)

    def series(self, farm: str, metric: str) -> TimeSeries:
        """The full series for (farm, metric).

        Raises :class:`UnknownMetricError` (a KeyError subclass) when the
        pair never published.
        """
        try:
            return self._series[(farm, metric)]
        except KeyError:
            raise UnknownMetricError(farm, metric) from None

    def has_series(self, farm: str, metric: str) -> bool:
        """Whether any sample exists for (farm, metric)."""
        return (farm, metric) in self._series

    def latest(self, farm: str, metric: str, default: Optional[float] = None) -> float:
        """Most recent value, or *default* when nothing was published."""
        key = (farm, metric)
        if key not in self._series or len(self._series[key]) == 0:
            if default is None:
                raise UnknownMetricError(farm, metric)
            return default
        return self._series[key].latest()[1]

    def farms(self) -> List[str]:
        """All farm (site) names that ever published, sorted."""
        return sorted({farm for farm, _ in self._series})

    def metrics_of(self, farm: str) -> List[str]:
        """All metric names a farm ever published, sorted."""
        return sorted({m for f, m in self._series if f == farm})

    def subscribe_metrics(self, callback: Callable[[MetricUpdate], None]) -> None:
        """Receive every future numeric sample."""
        self._metric_subscribers.append(callback)

    # ------------------------------------------------------------------
    # convenience views used by the scheduler / optimizer
    # ------------------------------------------------------------------
    def site_load(self, farm: str, default: float = 0.0) -> float:
        """Latest published load for a site (the §6.1 step-d query)."""
        return self.latest(farm, "load", default=default)

    def load_oracle(self, default: float = 0.0) -> Callable[[str], float]:
        """A ``site -> load`` callable for SphinxScheduler's load_oracle."""

        def oracle(farm: str) -> float:
            return self.site_load(farm, default=default)

        return oracle

    # ------------------------------------------------------------------
    # job-state events
    # ------------------------------------------------------------------
    def publish_job_state(self, event: JobStateEvent) -> None:
        """Record a job-state transition and fan it out."""
        self._apply_job_state(event)

    def _apply_job_state(self, event: JobStateEvent, notify: bool = True) -> None:
        """Append one job-state event; quiet when ``notify=False``."""
        self._job_events.append(event)
        if notify:
            for cb in list(self._job_subscribers):
                cb(event)

    def job_events(
        self, task_id: Optional[str] = None, job_id: Optional[str] = None
    ) -> List[JobStateEvent]:
        """Events filtered by task and/or job id (all when both None)."""
        out = self._job_events
        if task_id is not None:
            out = [e for e in out if e.task_id == task_id]
        if job_id is not None:
            out = [e for e in out if e.job_id == job_id]
        return list(out)

    def subscribe_job_states(self, callback: Callable[[JobStateEvent], None]) -> None:
        """Receive every future job-state event."""
        self._job_subscribers.append(callback)

    # ------------------------------------------------------------------
    # persistence (state-store backend)
    # ------------------------------------------------------------------
    def save_to(self, store: StateStore) -> int:
        """Write series + job events into their store namespaces.

        Series keys are ``farm\\x1fmetric`` (unit-separator joined, both
        halves may contain ``/``) in registration order; events are one
        zero-padded key per event in publish order.
        """
        store.register_namespace(namespace_record(MONALISA_TIMESERIES))
        store.register_namespace(namespace_record(MONALISA_EVENTS))
        store.clear(MONALISA_TIMESERIES)
        store.clear(MONALISA_EVENTS)
        n = store.put_many(
            MONALISA_TIMESERIES,
            (
                (f"{farm}\x1f{metric}", ts.samples())
                for (farm, metric), ts in self._series.items()
            ),
        )
        n += store.put_many(
            MONALISA_EVENTS,
            (
                (
                    f"{i:08d}",
                    {
                        "time": e.time,
                        "task_id": e.task_id,
                        "job_id": e.job_id,
                        "site": e.site,
                        "state": e.state,
                        "progress": e.progress,
                    },
                )
                for i, e in enumerate(self._job_events)
            ),
        )
        return n

    def load_from(self, store: StateStore) -> int:
        """Replace contents from the store namespaces.

        Subscribers are deliberately *not* notified — a restore replays
        state, not events.
        """
        self._series = {}
        for key, samples in store.items(MONALISA_TIMESERIES):
            farm, _, metric = key.partition("\x1f")
            self._series[(farm, metric)] = TimeSeries.from_samples(samples)
        self._job_events = [
            JobStateEvent(**row) for _, row in store.items(MONALISA_EVENTS)
        ]
        return len(self._series) + len(self._job_events)
