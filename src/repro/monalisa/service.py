"""A Clarens-registrable query facade over the MonALISA repository.

§1 motivates the whole GAE with users wanting "more information about Grid
weather"; this service is how they get it: current per-site load, load
history windows, and the job-state event stream, all over the same
Clarens/XML-RPC protocol as the rest of the GAE.
"""

from __future__ import annotations

from typing import Dict, List

from repro.clarens.readcache import ReadPolicy
from repro.clarens.registry import clarens_method
from repro.monalisa.repository import MonALISARepository

#: Every answer here is a pure function of the repository, which only
#: changes via publish()/publish_job_state() — the "monalisa" epoch.
_READS = ReadPolicy(depends_on=("monalisa",))


class MonALISAQueryService:
    """Read-only monitoring queries for clients and dashboards."""

    def __init__(self, repository: MonALISARepository) -> None:
        self.repository = repository

    @clarens_method(cache=_READS)
    def farms(self) -> List[str]:
        """Every site (farm) that has published monitoring data."""
        return self.repository.farms()

    @clarens_method(cache=_READS)
    def metrics_of(self, farm: str) -> List[str]:
        """Metric names a farm has published."""
        return self.repository.metrics_of(farm)

    @clarens_method(cache=_READS)
    def site_load(self, farm: str) -> float:
        """Latest published load for a site (0 when never published)."""
        return self.repository.site_load(farm, default=0.0)

    @clarens_method(cache=_READS)
    def grid_weather(self) -> Dict[str, float]:
        """Latest load for every site that publishes one — 'Grid weather'.

        Farms that only publish service telemetry (e.g. a Clarens host's
        ``rpc.*`` series) are excluded; query those via
        :meth:`service_health`.
        """
        return {farm: self.repository.site_load(farm, default=0.0)
                for farm in self.repository.farms()
                if self.repository.has_series(farm, "load")}

    @clarens_method(cache=_READS)
    def service_health(self, host: str = "") -> Dict[str, Dict[str, float]]:
        """Latest RPC telemetry published for Clarens hosts.

        Returns ``{host: {metric: value}}`` where metrics are the
        ``rpc.*`` series a
        :class:`~repro.monalisa.publisher.ServiceMetricsPublisher` feeds
        (host-wide ``rpc.calls``/``rpc.faults`` plus per-method latency
        summaries).  Restrict to one host with *host*; hosts that never
        published service metrics are absent.
        """
        farms = [host] if host else self.repository.farms()
        out: Dict[str, Dict[str, float]] = {}
        for farm in farms:
            rpc = {
                metric: self.repository.latest(farm, metric)
                for metric in self.repository.metrics_of(farm)
                if metric.startswith("rpc.")
            }
            if rpc:
                out[farm] = rpc
        return out

    @clarens_method(cache=_READS)
    def latest(self, farm: str, metric: str) -> float:
        """Most recent value of one metric (fault when never published)."""
        return self.repository.latest(farm, metric)

    @clarens_method(cache=_READS)
    def series_window(
        self, farm: str, metric: str, t0: float, t1: float
    ) -> Dict[str, List[float]]:
        """Samples of one metric within [t0, t1] as parallel arrays."""
        times, values = self.repository.series(farm, metric).window(t0, t1)
        return {"times": [float(t) for t in times], "values": [float(v) for v in values]}

    @clarens_method(cache=_READS)
    def job_events(
        self, task_id: str = "", job_id: str = ""
    ) -> List[Dict[str, object]]:
        """Job-state transitions, optionally filtered by task and/or job."""
        events = self.repository.job_events(
            task_id=task_id or None, job_id=job_id or None
        )
        return [
            {
                "time": e.time,
                "task_id": e.task_id,
                "job_id": e.job_id,
                "site": e.site,
                "state": e.state,
                "progress": e.progress,
            }
            for e in events
        ]
