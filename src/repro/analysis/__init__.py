"""Experiment support: error metrics, figure data, and report rendering.

- :mod:`repro.analysis.metrics` — the paper's percentage-error formula and
  related accuracy statistics;
- :mod:`repro.analysis.figures` — figure data containers with ASCII chart
  rendering and CSV export (the benchmark harness prints the same series
  the paper plots);
- :mod:`repro.analysis.report` — markdown tables for EXPERIMENTS.md.
"""

from repro.analysis.figures import FigureData, Series, ascii_chart
from repro.analysis.metrics import (
    mean_absolute_percentage_error,
    mean_percentage_error,
    percentage_error,
    summarize_errors,
)
from repro.analysis.report import markdown_table

__all__ = [
    "FigureData",
    "Series",
    "ascii_chart",
    "markdown_table",
    "mean_absolute_percentage_error",
    "mean_percentage_error",
    "percentage_error",
    "summarize_errors",
]
