"""Reproducible benchmark harness for the estimator hot paths.

This is the machinery behind ``gae-repro bench`` (and
``benchmarks/harness.py``).  It times the three §6 estimator paths the
steering optimizer leans on, at several history/queue scales, **both
ways** — the naive scans the paper describes and the indexed/incremental
paths this repo adds — asserts the two produce identical estimates, and
writes a ``BENCH_estimators.json`` whose schema is stable across PRs so
later changes have a trajectory to compare against.

Sections of the emitted report (see ``docs/BENCHMARKS.md`` for the full
field glossary):

- ``runtime_estimator`` — §6.1 similar-task matching throughput, indexed
  hash buckets vs full history scan, per history scale;
- ``queue_time``       — §6.2 queue-wait estimates for a new task,
  incremental per-priority-band sums vs queue scan, per queue depth;
- ``transfer_time``    — §6.3 bandwidth probes, TTL-memoized vs fresh;
- ``steering``         — end-to-end optimizer decision latency
  (``completion_by_site`` over a live multi-site GAE);
- ``monitoring``       — Clarens ``jobmon.job_info`` query latency
  through the middleware pipeline;
- ``observability``    — end-to-end steering-verb latency across three
  builds at the 10k-job scale: bare, tracing+journal, and
  tracing+journal+telemetry/health (the <10% overhead acceptance gates,
  one for the whole layer and one isolating the telemetry pipeline);
- ``persistence``      — monitoring snapshot-write throughput: a loop of
  per-record ``DBManager.update`` commits vs one batched
  ``update_many`` transaction at the 10k-task scale, plus store
  backend round-trip identity (MemoryStore vs SqliteStore);
- ``rpc_read_path``  — closed-loop hot-read-mix throughput through the
  Clarens pipeline with the epoch-keyed read cache on vs off at the
  10k-job scale, with wire-level response identity (the >=3x
  acceptance gate; see :mod:`repro.analysis.load`);
- ``transport``      — the wire transports themselves: threaded XML-RPC
  over HTTP vs the framed asyncio server under each negotiable codec,
  serial and pipelined, with a wire-identity pass across every
  transport/codec combination (the >=20x-over-recorded-baseline
  acceptance gate; see :func:`repro.analysis.load.measure_transport`).

Everything is seeded and uses ``time.perf_counter`` around fixed
workloads (best-of-N repeats), so runs are comparable on one machine.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

SCHEMA_VERSION = 4

#: History sizes for the runtime-estimator section.  10k is the scale the
#: acceptance gate (>=5x) is checked at; keep it in every run.
DEFAULT_HISTORY_SCALES = (1_000, 10_000, 30_000)
QUICK_HISTORY_SCALES = (1_000, 10_000)
DEFAULT_QUEUE_SCALES = (200, 1_000, 5_000)
QUICK_QUEUE_SCALES = (200, 1_000)

#: Speedup the indexed runtime-estimator path must reach at >=10k records.
RUNTIME_SPEEDUP_FLOOR = 5.0

#: Ceiling on what tracing+journal may add to end-to-end steering-verb
#: latency, checked at the 10k-job scale (PR-3 acceptance gate).
OVERHEAD_CEILING_PCT = 10.0

#: Throughput multiple the cached read path must reach on the hot read
#: mix at the 10k-job scale (with bit-identical responses).
READ_PATH_SPEEDUP_FLOOR = 3.0

#: Throughput multiple the pipelined async transport must reach over the
#: recorded threaded-XML-RPC baseline (see
#: :data:`repro.analysis.load.RECORDED_XMLRPC_BASELINE_CALLS_PER_S`).
TRANSPORT_SPEEDUP_FLOOR = 20.0


class BenchError(RuntimeError):
    """Raised when a benchmark invariant (identity, speedup floor) fails."""


class BenchSchemaError(ValueError):
    """Raised by :func:`validate_report` for malformed bench reports."""


# ----------------------------------------------------------------------
# timing helpers
# ----------------------------------------------------------------------
def _best_time_s(fn: Callable[[], object], repeats: int) -> float:
    """Wall-clock seconds of one execution of *fn*, best of *repeats*."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _latencies_ms(fn: Callable[[], object], calls: int) -> List[float]:
    out = []
    for _ in range(calls):
        t0 = time.perf_counter()
        fn()
        out.append((time.perf_counter() - t0) * 1e3)
    return out


def _percentile(values: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), q))


# ----------------------------------------------------------------------
# synthetic workload
# ----------------------------------------------------------------------
def _make_applications(n_apps: int, rng: np.random.Generator) -> List[Dict[str, object]]:
    """Distinct "applications": attribute combos the §6.1 templates bucket on."""
    apps = []
    for i in range(n_apps):
        apps.append({
            "owner": f"user{rng.integers(0, max(2, n_apps // 4)):03d}",
            "account": f"acct{rng.integers(0, 8):02d}",
            "partition": ("compute", "io", "gpu")[int(rng.integers(0, 3))],
            "queue": ("standard", "express")[int(rng.integers(0, 2))],
            "nodes": int(rng.integers(1, 9)),
            "task_type": "batch",
            "executable": f"app{i:05d}",
            "mean_runtime_s": float(rng.lognormal(6.0, 1.0)),
        })
    return apps


def _history_records(n_records: int, rng: np.random.Generator):
    """*n_records* completed-task records over ~n/5 distinct applications."""
    from repro.core.estimators.history import TaskRecord

    per_app = 5
    apps = _make_applications(max(1, n_records // per_app), rng)
    records = []
    for i in range(n_records):
        app = apps[i % len(apps)]
        runtime = float(app["mean_runtime_s"]) * float(rng.lognormal(0.0, 0.15))
        records.append(TaskRecord(
            owner=str(app["owner"]), account=str(app["account"]),
            partition=str(app["partition"]), queue=str(app["queue"]),
            nodes=int(app["nodes"]), task_type=str(app["task_type"]),
            executable=str(app["executable"]),
            requested_cpu_hours=float(rng.uniform(0.1, 10.0)),
            runtime_s=runtime,
        ))
    return apps, records


def _specs_for(apps, n_specs: int, rng: np.random.Generator):
    from repro.gridsim.job import TaskSpec

    specs = []
    for _ in range(n_specs):
        app = apps[int(rng.integers(0, len(apps)))]
        specs.append(TaskSpec(
            owner=str(app["owner"]), account=str(app["account"]),
            partition=str(app["partition"]), queue=str(app["queue"]),
            nodes=int(app["nodes"]), task_type=str(app["task_type"]),
            executable=str(app["executable"]),
            requested_cpu_hours=float(rng.uniform(0.1, 10.0)),
        ))
    return specs


# ----------------------------------------------------------------------
# section 1: runtime estimator throughput (history index)
# ----------------------------------------------------------------------
def bench_runtime_estimator(
    history_size: int, queries: int, repeats: int, seed: int
) -> Dict[str, object]:
    """Indexed vs naive similar-task matching at one history scale."""
    from repro.core.estimators.history import HistoryRepository
    from repro.core.estimators.runtime import RuntimeEstimator

    rng = np.random.default_rng(seed)
    apps, records = _history_records(history_size, rng)
    specs = _specs_for(apps, queries, rng)

    indexed = RuntimeEstimator(HistoryRepository(records))
    naive = RuntimeEstimator(HistoryRepository(records, indexed=False))

    # Estimates must be bit-identical between the two paths (warms the
    # index as a side effect, so the timed passes measure steady state).
    indexed_values = [indexed.estimate(s).value for s in specs]
    naive_values = [naive.estimate(s).value for s in specs]
    identical = indexed_values == naive_values

    indexed_s = _best_time_s(lambda: [indexed.estimate(s) for s in specs], repeats)
    naive_s = _best_time_s(lambda: [naive.estimate(s) for s in specs], repeats)
    return {
        "history_size": history_size,
        "queries": queries,
        "naive_s": naive_s,
        "indexed_s": indexed_s,
        "naive_per_estimate_ms": naive_s / queries * 1e3,
        "indexed_per_estimate_ms": indexed_s / queries * 1e3,
        "naive_throughput_per_s": queries / naive_s,
        "indexed_throughput_per_s": queries / indexed_s,
        "speedup": naive_s / indexed_s,
        "identical": identical,
    }


# ----------------------------------------------------------------------
# section 2: queue-time estimation (incremental band accounting)
# ----------------------------------------------------------------------
def bench_queue_time(
    queue_depth: int, queries: int, repeats: int, seed: int, bands: int = 5
) -> Dict[str, object]:
    """Incremental vs naive ``estimate_for_new`` at one queue depth."""
    from repro.core.estimators.queue_time import QueueTimeEstimator, RuntimeEstimateDB
    from repro.gridsim.clock import Simulator
    from repro.gridsim.execution import ExecutionService
    from repro.gridsim.job import Task, TaskSpec, reset_id_counters
    from repro.gridsim.site import Site

    reset_id_counters()
    rng = np.random.default_rng(seed)
    sim = Simulator()
    site = Site.simple(sim, "bench", n_nodes=1, cpus_per_node=2)
    service = ExecutionService(site)
    db = RuntimeEstimateDB()
    estimator = QueueTimeEstimator(db, fallback_runtime_s=3600.0)
    estimator.attach(service)

    # Fill the queue: 2 run, the rest idle across the priority bands.
    # Half the estimates land before the submit, half after (the late path
    # the RuntimeEstimateDB listener covers).
    for i in range(queue_depth):
        work = float(rng.uniform(100.0, 10_000.0))
        task = Task(
            spec=TaskSpec(priority=int(rng.integers(0, bands))), work_seconds=work
        )
        estimate = work * float(rng.lognormal(0.0, 0.1))
        if i % 2 == 0:
            db.record(task.task_id, estimate)
            service.submit_task(task)
        else:
            service.submit_task(task)
            db.record(task.task_id, estimate)
    sim.run_until(50.0)  # accrue some elapsed runtime on the running pair

    priorities = [int(p) for p in rng.integers(0, bands, size=queries)]
    incremental_values = [
        estimator.estimate_for_new(service, priority=p) for p in priorities
    ]
    naive_values = [
        estimator.estimate_for_new(service, priority=p, naive=True) for p in priorities
    ]
    identical = incremental_values == naive_values

    incremental_s = _best_time_s(
        lambda: [estimator.estimate_for_new(service, priority=p) for p in priorities],
        repeats,
    )
    naive_s = _best_time_s(
        lambda: [
            estimator.estimate_for_new(service, priority=p, naive=True)
            for p in priorities
        ],
        repeats,
    )
    return {
        "queue_depth": queue_depth,
        "bands": bands,
        "running": len(service.running_info()),
        "queries": queries,
        "naive_s": naive_s,
        "incremental_s": incremental_s,
        "naive_per_estimate_ms": naive_s / queries * 1e3,
        "incremental_per_estimate_ms": incremental_s / queries * 1e3,
        "speedup": naive_s / incremental_s,
        "identical": identical,
    }


# ----------------------------------------------------------------------
# section 3: transfer-time estimation (memoized bandwidth probes)
# ----------------------------------------------------------------------
def bench_transfer_time(calls: int, repeats: int, seed: int) -> Dict[str, object]:
    """TTL-memoized vs fresh-probe transfer estimates over a star WAN."""
    from repro.core.estimators.transfer_time import TransferTimeEstimator
    from repro.gridsim.network import IperfProbe, Link, Network

    rng = np.random.default_rng(seed)
    network = Network()
    sites = [f"site{i}" for i in range(6)]
    for name in sites[1:]:
        network.add_link(Link(
            "site0", name,
            capacity_mbps=float(rng.uniform(100.0, 1000.0)),
            latency_s=float(rng.uniform(0.01, 0.08)),
        ))
    # noise_sigma=0 so cached and fresh probes are comparable bit-for-bit.
    probe = IperfProbe(network, noise_sigma=0.0)
    ticks = iter(range(10_000_000))
    cached = TransferTimeEstimator(
        probe, cache_ttl_s=1e9, clock=lambda: float(next(ticks))
    )
    pairs = [(a, b) for a in sites for b in sites if a != b]
    workload = [pairs[i % len(pairs)] for i in range(calls)]
    sizes = [float(s) for s in rng.uniform(10.0, 2000.0, size=calls)]

    cached_values = [
        cached.estimate(a, b, size).transfer_time_s
        for (a, b), size in zip(workload, sizes)
    ]
    fresh_values = [
        cached.estimate(a, b, size, fresh=True).transfer_time_s
        for (a, b), size in zip(workload, sizes)
    ]
    identical = cached_values == fresh_values

    cached_s = _best_time_s(
        lambda: [
            cached.estimate(a, b, size) for (a, b), size in zip(workload, sizes)
        ],
        repeats,
    )
    fresh_s = _best_time_s(
        lambda: [
            cached.estimate(a, b, size, fresh=True)
            for (a, b), size in zip(workload, sizes)
        ],
        repeats,
    )
    return {
        "pairs": len(pairs),
        "calls": calls,
        "fresh_s": fresh_s,
        "cached_s": cached_s,
        "fresh_per_estimate_ms": fresh_s / calls * 1e3,
        "cached_per_estimate_ms": cached_s / calls * 1e3,
        "speedup": fresh_s / cached_s,
        "identical": identical,
        "cache": cached.cache_stats.as_dict(),
    }


# ----------------------------------------------------------------------
# sections 4+5: end-to-end decision and monitoring latency
# ----------------------------------------------------------------------
def _build_loaded_gae(seed: int, queued_per_site: int):
    from repro.core.estimators.history import HistoryRepository
    from repro.gae import build_gae
    from repro.gridsim import GridBuilder
    from repro.gridsim.job import Task, TaskSpec, reset_id_counters

    reset_id_counters()
    rng = np.random.default_rng(seed)
    apps, records = _history_records(2_000, rng)
    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=2, background_load=0.5)
        .site("siteB", nodes=2, background_load=0.0)
        .site("siteC", nodes=1, background_load=1.0)
        .link("siteA", "siteB", capacity_mbps=622.0, latency_s=0.05)
        .link("siteB", "siteC", capacity_mbps=155.0, latency_s=0.08)
        .probe_noise(0.0)
        .build()
    )
    gae = build_gae(grid, history=HistoryRepository(records))
    task_ids = []
    for name in sorted(grid.execution_services):
        service = grid.execution_services[name]
        for _ in range(queued_per_site):
            task = Task(
                spec=TaskSpec(priority=int(rng.integers(0, 5))),
                work_seconds=float(rng.uniform(500.0, 5_000.0)),
            )
            service.submit_task(task)
            gae.estimators.estimate_db.record(task.task_id, task.work_seconds)
            task_ids.append(task.task_id)
    grid.run_until(30.0)
    return gae, apps, task_ids


def bench_steering_decision(
    decisions: int, queued_per_site: int, seed: int
) -> Dict[str, object]:
    """Latency of one optimizer site-comparison (``completion_by_site``)."""
    gae, apps, _ = _build_loaded_gae(seed, queued_per_site)
    rng = np.random.default_rng(seed + 1)
    specs = _specs_for(apps, decisions, rng)
    it = iter(specs)
    latencies = _latencies_ms(
        lambda: gae.estimators.completion_by_site(next(it)), decisions
    )
    return {
        "sites": len(gae.grid.sites),
        "queued_per_site": queued_per_site,
        "decisions": decisions,
        "mean_ms": float(np.mean(latencies)),
        "p50_ms": _percentile(latencies, 50),
        "p95_ms": _percentile(latencies, 95),
    }


def bench_monitoring_query(
    queries: int, queued_per_site: int, seed: int
) -> Dict[str, object]:
    """Latency of ``jobmon.job_info`` through the Clarens call pipeline."""
    gae, _, task_ids = _build_loaded_gae(seed, queued_per_site)
    gae.add_user("bench", "bench")
    client = gae.client("bench", "bench")
    jobmon = client.service("jobmon")
    counter = iter(range(queries))
    latencies = _latencies_ms(
        lambda: jobmon.job_info(task_ids[next(counter) % len(task_ids)]), queries
    )
    client.close()
    return {
        "queries": queries,
        "queued_per_site": queued_per_site,
        "mean_ms": float(np.mean(latencies)),
        "p50_ms": _percentile(latencies, 50),
        "p95_ms": _percentile(latencies, 95),
    }


# ----------------------------------------------------------------------
# section 6: observability instrumentation overhead
# ----------------------------------------------------------------------
def _gae_at_scale(seed: int, n_tasks: int, observability: bool,
                  telemetry: bool = True):
    """A two-site GAE holding ``n_tasks`` live single-task jobs."""
    from repro.gae import SteeringPolicy, build_gae
    from repro.gridsim import GridBuilder
    from repro.gridsim.job import Job, Task, TaskSpec, reset_id_counters

    reset_id_counters()
    rng = np.random.default_rng(seed)
    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=64, cpus_per_node=4)
        .site("siteB", nodes=64, cpus_per_node=4)
        .link("siteA", "siteB", capacity_mbps=622.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )
    # No auto-steering and a slow poll: both configurations idle the same
    # way, so the timed batches measure the verbs, not the optimizer.
    gae = build_gae(
        grid,
        observability=observability,
        telemetry=telemetry,
        policy=SteeringPolicy(auto_move=False, poll_interval_s=3_600.0),
    )
    gae.add_user("bench", "bench")
    gae.start()
    task_ids = []
    for work in rng.uniform(50.0, 500.0, n_tasks):
        task = Task(
            spec=TaskSpec(owner="bench", priority=int(rng.integers(0, 5))),
            work_seconds=float(work),
        )
        task_ids.append(task.task_id)
        gae.scheduler.submit_job(Job(tasks=[task], owner="bench"))
    grid.run_until(100.0)  # dispatch settles; the bulk of the queue idles
    return gae, task_ids


def bench_observability_overhead(
    n_tasks: int, commands: int, rounds: int, seed: int
) -> Dict[str, object]:
    """Steering-verb latency with vs without the tracing/journal layer.

    Three identical GAEs hold ``n_tasks`` live jobs each: one bare
    (``observability=False``), one with tracing+journal but the windowed
    telemetry/health layer off (``telemetry=False``), and one fully
    instrumented.  An identical batch of ``set_priority`` steering verbs
    (the §4 priority-change path, a full Clarens RPC plus a Condor queue
    re-prioritisation) then runs against the tail of each queue.  Rounds
    rotate which configuration is timed first and the best round per
    configuration is kept, so scheduler noise on a busy machine cannot
    masquerade as instrumentation cost.  ``overhead_pct`` compares the
    fully instrumented GAE against the bare one (the long-standing
    acceptance gate); ``telemetry_overhead_pct`` isolates what the
    telemetry pipeline + health engine add on top of tracing+journal.
    """
    BARE, TRACED, FULL = "bare", "traced", "full"
    builds = {BARE: (False, False), TRACED: (True, False), FULL: (True, True)}
    configs = {}
    for label, (observability, telemetry) in builds.items():
        gae, task_ids = _gae_at_scale(
            seed, n_tasks, observability, telemetry=telemetry
        )
        steering = gae.client("bench", "bench").service("steering")
        configs[label] = (gae, steering, task_ids[-commands:])

    def run_batch(label: str, priority: int):
        _, steering, sample = configs[label]
        ok = 0
        start = time.perf_counter()
        for task_id in sample:
            ok += steering.set_priority(task_id, priority)["ok"]
        return time.perf_counter() - start, ok

    for label in configs:  # warm every pipeline
        run_batch(label, 1)
    best = {label: float("inf") for label in configs}
    ok_counts = {}
    labels = (FULL, TRACED, BARE)
    for round_no in range(rounds):
        order = labels[round_no % 3:] + labels[:round_no % 3]
        priority = 2 + round_no % 2  # alternate so every re-sort is real
        for label in order:
            elapsed, ok_counts[label] = run_batch(label, priority)
            best[label] = min(best[label], elapsed)

    instrumentation = configs[FULL][0].observability
    spans, events = len(instrumentation.tracer), len(instrumentation.journal)
    windows = instrumentation.telemetry.windows_closed
    for gae, _, _ in configs.values():
        gae.stop()

    baseline_s, traced_s, instrumented_s = best[BARE], best[TRACED], best[FULL]
    return {
        "n_tasks": n_tasks,
        "commands": commands,
        "rounds": rounds,
        "baseline_s": baseline_s,
        "traced_s": traced_s,
        "instrumented_s": instrumented_s,
        "baseline_per_command_ms": baseline_s / commands * 1e3,
        "traced_per_command_ms": traced_s / commands * 1e3,
        "instrumented_per_command_ms": instrumented_s / commands * 1e3,
        "overhead_pct": (instrumented_s / baseline_s - 1.0) * 100.0,
        "telemetry_overhead_pct": (instrumented_s / traced_s - 1.0) * 100.0,
        "identical": all(ok_counts[label] == commands for label in configs),
        "spans": spans,
        "events": events,
        "windows": windows,
    }


# ----------------------------------------------------------------------
# section 6b: event-sourced core (journal-first write path marginal cost)
# ----------------------------------------------------------------------
def bench_event_core(
    n_tasks: int, commands: int, rounds: int, seed: int
) -> Dict[str, object]:
    """Steering-verb latency with the journal-first write path vs direct.

    Two identical fully-instrumented GAEs hold ``n_tasks`` live jobs
    each.  One keeps the event-sourced core (every producer journals
    first, consumers fold the event into their stores); the other has
    the core surgically reverted — dispatch listener removed, emit
    seams cleared — so writes take the original direct path.  The same
    ``set_priority`` batch then times both, isolating what event
    sourcing adds on top of tracing+journal (the ``observability``
    section's gate).  The event-sourced GAE afterwards writes one full
    and one incremental checkpoint (journal tail + runtime state, no
    consumer namespaces) so the report records the size/time trade-off
    of snapshot-plus-tail persistence, and every consumer must rebuild
    bit-identically from the journal.
    """
    import os
    import tempfile

    from repro.store.checkpoint import Checkpointer

    EVENTED, DIRECT = "evented", "direct"
    configs = {}
    for label in (EVENTED, DIRECT):
        gae, task_ids = _gae_at_scale(seed, n_tasks, observability=True)
        if label == DIRECT:
            core = gae.observability.eventcore
            core.journal.listeners.remove(core._dispatch)
            core._installed = False
            gae.estimators.estimate_sink = None
            gae.monitoring.db_manager.emit = None
            gae.monalisa.emit = None
        steering = gae.client("bench", "bench").service("steering")
        configs[label] = (gae, steering, task_ids[-commands:])

    def run_batch(label: str, priority: int):
        _, steering, sample = configs[label]
        ok = 0
        start = time.perf_counter()
        for task_id in sample:
            ok += steering.set_priority(task_id, priority)["ok"]
        return time.perf_counter() - start, ok

    for label in configs:  # warm every pipeline
        run_batch(label, 1)
    best = {label: float("inf") for label in configs}
    ok_counts = {}
    labels = (EVENTED, DIRECT)
    for round_no in range(rounds):
        order = labels[round_no % 2:] + labels[:round_no % 2]
        priority = 2 + round_no % 2  # alternate so every re-sort is real
        for label in order:
            elapsed, ok_counts[label] = run_batch(label, priority)
            best[label] = min(best[label], elapsed)

    evented = configs[EVENTED][0]
    reports = evented.observability.eventcore.verify_all()
    rebuild_identical = all(r["identical"] and r["covered"] for r in reports)

    with tempfile.TemporaryDirectory() as tmp:
        full_path = os.path.join(tmp, "full.sqlite")
        delta_path = os.path.join(tmp, "delta.sqlite")
        ckpt = Checkpointer(evented)
        start = time.perf_counter()
        ckpt.checkpoint(full_path)
        full_write_s = time.perf_counter() - start
        # Accrue a journal tail, then write the delta against the base.
        evented.grid.run_until(evented.sim.now + 60.0)
        start = time.perf_counter()
        ckpt.checkpoint_incremental(delta_path)
        incremental_write_s = time.perf_counter() - start
        full_bytes = os.path.getsize(full_path)
        delta_bytes = os.path.getsize(delta_path)

    journal_events = len(evented.observability.journal)
    for gae, _, _ in configs.values():
        gae.stop()

    direct_s, evented_s = best[DIRECT], best[EVENTED]
    return {
        "n_tasks": n_tasks,
        "commands": commands,
        "rounds": rounds,
        "direct_s": direct_s,
        "evented_s": evented_s,
        "direct_per_command_ms": direct_s / commands * 1e3,
        "evented_per_command_ms": evented_s / commands * 1e3,
        "overhead_pct": (evented_s / direct_s - 1.0) * 100.0,
        # Identity here is *between the two write paths*: both must accept
        # and reject exactly the same verbs (a task that completed before
        # the batch is rejected by both, equally).
        "identical": ok_counts[EVENTED] == ok_counts[DIRECT] > 0,
        "rebuild_identical": rebuild_identical,
        "consumers": len(reports),
        "journal_events": journal_events,
        "full_checkpoint_bytes": full_bytes,
        "incremental_checkpoint_bytes": delta_bytes,
        "incremental_vs_full_pct": 100.0 * delta_bytes / full_bytes,
        "full_checkpoint_write_s": full_write_s,
        "incremental_checkpoint_write_s": incremental_write_s,
    }


# ----------------------------------------------------------------------
# section 7: persistence (batched snapshot writes, backend identity)
# ----------------------------------------------------------------------
def _monitoring_records(n: int, seed: int):
    from repro.core.monitoring.records import MonitoringRecord

    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        work = float(rng.uniform(100.0, 10_000.0))
        elapsed = float(rng.uniform(0.0, work))
        records.append(MonitoringRecord(
            task_id=f"task-{i:06d}", job_id=f"job-{i // 10:05d}",
            site=("siteA", "siteB")[i % 2], status="running",
            elapsed_time_s=elapsed, estimated_run_time_s=work,
            remaining_time_s=max(0.0, work - elapsed), progress=elapsed / work,
            queue_position=-1, priority=int(rng.integers(0, 5)),
            submission_time=float(i), execution_time=float(i) + 1.0,
            completion_time=None, cpu_time_used_s=elapsed,
            input_io_mb=50.0, output_io_mb=10.0, owner=f"user{i % 17:03d}",
            snapshot_time=float(rng.uniform(0.0, 1_000.0)),
        ))
    return records


def bench_persistence(n_records: int, repeats: int, seed: int) -> Dict[str, object]:
    """Snapshot-write throughput: per-record commits vs one batched upsert.

    The periodic monitoring snapshot persists every running task; this
    times writing ``n_records`` records into a fresh ``DBManager`` as a
    loop of :meth:`~repro.core.monitoring.db_manager.DBManager.update`
    calls (one transaction each) and as a single
    :meth:`~repro.core.monitoring.db_manager.DBManager.update_many`
    batch, then asserts the two leave bit-identical rows behind.  A
    second identity check round-trips the rows through ``MemoryStore``
    and ``SqliteStore`` export/import.
    """
    import tempfile

    from repro.core.monitoring.db_manager import DBManager
    from repro.store import MemoryStore, SqliteStore
    from repro.store.registry import MONITORING_JOBS, register_all

    records = _monitoring_records(n_records, seed)

    def write_loop():
        with DBManager() as db:
            for record in records:
                db.update(record)
            return db.export_state()

    def write_batched():
        with DBManager() as db:
            db.update_many(records)
            return db.export_state()

    loop_state = write_loop()
    batched_state = write_batched()
    identical = loop_state == batched_state

    loop_s = _best_time_s(write_loop, repeats)
    batched_s = _best_time_s(write_batched, repeats)

    # Backend identity: the same exported rows, pushed through both store
    # backends, must read back bit-identical.
    memory = MemoryStore()
    register_all(memory)
    memory.put(MONITORING_JOBS, "state", batched_state)
    with tempfile.TemporaryDirectory() as tmp:
        with SqliteStore(f"{tmp}/bench_store.sqlite") as sqlite_store:
            register_all(sqlite_store)
            sqlite_store.put(MONITORING_JOBS, "state", batched_state)
            backends_identical = (
                memory.get(MONITORING_JOBS, "state")
                == sqlite_store.get(MONITORING_JOBS, "state")
                == batched_state
            )
    return {
        "records": n_records,
        "loop_s": loop_s,
        "batched_s": batched_s,
        "loop_per_record_ms": loop_s / n_records * 1e3,
        "batched_per_record_ms": batched_s / n_records * 1e3,
        "loop_throughput_per_s": n_records / loop_s,
        "batched_throughput_per_s": n_records / batched_s,
        "speedup": loop_s / batched_s,
        "identical": identical,
        "backends_identical": backends_identical,
    }


# ----------------------------------------------------------------------
# section 8: RPC read path (epoch-keyed cache + coalescing)
# ----------------------------------------------------------------------
def bench_rpc_read_path(
    n_tasks: int, workers: int, calls_per_worker: int, seed: int
) -> Dict[str, object]:
    """Cached vs uncached RPC throughput on the closed-loop hot read mix.

    Delegates to :func:`repro.analysis.load.measure_read_path` — the same
    machinery behind ``gae-repro loadtest`` — so the asserted bench
    section and the interactive harness can never drift apart.  The
    returned row carries both correctness (``identical``: every response
    of the interleaved read/mutation schedule compared equal at the wire
    level) and capacity (``speedup``: cached over uncached closed-loop
    call rate), plus the cache's own counters.
    """
    from repro.analysis.load import measure_read_path

    return measure_read_path(
        n_tasks, workers=workers, calls_per_worker=calls_per_worker, seed=seed
    )


# ----------------------------------------------------------------------
# section 9: wire transports (framed async + codecs vs threaded XML-RPC)
# ----------------------------------------------------------------------
def bench_transport(
    n_tasks: int, workers: int, calls_per_worker: int, seed: int
) -> Dict[str, object]:
    """Framed async transport (both codecs) vs threaded XML-RPC over HTTP.

    Delegates to :func:`repro.analysis.load.measure_transport` — shared
    with ``gae-repro loadtest`` — so the bench section and the harness
    cannot drift.  The row carries the identity verdict per
    transport/codec combination and the closed-loop rates (threaded
    HTTP; async serial and pipelined per codec), with the headline
    pipelined rate compared against both the recorded 10k-job threaded
    baseline and the live threaded measurement from the same run.
    """
    from repro.analysis.load import measure_transport

    return measure_transport(
        n_tasks, workers=workers, calls_per_worker=calls_per_worker, seed=seed
    )


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def run_bench(
    quick: bool = False,
    seed: int = 1995,
    out: Optional[str] = None,
    history_scales: Optional[Sequence[int]] = None,
    queue_scales: Optional[Sequence[int]] = None,
    echo: Callable[[str], None] = print,
) -> Dict[str, object]:
    """Run every section, assert the invariants, and return the report.

    ``quick`` shrinks workloads for CI smoke runs (the 10k-history scale
    and every identity assertion are kept).  ``out`` additionally writes
    the JSON report to that path.
    """
    if history_scales is None:
        history_scales = QUICK_HISTORY_SCALES if quick else DEFAULT_HISTORY_SCALES
    if queue_scales is None:
        queue_scales = QUICK_QUEUE_SCALES if quick else DEFAULT_QUEUE_SCALES
    queries = 30 if quick else 100
    repeats = 2 if quick else 3

    echo(f"gae-repro bench (quick={quick}, seed={seed})")
    echo(f"  runtime estimator: history scales {list(history_scales)}")
    runtime_rows = [
        bench_runtime_estimator(n, queries=queries, repeats=repeats, seed=seed)
        for n in history_scales
    ]
    echo(f"  queue time: queue depths {list(queue_scales)}")
    queue_rows = [
        bench_queue_time(n, queries=queries, repeats=repeats, seed=seed)
        for n in queue_scales
    ]
    echo("  transfer time: memoized probes")
    transfer = bench_transfer_time(
        calls=200 if quick else 2_000, repeats=repeats, seed=seed
    )
    echo("  steering decision latency")
    steering = bench_steering_decision(
        decisions=10 if quick else 50, queued_per_site=50, seed=seed
    )
    echo("  monitoring query latency")
    monitoring = bench_monitoring_query(
        queries=200 if quick else 1_000, queued_per_site=50, seed=seed
    )
    echo("  observability instrumentation overhead")
    observability = bench_observability_overhead(
        n_tasks=2_000 if quick else 10_000,
        commands=100 if quick else 300,
        rounds=3 if quick else 5,
        seed=seed,
    )
    echo("  event-sourced core overhead + incremental checkpoints")
    event_core = bench_event_core(
        n_tasks=2_000 if quick else 10_000,
        commands=100 if quick else 300,
        rounds=3 if quick else 5,
        seed=seed,
    )
    echo("  persistence: batched snapshot writes")
    persistence = bench_persistence(
        n_records=2_000 if quick else 10_000, repeats=repeats, seed=seed
    )
    echo("  rpc read path: cached vs uncached host under closed-loop load")
    rpc_read_path = bench_rpc_read_path(
        n_tasks=2_000 if quick else 10_000,
        workers=4 if quick else 8,
        calls_per_worker=150 if quick else 1_000,
        seed=seed,
    )
    echo("  wire transports: threaded XML-RPC vs framed async, both codecs")
    transport = bench_transport(
        n_tasks=200 if quick else 400,
        workers=4 if quick else 8,
        calls_per_worker=80 if quick else 250,
        seed=seed,
    )

    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "gae-repro bench",
        "quick": bool(quick),
        "seed": int(seed),
        "python": platform.python_version(),
        "sections": {
            "runtime_estimator": {"scales": runtime_rows},
            "queue_time": {"scales": queue_rows},
            "transfer_time": transfer,
            "steering": steering,
            "monitoring": monitoring,
            "observability": observability,
            "event_core": event_core,
            "persistence": persistence,
            "rpc_read_path": rpc_read_path,
            "transport": transport,
        },
    }

    _assert_invariants(report)
    validate_report(report)
    _print_summary(report, echo)
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        echo(f"wrote {out}")
    return report


def _assert_invariants(report: Dict[str, object]) -> None:
    sections = report["sections"]
    for row in sections["runtime_estimator"]["scales"]:  # type: ignore[index]
        if not row["identical"]:
            raise BenchError(
                f"indexed runtime estimates diverged from naive at history "
                f"size {row['history_size']}"
            )
        if row["history_size"] >= 10_000 and row["speedup"] < RUNTIME_SPEEDUP_FLOOR:
            raise BenchError(
                f"indexed estimator speedup {row['speedup']:.1f}x at "
                f"{row['history_size']} records is below the "
                f"{RUNTIME_SPEEDUP_FLOOR}x floor"
            )
    for row in sections["queue_time"]["scales"]:  # type: ignore[index]
        if not row["identical"]:
            raise BenchError(
                f"incremental queue-time estimates diverged from naive at "
                f"depth {row['queue_depth']}"
            )
    if not sections["transfer_time"]["identical"]:  # type: ignore[index]
        raise BenchError("memoized transfer estimates diverged from fresh probes")
    obs = sections["observability"]  # type: ignore[index]
    if not obs["identical"]:
        raise BenchError(
            "steering verbs did not all succeed identically with and "
            "without observability"
        )
    if obs["events"] <= 0 or obs["spans"] <= 0:
        raise BenchError("instrumented GAE recorded no spans/events")
    if obs["windows"] <= 0:
        raise BenchError("instrumented GAE closed no telemetry windows")
    if obs["n_tasks"] >= 10_000 and obs["overhead_pct"] >= OVERHEAD_CEILING_PCT:
        raise BenchError(
            f"tracing+journal adds {obs['overhead_pct']:.1f}% to steering "
            f"latency at {obs['n_tasks']} jobs, above the "
            f"{OVERHEAD_CEILING_PCT:.0f}% ceiling"
        )
    if (
        obs["n_tasks"] >= 10_000
        and obs["telemetry_overhead_pct"] >= OVERHEAD_CEILING_PCT
    ):
        raise BenchError(
            f"telemetry+health adds {obs['telemetry_overhead_pct']:.1f}% on "
            f"top of tracing+journal at {obs['n_tasks']} jobs, above the "
            f"{OVERHEAD_CEILING_PCT:.0f}% ceiling"
        )
    event_core = sections["event_core"]  # type: ignore[index]
    if not event_core["identical"]:
        raise BenchError(
            "steering verbs did not all succeed identically with the "
            "journal-first and direct write paths"
        )
    if not event_core["rebuild_identical"]:
        raise BenchError(
            "a journal consumer's fold-from-journal state diverged from "
            "its live store"
        )
    if (
        event_core["n_tasks"] >= 10_000
        and event_core["overhead_pct"] >= OVERHEAD_CEILING_PCT
    ):
        raise BenchError(
            f"the event-sourced write path adds "
            f"{event_core['overhead_pct']:.1f}% to steering latency at "
            f"{event_core['n_tasks']} jobs, above the "
            f"{OVERHEAD_CEILING_PCT:.0f}% ceiling"
        )
    persistence = sections["persistence"]  # type: ignore[index]
    if not persistence["identical"]:
        raise BenchError(
            "batched update_many left different monitoring rows than a "
            "loop of update calls"
        )
    if not persistence["backends_identical"]:
        raise BenchError(
            "monitoring state did not round-trip bit-identically through "
            "MemoryStore and SqliteStore"
        )
    read_path = sections["rpc_read_path"]  # type: ignore[index]
    if not read_path["identical"]:
        raise BenchError(
            "cached host answered the read/mutation schedule differently "
            "from the uncached host"
        )
    if read_path["cache"]["hits"] <= 0 or read_path["cache"]["coalesced"] <= 0:
        raise BenchError(
            "read cache recorded no hits (or no coalesced sub-calls) "
            "under the hot mix"
        )
    if (
        read_path["n_tasks"] >= 10_000
        and read_path["speedup"] < READ_PATH_SPEEDUP_FLOOR
    ):
        raise BenchError(
            f"cached read path reached only {read_path['speedup']:.1f}x the "
            f"uncached throughput at {read_path['n_tasks']} jobs, below "
            f"the {READ_PATH_SPEEDUP_FLOOR}x floor"
        )
    transport = sections["transport"]  # type: ignore[index]
    if not transport["identical"]:
        broken = [k for k, v in transport["identity"].items() if not v]
        raise BenchError(
            f"transports answered the schedule differently from direct "
            f"dispatch: {', '.join(broken)}"
        )
    if transport["speedup_vs_recorded"] < TRANSPORT_SPEEDUP_FLOOR:
        raise BenchError(
            f"pipelined async transport reached "
            f"{transport['async_calls_per_s']:.0f} calls/s, only "
            f"{transport['speedup_vs_recorded']:.1f}x the recorded "
            f"threaded-XML-RPC baseline, below the "
            f"{TRANSPORT_SPEEDUP_FLOOR}x floor"
        )


def _print_summary(report: Dict[str, object], echo: Callable[[str], None]) -> None:
    from repro.analysis.report import markdown_table

    sections = report["sections"]
    echo("")
    echo("runtime estimator (indexed history vs full scan)")
    echo(markdown_table(
        ["history", "naive est/s", "indexed est/s", "speedup", "identical"],
        [
            [
                row["history_size"],
                round(row["naive_throughput_per_s"], 1),
                round(row["indexed_throughput_per_s"], 1),
                f"{row['speedup']:.1f}x",
                row["identical"],
            ]
            for row in sections["runtime_estimator"]["scales"]
        ],
    ))
    echo("queue-time estimator (per-band sums vs queue scan)")
    echo(markdown_table(
        ["queue depth", "naive ms/est", "incremental ms/est", "speedup", "identical"],
        [
            [
                row["queue_depth"],
                round(row["naive_per_estimate_ms"], 4),
                round(row["incremental_per_estimate_ms"], 4),
                f"{row['speedup']:.1f}x",
                row["identical"],
            ]
            for row in sections["queue_time"]["scales"]
        ],
    ))
    t = sections["transfer_time"]
    echo("transfer-time estimator (TTL-memoized vs fresh probes)")
    echo(markdown_table(
        ["calls", "fresh ms/est", "cached ms/est", "speedup", "identical"],
        [[
            t["calls"], round(t["fresh_per_estimate_ms"], 4),
            round(t["cached_per_estimate_ms"], 4),
            f"{t['speedup']:.1f}x", t["identical"],
        ]],
    ))
    s, m = sections["steering"], sections["monitoring"]
    echo("end-to-end latency")
    echo(markdown_table(
        ["path", "mean (ms)", "p50 (ms)", "p95 (ms)"],
        [
            ["steering decision (completion_by_site)",
             round(s["mean_ms"], 3), round(s["p50_ms"], 3), round(s["p95_ms"], 3)],
            ["monitoring query (jobmon.job_info)",
             round(m["mean_ms"], 3), round(m["p50_ms"], 3), round(m["p95_ms"], 3)],
        ],
    ))
    o = sections["observability"]
    echo("observability instrumentation (steering verbs: bare vs traced vs "
         "traced+telemetry)")
    echo(markdown_table(
        ["jobs", "verbs", "off ms/verb", "traced ms/verb", "full ms/verb",
         "overhead", "telemetry", "identical"],
        [[
            o["n_tasks"], o["commands"],
            round(o["baseline_per_command_ms"], 3),
            round(o["traced_per_command_ms"], 3),
            round(o["instrumented_per_command_ms"], 3),
            f"{o['overhead_pct']:+.1f}%",
            f"{o['telemetry_overhead_pct']:+.1f}%",
            o["identical"],
        ]],
    ))
    e = sections["event_core"]
    echo("event-sourced core (steering verbs: direct vs journal-first; "
         "incremental vs full checkpoint)")
    echo(markdown_table(
        ["jobs", "verbs", "direct ms/verb", "evented ms/verb", "overhead",
         "rebuild identical", "delta/full size"],
        [[
            e["n_tasks"], e["commands"],
            round(e["direct_per_command_ms"], 3),
            round(e["evented_per_command_ms"], 3),
            f"{e['overhead_pct']:+.1f}%",
            e["rebuild_identical"],
            f"{e['incremental_vs_full_pct']:.0f}%",
        ]],
    ))
    p = sections["persistence"]
    echo("persistence (monitoring snapshot writes, per-record vs batched)")
    echo(markdown_table(
        ["records", "loop rec/s", "batched rec/s", "speedup", "identical",
         "backends identical"],
        [[
            p["records"],
            round(p["loop_throughput_per_s"], 1),
            round(p["batched_throughput_per_s"], 1),
            f"{p['speedup']:.1f}x", p["identical"], p["backends_identical"],
        ]],
    ))
    r = sections["rpc_read_path"]
    echo("rpc read path (closed-loop hot mix, epoch-keyed cache on vs off)")
    echo(markdown_table(
        ["jobs", "workers", "calls", "uncached calls/s", "cached calls/s",
         "hit rate", "speedup", "identical"],
        [[
            r["n_tasks"], r["workers"], r["total_calls"],
            round(r["uncached_calls_per_s"], 1),
            round(r["cached_calls_per_s"], 1),
            f"{r['cache']['hit_rate']:.0%}",
            f"{r['speedup']:.1f}x", r["identical"],
        ]],
    ))
    tr = sections["transport"]
    echo("wire transports (cached host, read-only mix; async best = pipelined)")
    echo(markdown_table(
        ["threaded xmlrpc calls/s", "async best calls/s",
         "vs recorded baseline", "vs live threaded", "identical"],
        [[
            round(tr["threaded_xmlrpc_calls_per_s"], 1),
            round(tr["async_calls_per_s"], 1),
            f"{tr['speedup_vs_recorded']:.1f}x",
            f"{tr['speedup_vs_live_threaded']:.1f}x",
            tr["identical"],
        ]],
    ))


# ----------------------------------------------------------------------
# schema validation (used by the CI smoke job)
# ----------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(message)


def validate_report(report: Dict[str, object]) -> None:
    """Validate a bench report against the documented schema.

    Raises :class:`BenchSchemaError` with a pointed message on the first
    violation; returns None on success.  The schema is documented in
    ``docs/BENCHMARKS.md`` and stable under ``schema_version``.
    """
    _require(isinstance(report, dict), "report must be a JSON object")
    for key, kind in (
        ("schema_version", int), ("generated_by", str), ("quick", bool),
        ("seed", int), ("python", str), ("sections", dict),
    ):
        _require(key in report, f"missing top-level key {key!r}")
        _require(isinstance(report[key], kind),
                 f"top-level {key!r} must be {kind.__name__}")
    _require(report["schema_version"] == SCHEMA_VERSION,
             f"schema_version must be {SCHEMA_VERSION}")
    sections = report["sections"]
    for name in ("runtime_estimator", "queue_time", "transfer_time",
                 "steering", "monitoring", "observability", "event_core",
                 "persistence", "rpc_read_path", "transport"):
        _require(name in sections, f"missing section {name!r}")

    def check_row(row, fields, where):
        _require(isinstance(row, dict), f"{where} must be an object")
        for fname, ftype in fields:
            _require(fname in row, f"{where} missing field {fname!r}")
            value = row[fname]
            if ftype is float:
                _require(isinstance(value, (int, float)) and not isinstance(value, bool),
                         f"{where}.{fname} must be a number")
            else:
                _require(isinstance(value, ftype),
                         f"{where}.{fname} must be {ftype.__name__}")

    scales = sections["runtime_estimator"].get("scales")
    _require(isinstance(scales, list) and scales,
             "runtime_estimator.scales must be a non-empty list")
    for i, row in enumerate(scales):
        check_row(row, [
            ("history_size", int), ("queries", int), ("naive_s", float),
            ("indexed_s", float), ("naive_per_estimate_ms", float),
            ("indexed_per_estimate_ms", float), ("naive_throughput_per_s", float),
            ("indexed_throughput_per_s", float), ("speedup", float),
            ("identical", bool),
        ], f"runtime_estimator.scales[{i}]")
    scales = sections["queue_time"].get("scales")
    _require(isinstance(scales, list) and scales,
             "queue_time.scales must be a non-empty list")
    for i, row in enumerate(scales):
        check_row(row, [
            ("queue_depth", int), ("bands", int), ("running", int),
            ("queries", int), ("naive_s", float), ("incremental_s", float),
            ("naive_per_estimate_ms", float), ("incremental_per_estimate_ms", float),
            ("speedup", float), ("identical", bool),
        ], f"queue_time.scales[{i}]")
    check_row(sections["transfer_time"], [
        ("pairs", int), ("calls", int), ("fresh_s", float), ("cached_s", float),
        ("fresh_per_estimate_ms", float), ("cached_per_estimate_ms", float),
        ("speedup", float), ("identical", bool), ("cache", dict),
    ], "transfer_time")
    for counter in ("hits", "misses", "expirations"):
        _require(
            isinstance(sections["transfer_time"]["cache"].get(counter), int),
            f"transfer_time.cache.{counter} must be an int",
        )
    check_row(sections["steering"], [
        ("sites", int), ("queued_per_site", int), ("decisions", int),
        ("mean_ms", float), ("p50_ms", float), ("p95_ms", float),
    ], "steering")
    check_row(sections["monitoring"], [
        ("queries", int), ("queued_per_site", int),
        ("mean_ms", float), ("p50_ms", float), ("p95_ms", float),
    ], "monitoring")
    check_row(sections["observability"], [
        ("n_tasks", int), ("commands", int), ("rounds", int),
        ("baseline_s", float), ("traced_s", float), ("instrumented_s", float),
        ("baseline_per_command_ms", float), ("traced_per_command_ms", float),
        ("instrumented_per_command_ms", float),
        ("overhead_pct", float), ("telemetry_overhead_pct", float),
        ("identical", bool),
        ("spans", int), ("events", int), ("windows", int),
    ], "observability")
    check_row(sections["event_core"], [
        ("n_tasks", int), ("commands", int), ("rounds", int),
        ("direct_s", float), ("evented_s", float),
        ("direct_per_command_ms", float), ("evented_per_command_ms", float),
        ("overhead_pct", float), ("identical", bool),
        ("rebuild_identical", bool), ("consumers", int),
        ("journal_events", int),
        ("full_checkpoint_bytes", int), ("incremental_checkpoint_bytes", int),
        ("incremental_vs_full_pct", float),
        ("full_checkpoint_write_s", float),
        ("incremental_checkpoint_write_s", float),
    ], "event_core")
    check_row(sections["persistence"], [
        ("records", int), ("loop_s", float), ("batched_s", float),
        ("loop_per_record_ms", float), ("batched_per_record_ms", float),
        ("loop_throughput_per_s", float), ("batched_throughput_per_s", float),
        ("speedup", float), ("identical", bool), ("backends_identical", bool),
    ], "persistence")
    check_row(sections["rpc_read_path"], [
        ("n_tasks", int), ("workers", int), ("calls_per_worker", int),
        ("total_calls", int), ("mutations", int), ("rounds", int),
        ("identical", bool), ("uncached_wall_s", float),
        ("cached_wall_s", float), ("uncached_calls_per_s", float),
        ("cached_calls_per_s", float), ("speedup", float),
        ("cache", dict), ("mix", dict),
    ], "rpc_read_path")
    for counter in ("hits", "misses", "invalidations", "coalesced",
                    "entries", "evictions"):
        _require(
            isinstance(sections["rpc_read_path"]["cache"].get(counter), int),
            f"rpc_read_path.cache.{counter} must be an int",
        )
    check_row(sections["transport"], [
        ("n_tasks", int), ("workers", int), ("calls_per_worker", int),
        ("total_calls", int), ("pipeline_window", int), ("identical", bool),
        ("identity", dict), ("threaded_xmlrpc_calls_per_s", float),
        ("codecs", dict), ("async_calls_per_s", float),
        ("recorded_baseline_calls_per_s", float),
        ("speedup_vs_recorded", float), ("speedup_vs_live_threaded", float),
    ], "transport")
    codecs = sections["transport"]["codecs"]
    _require(len(codecs) >= 2, "transport.codecs must cover at least two codecs")
    for codec, rates in codecs.items():
        _require(isinstance(rates, dict),
                 f"transport.codecs[{codec!r}] must be an object")
        for rate_name in ("serial_calls_per_s", "pipelined_calls_per_s"):
            rate = rates.get(rate_name)
            _require(
                isinstance(rate, (int, float)) and not isinstance(rate, bool),
                f"transport.codecs[{codec!r}].{rate_name} must be a number",
            )


def validate_report_file(path: str) -> None:
    """Load *path* and validate it; raises on schema violations."""
    with open(path) as fh:
        validate_report(json.load(fh))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI for ``python -m repro.analysis.bench`` (mirrors ``gae-repro bench``)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Estimator hot-path benchmark harness (naive vs indexed)."
    )
    parser.add_argument("--quick", action="store_true", help="small CI-sized run")
    parser.add_argument("--seed", type=int, default=1995)
    parser.add_argument("--out", type=str, default="BENCH_estimators.json",
                        help="report path ('-' to skip writing)")
    parser.add_argument("--history-scales", type=int, nargs="+", default=None)
    parser.add_argument("--queue-scales", type=int, nargs="+", default=None)
    parser.add_argument("--validate", type=str, default=None, metavar="PATH",
                        help="validate an existing report instead of running")
    args = parser.parse_args(argv)
    if args.validate:
        validate_report_file(args.validate)
        print(f"{args.validate}: schema ok")
        return 0
    run_bench(
        quick=args.quick,
        seed=args.seed,
        out=None if args.out == "-" else args.out,
        history_scales=args.history_scales,
        queue_scales=args.queue_scales,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
