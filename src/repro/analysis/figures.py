"""Figure data containers with terminal-friendly rendering.

The benchmark harness reproduces each figure as *data* (the same series the
paper plots), renders an ASCII chart so the shape is visible in test
output, and can export CSV for external plotting.  No plotting library is
required.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


@dataclass
class Series:
    """One named line/bar series of (x, y) points."""

    name: str
    x: List[float]
    y: List[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x and y lengths differ")


@dataclass
class FigureData:
    """All series of one reproduced figure, plus axis labels."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)

    def add(self, name: str, x: Sequence[float], y: Sequence[float]) -> "FigureData":
        """Append a series; returns self for chaining."""
        self.series.append(Series(name=name, x=list(map(float, x)), y=list(map(float, y))))
        return self

    def to_csv(self) -> str:
        """Long-format CSV: series,x,y."""
        buf = io.StringIO()
        buf.write("series,x,y\n")
        for s in self.series:
            for xv, yv in zip(s.x, s.y):
                buf.write(f"{s.name},{xv!r},{yv!r}\n")
        return buf.getvalue()

    def render(self, width: int = 72, height: int = 18) -> str:
        """ASCII chart of every series (see :func:`ascii_chart`)."""
        return ascii_chart(self, width=width, height=height)


_MARKS = "*o+x#@%&"


def ascii_chart(figure: FigureData, width: int = 72, height: int = 18) -> str:
    """Render a FigureData as a monospace scatter/line chart.

    Each series gets its own mark character; axes are annotated with data
    ranges.  Intended for benchmark logs, not publication.
    """
    if not figure.series or all(len(s.x) == 0 for s in figure.series):
        return f"{figure.title}\n(no data)\n"
    xs = np.concatenate([np.asarray(s.x, dtype=float) for s in figure.series])
    ys = np.concatenate([np.asarray(s.y, dtype=float) for s in figure.series])
    x_min, x_max = float(xs.min()), float(xs.max())
    y_min, y_max = float(ys.min()), float(ys.max())
    y_min = min(y_min, 0.0)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(figure.series):
        mark = _MARKS[idx % len(_MARKS)]
        for xv, yv in zip(s.x, s.y):
            col = int(round((xv - x_min) / x_span * (width - 1)))
            row = int(round((yv - y_min) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = mark

    lines = [figure.title]
    lines.append(f"{figure.y_label}  [{y_min:.3g} .. {y_max:.3g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f" {figure.x_label}  [{x_min:.3g} .. {x_max:.3g}]")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.name}" for i, s in enumerate(figure.series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines) + "\n"
