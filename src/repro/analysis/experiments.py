"""Programmatic experiment runner: every figure as a function.

The benchmark harness under ``benchmarks/`` is pytest-shaped; this module
exposes the same experiments as plain functions returning structured
results, so notebooks, the CLI (``gae-repro report``) and downstream code
can regenerate the paper's evaluation without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.figures import FigureData
from repro.analysis.metrics import summarize_errors
from repro.analysis.report import markdown_table


@dataclass
class ExperimentResult:
    """One regenerated figure plus its paper-vs-measured comparison."""

    name: str
    figure: FigureData
    comparison: List[List[object]]  # rows of (quantity, paper, measured)
    notes: str = ""

    def to_markdown(self) -> str:
        """Render the result as a markdown section."""
        parts = [f"## {self.name}\n"]
        if self.notes:
            parts.append(self.notes + "\n")
        parts.append("```\n" + self.figure.render() + "```\n")
        parts.append(markdown_table(["quantity", "paper", "measured"], self.comparison))
        return "\n".join(parts)


def run_figure5(seed: int = 1995, n_history: int = 100, n_tests: int = 20) -> ExperimentResult:
    """Figure 5: runtime-estimator accuracy on the synthetic Paragon trace."""
    from repro.core.estimators.runtime import RuntimeEstimator
    from repro.workloads.downey import DowneyWorkloadGenerator

    gen = DowneyWorkloadGenerator(seed=seed)
    history, tests = gen.history_and_tests(n_history, n_tests)
    estimator = RuntimeEstimator(history)
    actuals = [t.runtime_s for t in tests]
    estimates = [estimator.estimate(t.to_task_spec()).value for t in tests]
    summary = summarize_errors(actuals, estimates)
    corr = float(np.corrcoef(actuals, estimates)[0, 1])

    cases = list(range(1, n_tests + 1))
    figure = (
        FigureData(
            title="Figure 5: Actual & Estimated Runtimes",
            x_label="Jobs", y_label="Job Runtime (seconds)",
        )
        .add("Actual Runtime", cases, actuals)
        .add("Estimated Runtime", cases, estimates)
    )
    return ExperimentResult(
        name="Figure 5 — runtime estimator accuracy",
        figure=figure,
        comparison=[
            ["history / test jobs", f"{n_history} / {n_tests}", f"{n_history} / {n_tests}"],
            ["mean |% error|", 13.53, round(summary.mean_abs_pct, 2)],
            ["mean signed % error", "n/a", round(summary.mean_signed_pct, 2)],
            ["correlation", "tracks visually", round(corr, 3)],
        ],
        notes=(
            "History-based similar-task estimation (templates + mean/linear "
            f"regression) over a synthetic SDSC Paragon trace (seed {seed})."
        ),
    )


def run_figure7(
    seed: int = 2005,
    site_a_load: float = 1.5,
    poll_interval_s: float = 20.0,
    horizon_s: float = 1200.0,
    sample_every_s: float = 20.0,
) -> ExperimentResult:
    """Figure 7: the steering experiment with a shadow job at site A."""
    from repro.core.estimators.history import HistoryRepository
    from repro.core.steering.optimizer import SteeringPolicy
    from repro.gae import build_gae
    from repro.gridsim import GridBuilder, Job
    from repro.workloads.generators import (
        PRIME_JOB_FREE_CPU_SECONDS,
        make_prime_count_task,
        prime_job_history_records,
    )

    grid = (
        GridBuilder(seed=seed)
        .site("siteA", background_load=site_a_load)
        .site("siteB", background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )
    history = HistoryRepository(prime_job_history_records(n=10, sigma=0.01))
    policy = SteeringPolicy(
        poll_interval_s=poll_interval_s, min_elapsed_wall_s=40.0,
        slow_rate_threshold=0.8, min_improvement_factor=1.2,
    )
    gae = build_gae(grid, policy=policy, history=history)

    steered = make_prime_count_task(owner="runner")
    shadow = make_prime_count_task(owner="runner")
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    gae.scheduler.submit_job(Job(tasks=[steered], owner="runner"))
    gae.scheduler.select_site = original
    gae.grid.execution_services["siteA"].submit_task(shadow)

    gae.start()
    es = gae.grid.execution_services
    curve_a: List[Tuple[float, float]] = []
    curve_steer: List[Tuple[float, float]] = []
    t = 0.0
    while t <= horizon_s:
        gae.grid.run_until(t)
        curve_a.append((t, es["siteA"].pool.status(shadow.task_id).progress * 100))
        site = "siteB" if es["siteB"].pool.has_task(steered.task_id) else "siteA"
        curve_steer.append((t, es[site].pool.status(steered.task_id).progress * 100))
        t += sample_every_s
    gae.grid.run_until(horizon_s + 3000.0)
    gae.stop()

    steered_site = "siteB" if es["siteB"].pool.has_task(steered.task_id) else "siteA"
    steered_end = es[steered_site].pool.ad(steered.task_id).end_time
    shadow_end = es["siteA"].pool.ad(shadow.task_id).end_time
    decision_at = gae.steering.actions[0].time if gae.steering.actions else None

    figure = (
        FigureData(
            title="Figure 7: Job Completion at different sites",
            x_label="Elapsed time (s)", y_label="Job progress (%)",
        )
        .add("Progress of the job at site A", *zip(*curve_a))
        .add("Steered job", *zip(*curve_steer))
        .add("283 s free-CPU reference",
             [0.0, PRIME_JOB_FREE_CPU_SECONDS], [0.0, 100.0])
    )
    return ExperimentResult(
        name="Figure 7 — autonomous steering",
        figure=figure,
        comparison=[
            ["free-CPU estimate (s)", 283, PRIME_JOB_FREE_CPU_SECONDS],
            ["steered completion (s)", "~369", round(steered_end, 1)],
            ["stay-at-A completion (s)", "off chart", round(shadow_end, 1)],
            ["move decision at (s)", "chart: ~120-170",
             round(decision_at, 1) if decision_at is not None else "n/a"],
        ],
        notes=(
            f"Site A load {site_a_load} (rate {1 / (1 + site_a_load):.2f}); steering "
            f"poll {poll_interval_s:.0f}s.  Ordering asserted by the benches: "
            "free-CPU bound < steered < stay-put."
        ),
    )


def run_figure6(
    client_counts: Optional[List[int]] = None, calls_per_client: int = 10
) -> ExperimentResult:
    """Figure 6: monitoring latency over real XML-RPC under concurrency.

    Hardware-dependent (real sockets and threads); the other two figures
    are fully deterministic.
    """
    from repro.analysis.latency import build_served_monitoring, measure_mean_latency_ms
    from repro.clarens.server import XmlRpcServerHandle

    counts = client_counts if client_counts is not None else [1, 2, 3, 5, 25, 50, 100]
    gae, task_ids = build_served_monitoring()
    results: Dict[int, float] = {}
    with XmlRpcServerHandle(gae.host) as handle:
        for n in counts:
            results[n] = measure_mean_latency_ms(
                handle.url, task_ids, n, calls_per_client=calls_per_client
            )
    figure = FigureData(
        title="Figure 6: Response times for queries to Job Monitoring Service",
        x_label="Number of parallel clients", y_label="Response time (ms)",
    ).add("Average Response Time", list(results), list(results.values()))
    hi = max(results)
    lo = min(results)
    return ExperimentResult(
        name="Figure 6 — monitoring latency under concurrency",
        figure=figure,
        comparison=[
            ["clients swept", "1,2,3,5,25,50,100", ",".join(map(str, results))],
            [f"latency @ {lo} client(s) (ms)", "~10-30", round(results[lo], 2)],
            [f"latency @ {hi} clients (ms)", "~60-70", round(results[hi], 2)],
        ],
        notes=(
            "Real threaded XML-RPC server on loopback with genuinely "
            "concurrent clients; absolute ms are hardware-dependent, the "
            "flat-then-rising shape is the reproduced result."
        ),
    )


def write_report(
    path: Union[str, Path, None] = None,
    include_figure6: bool = False,
    seed: int = 1995,
) -> str:
    """Run the deterministic experiments and render a markdown report.

    Returns the report text; writes it to *path* when given.
    ``include_figure6`` adds the socket-latency experiment (slower,
    hardware-dependent).
    """
    results = [run_figure5(seed=seed), run_figure7()]
    if include_figure6:
        results.append(run_figure6(client_counts=[1, 2, 5, 25]))
    parts = [
        "# GAE reproduction report",
        "",
        "Regenerated from `repro.analysis.experiments`; see EXPERIMENTS.md "
        "for the full methodology.",
        "",
    ]
    parts.extend(r.to_markdown() for r in results)
    text = "\n".join(parts)
    if path is not None:
        Path(path).write_text(text)
    return text
