"""Accuracy metrics, using the paper's own definitions.

§7: "Percentage Error = (Actual Runtime - Estimated Runtime) / Actual
Runtime * 100 %" and "the mean error … was computed by dividing the sum of
percentage errors in each of the twenty test cases by 20."

The paper's mean is over *absolute* percentage errors (a signed mean would
let over- and under-estimates cancel and its 13.53 % figure would be
uninformative); we provide both, and report the absolute one as the
headline number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percentage_error(actual: float, estimated: float) -> float:
    """The paper's per-case signed percentage error.

    Raises ValueError for a zero actual (the formula is undefined there).
    """
    if actual == 0:
        raise ValueError("percentage error undefined for actual == 0")
    return (actual - estimated) / actual * 100.0


def mean_percentage_error(actuals: Sequence[float], estimates: Sequence[float]) -> float:
    """Mean of signed percentage errors (bias indicator)."""
    _check(actuals, estimates)
    return float(
        np.mean([percentage_error(a, e) for a, e in zip(actuals, estimates)])
    )


def mean_absolute_percentage_error(
    actuals: Sequence[float], estimates: Sequence[float]
) -> float:
    """Mean of |percentage error| — the paper's headline 13.53 % metric."""
    _check(actuals, estimates)
    return float(
        np.mean([abs(percentage_error(a, e)) for a, e in zip(actuals, estimates)])
    )


def _check(actuals: Sequence[float], estimates: Sequence[float]) -> None:
    if len(actuals) != len(estimates):
        raise ValueError(
            f"length mismatch: {len(actuals)} actuals vs {len(estimates)} estimates"
        )
    if len(actuals) == 0:
        raise ValueError("cannot compute error over zero cases")


@dataclass(frozen=True)
class ErrorSummary:
    """Accuracy statistics over a set of (actual, estimated) pairs."""

    n: int
    mean_abs_pct: float
    mean_signed_pct: float
    median_abs_pct: float
    max_abs_pct: float
    within_25_pct: float       # fraction of cases within +/-25 %


def summarize_errors(
    actuals: Sequence[float], estimates: Sequence[float]
) -> ErrorSummary:
    """Full accuracy summary for a test set."""
    _check(actuals, estimates)
    signed = np.array(
        [percentage_error(a, e) for a, e in zip(actuals, estimates)], dtype=float
    )
    absolute = np.abs(signed)
    return ErrorSummary(
        n=len(signed),
        mean_abs_pct=float(absolute.mean()),
        mean_signed_pct=float(signed.mean()),
        median_abs_pct=float(np.median(absolute)),
        max_abs_pct=float(absolute.max()),
        within_25_pct=float((absolute <= 25.0).mean()),
    )
