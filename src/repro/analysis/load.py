"""Closed-loop concurrent load harness for the Clarens read path.

This is the machinery behind ``gae-repro loadtest`` (and
``benchmarks/load.py``).  It builds a two-site GAE holding thousands of
live jobs, then drives the host's RPC surface with a seeded, mixed
read/steer workload two ways — once with the epoch-keyed read cache
enabled and once with the always-execute pipeline — and reports both
correctness and capacity:

- **identity**: the full interleaved schedule (reads *and* mutations) is
  replayed sequentially against both hosts and every wire-level response
  must compare equal.  This is the cache's bit-identity contract under
  production traffic, not a microbenchmark artifact.
- **throughput**: the same per-worker schedules run as N closed-loop
  worker threads (each issues its next call the moment the previous one
  returns) against each host; the ratio of wall-clock rates is the
  read-path speedup.  At the 10k-job scale the cached host must clear
  :data:`SPEEDUP_FLOOR`.

The hot mix mirrors what the webui and steering Optimizer actually poll:
mostly per-task status/progress lookups over a hot subset, periodic
``running_tasks``/``grid_weather`` scans, occasional ``system.multicall``
batches with duplicate sub-calls (request coalescing), owner-wide
monitoring sweeps, and a trickle of ``set_priority`` steering mutations
that keep invalidation honest.

A second, **transport** phase compares the wire transports themselves
over one cached host in a deliberately transport-bound regime (small
rig, read-only mix): the threaded XML-RPC HTTP server versus the framed
asyncio server (:mod:`repro.clarens.aio`) under each negotiable codec,
serial and pipelined — with its own identity pass proving every
transport/codec combination returns wire-identical answers.

Everything is seeded; the emitted JSON is schema-stable (see
``docs/BENCHMARKS.md``) and validated by the CI ``loadtest-smoke`` job.
"""

from __future__ import annotations

import json
import platform
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

LOAD_SCHEMA_VERSION = 2

#: Throughput multiple the cached read path must reach on the hot mix at
#: the >=10k-job scale (the tentpole acceptance gate; mirrored by the
#: ``rpc_read_path`` section of ``BENCH_estimators.json``).
SPEEDUP_FLOOR = 3.0

#: Throughput multiple the pipelined async transport must reach over the
#: **recorded** threaded-XML-RPC baseline
#: (:data:`RECORDED_XMLRPC_BASELINE_CALLS_PER_S`).
TRANSPORT_SPEEDUP_FLOOR = 20.0

#: The recorded threaded-XML-RPC closed-loop rate: ``rpc_read_path.
#: uncached_calls_per_s`` from ``BENCH_estimators.json``, measured at the
#: 10k-job scale where per-call dispatch cost dominates.  The transport
#: phase (cached host, small rig, read-only mix — a transport-bound
#: regime) must clear :data:`TRANSPORT_SPEEDUP_FLOOR` times this rate;
#: the live same-rig threaded measurement is asserted separately via
#: :data:`TRANSPORT_LIVE_FLOOR` and both ratios are reported.
RECORDED_XMLRPC_BASELINE_CALLS_PER_S = 10.0

#: Same-rig floor: pipelined async must beat the live threaded XML-RPC
#: measurement taken in the same run by at least this multiple.
TRANSPORT_LIVE_FLOOR = 2.0

#: Size of the "hot" task subset the per-task reads cycle over.  Small
#: enough that repeat reads dominate (the webui/optimizer polling
#: pattern), large enough to exercise LRU behaviour.
HOT_TASKS = 64


class LoadTestError(RuntimeError):
    """Raised when a loadtest invariant (identity, speedup floor) fails."""


class LoadSchemaError(ValueError):
    """Raised by :func:`validate_loadtest_report` for malformed reports."""


# ----------------------------------------------------------------------
# the rig
# ----------------------------------------------------------------------
def _rig(seed: int, n_tasks: int, read_cache: bool):
    """A quiescent two-site GAE holding ``n_tasks`` live single-task jobs.

    Same shape as the bench harness's 10k-job scale rig: dispatch has
    settled, no auto-steering, a slow poll — so the load phase measures
    the RPC surface, not the simulator.
    """
    from repro.gae import SteeringPolicy, build_gae
    from repro.gridsim import GridBuilder
    from repro.gridsim.job import Job, Task, TaskSpec, reset_id_counters

    reset_id_counters()
    rng = np.random.default_rng(seed)
    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=64, cpus_per_node=4)
        .site("siteB", nodes=64, cpus_per_node=4)
        .link("siteA", "siteB", capacity_mbps=622.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )
    gae = build_gae(
        grid,
        read_cache=read_cache,
        observability=False,
        policy=SteeringPolicy(auto_move=False, poll_interval_s=3_600.0),
    )
    gae.add_user("load", "pw")
    gae.start()
    task_ids: List[str] = []
    for work in rng.uniform(50.0, 500.0, n_tasks):
        task = Task(
            spec=TaskSpec(owner="load", priority=int(rng.integers(0, 5))),
            work_seconds=float(work),
        )
        task_ids.append(task.task_id)
        gae.scheduler.submit_job(Job(tasks=[task], owner="load"))
    grid.run_until(100.0)  # dispatch settles; the bulk of the queue idles
    token = gae.host.dispatch("system.login", ["load", "pw"])
    return gae, task_ids, token


# ----------------------------------------------------------------------
# the workload
# ----------------------------------------------------------------------
def build_schedule(
    rng: np.random.Generator,
    task_ids: Sequence[str],
    length: int,
    mutations: bool = True,
) -> List[Tuple[str, List[Any]]]:
    """A seeded list of ``(method, params)`` calls in the hot read mix.

    ``mutations=False`` produces the read-only variant (the trickle of
    ``steering.set_priority`` writes becomes extra ``owner_tasks``
    sweeps) used by the transport phase, whose repeated replays across
    transports must not depend on replay order.
    """
    hot = list(task_ids[: min(HOT_TASKS, len(task_ids))])
    sites = ("siteA", "siteB")
    schedule: List[Tuple[str, List[Any]]] = []
    for _ in range(length):
        r = float(rng.random())
        tid = hot[int(rng.integers(0, len(hot)))]
        if r < 0.34:
            schedule.append(("jobmon.job_status", [tid]))
        elif r < 0.46:
            schedule.append(("jobmon.progress", [tid]))
        elif r < 0.54:
            schedule.append(("jobmon.queue_position", [tid]))
        elif r < 0.70:
            schedule.append(("jobmon.running_tasks", []))
        elif r < 0.80:
            schedule.append(("monalisa.grid_weather", []))
        elif r < 0.85:
            schedule.append(("monalisa.site_load", [sites[int(rng.integers(0, 2))]]))
        elif r < 0.90:
            schedule.append(("estimator.history_size", []))
        elif r < 0.95:
            # A duplicate-heavy batch: the coalescing path.
            schedule.append(("system.multicall", [[
                {"methodName": "jobmon.job_status", "params": [tid]},
                {"methodName": "jobmon.job_status", "params": [tid]},
                {"methodName": "jobmon.progress", "params": [tid]},
                {"methodName": "jobmon.job_status", "params": [tid]},
            ]]))
        elif r < 0.995 or not mutations:
            schedule.append(("jobmon.owner_tasks", ["load"]))
        else:
            # Rare but present: every write invalidates the pool- and
            # scheduler-dependent entries, keeping the cache honest.
            schedule.append((
                "steering.set_priority", [tid, int(rng.integers(0, 5))]
            ))
    return schedule


def _mix_of(schedules: Sequence[Sequence[Tuple[str, List[Any]]]]) -> Dict[str, int]:
    mix: Dict[str, int] = {}
    for schedule in schedules:
        for method, _ in schedule:
            mix[method] = mix.get(method, 0) + 1
    return mix


def _interleave(
    schedules: Sequence[List[Tuple[str, List[Any]]]]
) -> List[Tuple[str, List[Any]]]:
    """Round-robin merge: the deterministic order the identity pass replays."""
    out: List[Tuple[str, List[Any]]] = []
    for i in range(max(len(s) for s in schedules)):
        for schedule in schedules:
            if i < len(schedule):
                out.append(schedule[i])
    return out


def _normalize(value: Any) -> Any:
    """Strip per-host call identifiers before the identity comparison.

    ``trace_id`` is a random identifier minted per dispatched call —
    two hosts can never agree on it, and it carries no payload.  Every
    other byte of the response must compare equal.
    """
    if isinstance(value, dict):
        return {
            k: _normalize(v) for k, v in value.items() if k != "trace_id"
        }
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    return value


def _run_sequential(host: Any, token: str, schedule: Sequence[Tuple[str, List[Any]]]):
    from repro.clarens.errors import ClarensFault

    out: List[Any] = []
    for method, params in schedule:
        try:
            out.append(_normalize(host.dispatch(method, params, token)))
        except ClarensFault as exc:
            out.append(("fault", exc.code, exc.message))
    return out


def _run_threaded(
    host: Any, token: str, schedules: Sequence[Sequence[Tuple[str, List[Any]]]]
) -> float:
    """Wall-clock seconds for N closed-loop workers to drain their schedules."""
    from repro.clarens.errors import ClarensFault

    barrier = threading.Barrier(len(schedules) + 1)

    def worker(schedule: Sequence[Tuple[str, List[Any]]]) -> None:
        barrier.wait()
        for method, params in schedule:
            try:
                host.dispatch(method, params, token)
            except ClarensFault:
                pass

    threads = [
        threading.Thread(target=worker, args=(schedule,), daemon=True)
        for schedule in schedules
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# the measurement
# ----------------------------------------------------------------------
def measure_read_path(
    n_tasks: int,
    workers: int,
    calls_per_worker: int,
    seed: int,
    rounds: int = 2,
) -> Dict[str, object]:
    """Identity + throughput of the hot read mix, cached vs uncached.

    Builds one cached and one uncached rig, replays the interleaved
    schedule sequentially on both (every response compared for the
    ``identical`` flag), then times the threaded closed-loop run on each
    (best of *rounds*).  Both hosts execute the identical mutation
    stream, so they stay in lockstep throughout.
    """
    rng = np.random.default_rng(seed)
    cached_gae, task_ids, cached_token = _rig(seed, n_tasks, read_cache=True)
    plain_gae, _, plain_token = _rig(seed, n_tasks, read_cache=False)
    schedules = [
        build_schedule(rng, task_ids, calls_per_worker) for _ in range(workers)
    ]
    combined = _interleave(schedules)
    mutations = sum(
        1 for method, _ in combined if method == "steering.set_priority"
    )

    cached_answers = _run_sequential(cached_gae.host, cached_token, combined)
    plain_answers = _run_sequential(plain_gae.host, plain_token, combined)
    identical = cached_answers == plain_answers

    best = {"cached": float("inf"), "uncached": float("inf")}
    for round_no in range(max(1, rounds)):
        order = ("cached", "uncached") if round_no % 2 == 0 else ("uncached", "cached")
        for which in order:
            host, token = (
                (cached_gae.host, cached_token)
                if which == "cached"
                else (plain_gae.host, plain_token)
            )
            best[which] = min(best[which], _run_threaded(host, token, schedules))

    total_calls = sum(len(s) for s in schedules)
    snapshot = cached_gae.host.read_cache.snapshot()
    totals = {"hits": 0, "misses": 0, "invalidations": 0, "coalesced": 0}
    for counters in snapshot["per_method"].values():
        for kind in totals:
            totals[kind] += counters[kind]
    cached_gae.stop()
    plain_gae.stop()
    lookups = totals["hits"] + totals["misses"] + totals["invalidations"]
    return {
        "n_tasks": n_tasks,
        "workers": workers,
        "calls_per_worker": calls_per_worker,
        "total_calls": total_calls,
        "mutations": mutations,
        "rounds": rounds,
        "identical": identical,
        "uncached_wall_s": best["uncached"],
        "cached_wall_s": best["cached"],
        "uncached_calls_per_s": total_calls / best["uncached"],
        "cached_calls_per_s": total_calls / best["cached"],
        "speedup": best["uncached"] / best["cached"],
        "cache": {
            **totals,
            "entries": snapshot["entries"],
            "evictions": snapshot["evictions"],
            "hit_rate": (totals["hits"] / lookups) if lookups else 0.0,
        },
        "mix": _mix_of(schedules),
    }


def _run_transport_threaded(
    make_transport: Callable[[], Any],
    token: str,
    schedules: Sequence[Sequence[Tuple[str, List[Any]]]],
) -> float:
    """Wall-clock seconds for N closed-loop workers, one connection each."""
    from repro.clarens.errors import ClarensFault

    transports = [make_transport() for _ in schedules]
    barrier = threading.Barrier(len(schedules) + 1)

    def worker(transport: Any, schedule: Sequence[Tuple[str, List[Any]]]) -> None:
        barrier.wait()
        for method, params in schedule:
            try:
                transport.call(method, params, token=token)
            except ClarensFault:
                pass

    threads = [
        threading.Thread(target=worker, args=(t, s), daemon=True)
        for t, s in zip(transports, schedules)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    for transport in transports:
        transport.close()
    return elapsed


def _run_transport_pipelined(
    make_transport: Callable[[], Any],
    token: str,
    schedules: Sequence[Sequence[Tuple[str, List[Any]]]],
    window: int,
) -> float:
    """Wall-clock seconds for N connections each pipelining its schedule."""
    transports = [make_transport() for _ in schedules]
    barrier = threading.Barrier(len(schedules) + 1)

    def worker(transport: Any, schedule: Sequence[Tuple[str, List[Any]]]) -> None:
        barrier.wait()
        transport.call_pipelined(schedule, token=token, window=window)

    threads = [
        threading.Thread(target=worker, args=(t, s), daemon=True)
        for t, s in zip(transports, schedules)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    for transport in transports:
        transport.close()
    return elapsed


def measure_transport(
    n_tasks: int,
    workers: int,
    calls_per_worker: int,
    seed: int,
    pipeline_window: int = 64,
) -> Dict[str, object]:
    """Identity + throughput of the wire transports over one cached host.

    A deliberately **transport-bound** regime: a small rig (cheap
    dispatch, hot read cache) and the read-only hot mix, so what the
    clock sees is connection handling, framing and codec cost rather
    than host compute.  Two phases:

    - **identity** — the interleaved schedule is replayed through direct
      dispatch (the reference), the threaded XML-RPC HTTP transport, and
      the framed async transport under *each* codec; every normalized
      response must compare equal, proving codec negotiation never
      changes an answer.
    - **throughput** — closed-loop workers over per-worker connections:
      the threaded XML-RPC server (one blocking HTTP round trip per
      call) versus the async framed server, serial and pipelined, per
      codec.

    The headline ``async_calls_per_s`` (best pipelined codec) is
    asserted against both the recorded 10k-job threaded baseline
    (:data:`TRANSPORT_SPEEDUP_FLOOR` ×
    :data:`RECORDED_XMLRPC_BASELINE_CALLS_PER_S`) and the live threaded
    measurement from the same run (:data:`TRANSPORT_LIVE_FLOOR`).
    """
    from repro.clarens.aio import AsyncSocketServerHandle
    from repro.clarens.codecs import codec_names
    from repro.clarens.server import XmlRpcServerHandle
    from repro.clarens.transport import AsyncSocketTransport, SocketTransport

    rng = np.random.default_rng(seed)
    gae, task_ids, token = _rig(seed, n_tasks, read_cache=True)
    schedules = [
        build_schedule(rng, task_ids, calls_per_worker, mutations=False)
        for _ in range(workers)
    ]
    combined = _interleave(schedules)
    total_calls = sum(len(s) for s in schedules)
    codecs = list(codec_names())

    def replay_via(transport: Any) -> List[Any]:
        from repro.clarens.errors import ClarensFault

        out: List[Any] = []
        for method, params in combined:
            try:
                out.append(_normalize(transport.call(method, params, token=token)))
            except ClarensFault as exc:
                out.append(("fault", exc.code, exc.message))
        return out

    try:
        # -- identity phase ------------------------------------------------
        reference = _run_sequential(gae.host, token, combined)
        identity: Dict[str, bool] = {}
        with XmlRpcServerHandle(gae.host) as handle:
            transport = SocketTransport(handle.url)
            identity["xmlrpc_http"] = replay_via(transport) == reference
            transport.close()
        with AsyncSocketServerHandle(gae.host) as handle:
            for codec in codecs:
                transport = AsyncSocketTransport(handle.address, codec=codec)
                identity[f"async+{codec}"] = replay_via(transport) == reference
                transport.close()
        identical = all(identity.values())

        # -- throughput phase ----------------------------------------------
        with XmlRpcServerHandle(gae.host) as handle:
            url = handle.url
            threaded_wall = _run_transport_threaded(
                lambda: SocketTransport(url), token, schedules
            )
        codec_results: Dict[str, Dict[str, float]] = {}
        with AsyncSocketServerHandle(gae.host) as handle:
            address = handle.address
            for codec in codecs:
                make = (
                    lambda c=codec: AsyncSocketTransport(address, codec=c)
                )
                serial_wall = _run_transport_threaded(make, token, schedules)
                pipelined_wall = _run_transport_pipelined(
                    make, token, schedules, pipeline_window
                )
                codec_results[codec] = {
                    "serial_calls_per_s": total_calls / serial_wall,
                    "pipelined_calls_per_s": total_calls / pipelined_wall,
                }
    finally:
        gae.stop()

    threaded_rate = total_calls / threaded_wall
    async_rate = max(
        r["pipelined_calls_per_s"] for r in codec_results.values()
    )
    return {
        "n_tasks": n_tasks,
        "workers": workers,
        "calls_per_worker": calls_per_worker,
        "total_calls": total_calls,
        "pipeline_window": pipeline_window,
        "identical": identical,
        "identity": identity,
        "threaded_xmlrpc_calls_per_s": threaded_rate,
        "codecs": codec_results,
        "async_calls_per_s": async_rate,
        "recorded_baseline_calls_per_s": RECORDED_XMLRPC_BASELINE_CALLS_PER_S,
        "speedup_vs_recorded": async_rate / RECORDED_XMLRPC_BASELINE_CALLS_PER_S,
        "speedup_vs_live_threaded": async_rate / threaded_rate,
    }


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def run_loadtest(
    quick: bool = False,
    seed: int = 1995,
    out: Optional[str] = None,
    n_tasks: Optional[int] = None,
    workers: Optional[int] = None,
    calls_per_worker: Optional[int] = None,
    echo: Callable[[str], None] = print,
) -> Dict[str, object]:
    """Run the closed-loop load test, assert its invariants, return the report.

    ``quick`` shrinks the rig for CI smoke runs (identity assertions are
    kept; the speedup floor is only asserted at the >=10k-job scale).
    ``out`` additionally writes the JSON report to that path.
    """
    if n_tasks is None:
        n_tasks = 2_000 if quick else 10_000
    if workers is None:
        workers = 4 if quick else 8
    if calls_per_worker is None:
        calls_per_worker = 250 if quick else 1_500

    echo(f"gae-repro loadtest (quick={quick}, seed={seed})")
    echo(
        f"  rig: {n_tasks} jobs, {workers} closed-loop workers x "
        f"{calls_per_worker} calls, cached vs uncached"
    )
    read_path = measure_read_path(
        n_tasks, workers, calls_per_worker, seed, rounds=1 if quick else 2
    )
    echo("  transport phase: threaded XML-RPC vs framed async, both codecs")
    transport = measure_transport(
        n_tasks=200 if quick else 400,
        workers=workers,
        calls_per_worker=80 if quick else 250,
        seed=seed,
    )
    report: Dict[str, object] = {
        "schema_version": LOAD_SCHEMA_VERSION,
        "generated_by": "gae-repro loadtest",
        "quick": bool(quick),
        "seed": int(seed),
        "python": platform.python_version(),
        "read_path": read_path,
        "transport": transport,
    }
    _assert_invariants(report)
    validate_loadtest_report(report)
    _print_summary(report, echo)
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        echo(f"wrote {out}")
    return report


def _assert_invariants(report: Dict[str, object]) -> None:
    rp = report["read_path"]
    if not rp["identical"]:
        raise LoadTestError(
            "cached host answered the interleaved schedule differently "
            "from the uncached host"
        )
    cache = rp["cache"]
    if cache["hits"] <= 0:
        raise LoadTestError("the read cache served no hits under the hot mix")
    if cache["coalesced"] <= 0:
        raise LoadTestError("multicall batches produced no coalesced sub-calls")
    if rp["mutations"] > 0 and cache["invalidations"] <= 0:
        raise LoadTestError(
            "mutations ran but no cache entry was ever invalidated"
        )
    if rp["n_tasks"] >= 10_000 and rp["speedup"] < SPEEDUP_FLOOR:
        raise LoadTestError(
            f"cached read path reached only {rp['speedup']:.1f}x the uncached "
            f"throughput at {rp['n_tasks']} jobs, below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    tp = report.get("transport")
    if tp is not None:
        if not tp["identical"]:
            broken = [k for k, v in tp["identity"].items() if not v]
            raise LoadTestError(
                f"transports answered the schedule differently from direct "
                f"dispatch: {', '.join(broken)}"
            )
        if tp["speedup_vs_recorded"] < TRANSPORT_SPEEDUP_FLOOR:
            raise LoadTestError(
                f"pipelined async transport reached {tp['async_calls_per_s']:.0f} "
                f"calls/s, only {tp['speedup_vs_recorded']:.1f}x the recorded "
                f"threaded-XML-RPC baseline "
                f"({tp['recorded_baseline_calls_per_s']:.1f} calls/s), below "
                f"the {TRANSPORT_SPEEDUP_FLOOR}x floor"
            )
        if tp["speedup_vs_live_threaded"] < TRANSPORT_LIVE_FLOOR:
            raise LoadTestError(
                f"pipelined async transport is only "
                f"{tp['speedup_vs_live_threaded']:.2f}x the live threaded "
                f"XML-RPC rate measured on the same rig, below the "
                f"{TRANSPORT_LIVE_FLOOR}x floor"
            )


def _print_summary(report: Dict[str, object], echo: Callable[[str], None]) -> None:
    from repro.analysis.report import markdown_table

    rp = report["read_path"]
    cache = rp["cache"]
    echo("")
    echo("rpc read path (closed-loop hot mix, cached vs uncached host)")
    echo(markdown_table(
        ["jobs", "workers", "calls", "uncached calls/s", "cached calls/s",
         "speedup", "identical"],
        [[
            rp["n_tasks"], rp["workers"], rp["total_calls"],
            round(rp["uncached_calls_per_s"], 1),
            round(rp["cached_calls_per_s"], 1),
            f"{rp['speedup']:.1f}x", rp["identical"],
        ]],
    ))
    echo(markdown_table(
        ["hits", "misses", "invalidations", "coalesced", "hit rate",
         "entries", "evictions"],
        [[
            cache["hits"], cache["misses"], cache["invalidations"],
            cache["coalesced"], f"{cache['hit_rate']:.1%}",
            cache["entries"], cache["evictions"],
        ]],
    ))
    tp = report.get("transport")
    if tp is not None:
        echo("")
        echo(
            "wire transports (cached host, read-only mix — a transport-"
            "bound regime; recorded baseline is the 10k-job threaded rate)"
        )
        rows = [[
            "xmlrpc over HTTP (threaded)",
            round(tp["threaded_xmlrpc_calls_per_s"], 1), "-", "-",
        ]]
        for codec, rates in sorted(tp["codecs"].items()):
            rows.append([
                f"async framed, {codec}",
                round(rates["serial_calls_per_s"], 1),
                round(rates["pipelined_calls_per_s"], 1),
                f"x{tp['pipeline_window']} window",
            ])
        echo(markdown_table(
            ["transport", "serial calls/s", "pipelined calls/s", "notes"],
            rows,
        ))
        echo(markdown_table(
            ["async best", "vs recorded baseline", "vs live threaded",
             "identical"],
            [[
                round(tp["async_calls_per_s"], 1),
                f"{tp['speedup_vs_recorded']:.1f}x",
                f"{tp['speedup_vs_live_threaded']:.1f}x",
                tp["identical"],
            ]],
        ))


# ----------------------------------------------------------------------
# schema validation (used by the CI smoke job)
# ----------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise LoadSchemaError(message)


def validate_loadtest_report(report: Dict[str, object]) -> None:
    """Validate a loadtest report against the documented schema.

    Raises :class:`LoadSchemaError` on the first violation.  The CI
    smoke job additionally re-checks the identity flag, so a report that
    validates is also a report whose cached answers were bit-identical.
    """
    _require(isinstance(report, dict), "report must be a JSON object")
    for key, kind in (
        ("schema_version", int), ("generated_by", str), ("quick", bool),
        ("seed", int), ("python", str), ("read_path", dict),
    ):
        _require(key in report, f"missing top-level key {key!r}")
        _require(isinstance(report[key], kind),
                 f"top-level {key!r} must be {kind.__name__}")
    _require(report["schema_version"] == LOAD_SCHEMA_VERSION,
             f"schema_version must be {LOAD_SCHEMA_VERSION}")
    rp = report["read_path"]
    for fname, ftype in (
        ("n_tasks", int), ("workers", int), ("calls_per_worker", int),
        ("total_calls", int), ("mutations", int), ("rounds", int),
        ("identical", bool), ("uncached_wall_s", float),
        ("cached_wall_s", float), ("uncached_calls_per_s", float),
        ("cached_calls_per_s", float), ("speedup", float),
        ("cache", dict), ("mix", dict),
    ):
        _require(fname in rp, f"read_path missing field {fname!r}")
        value = rp[fname]
        if ftype is float:
            _require(
                isinstance(value, (int, float)) and not isinstance(value, bool),
                f"read_path.{fname} must be a number",
            )
        else:
            _require(isinstance(value, ftype),
                     f"read_path.{fname} must be {ftype.__name__}")
    for counter in ("hits", "misses", "invalidations", "coalesced",
                    "entries", "evictions"):
        _require(isinstance(rp["cache"].get(counter), int),
                 f"read_path.cache.{counter} must be an int")
    _require(isinstance(rp["cache"].get("hit_rate"), float),
             "read_path.cache.hit_rate must be a number")
    _require(rp["identical"] is True,
             "read_path.identical must be true (bit-identity violated)")
    _require("transport" in report and isinstance(report["transport"], dict),
             "missing top-level 'transport' section")
    tp = report["transport"]
    for fname, ftype in (
        ("n_tasks", int), ("workers", int), ("calls_per_worker", int),
        ("total_calls", int), ("pipeline_window", int),
        ("identical", bool), ("identity", dict),
        ("threaded_xmlrpc_calls_per_s", float), ("codecs", dict),
        ("async_calls_per_s", float),
        ("recorded_baseline_calls_per_s", float),
        ("speedup_vs_recorded", float), ("speedup_vs_live_threaded", float),
    ):
        _require(fname in tp, f"transport missing field {fname!r}")
        value = tp[fname]
        if ftype is float:
            _require(
                isinstance(value, (int, float)) and not isinstance(value, bool),
                f"transport.{fname} must be a number",
            )
        else:
            _require(isinstance(value, ftype),
                     f"transport.{fname} must be {ftype.__name__}")
    _require(len(tp["codecs"]) >= 2,
             "transport.codecs must cover at least two codecs")
    for codec, rates in tp["codecs"].items():
        _require(isinstance(rates, dict),
                 f"transport.codecs[{codec!r}] must be an object")
        for rate_name in ("serial_calls_per_s", "pipelined_calls_per_s"):
            rate = rates.get(rate_name)
            _require(
                isinstance(rate, (int, float)) and not isinstance(rate, bool),
                f"transport.codecs[{codec!r}].{rate_name} must be a number",
            )
    for label, flag in tp["identity"].items():
        _require(isinstance(flag, bool),
                 f"transport.identity[{label!r}] must be a bool")
    _require(tp["identical"] is True,
             "transport.identical must be true (wire identity violated)")


def validate_loadtest_file(path: str) -> None:
    """Load *path* and validate it; raises on schema violations."""
    with open(path) as fh:
        validate_loadtest_report(json.load(fh))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI for ``python -m repro.analysis.load`` (mirrors ``gae-repro loadtest``)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Closed-loop RPC read-path load harness (cached vs uncached)."
    )
    parser.add_argument("--quick", action="store_true", help="small CI-sized run")
    parser.add_argument("--seed", type=int, default=1995)
    parser.add_argument("--out", type=str, default="LOAD_readpath.json",
                        help="report path ('-' to skip writing)")
    parser.add_argument("--tasks", type=int, default=None, dest="n_tasks",
                        help="jobs held live on the rig (default 10000, quick 2000)")
    parser.add_argument("--workers", type=int, default=None,
                        help="closed-loop worker threads (default 8, quick 4)")
    parser.add_argument("--calls-per-worker", type=int, default=None,
                        help="schedule length per worker (default 1500, quick 250)")
    parser.add_argument("--validate", type=str, default=None, metavar="PATH",
                        help="validate an existing report instead of running")
    args = parser.parse_args(argv)
    if args.validate:
        validate_loadtest_file(args.validate)
        print(f"{args.validate}: schema ok")
        return 0
    run_loadtest(
        quick=args.quick,
        seed=args.seed,
        out=None if args.out == "-" else args.out,
        n_tasks=args.n_tasks,
        workers=args.workers,
        calls_per_worker=args.calls_per_worker,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
