"""Markdown rendering helpers for experiment reports."""

from __future__ import annotations

from typing import List, Sequence


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavoured markdown table.

    Cells are stringified; floats get a compact 4-significant-digit form.
    """
    if not headers:
        raise ValueError("a table needs at least one column")

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    lines: List[str] = []
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines) + "\n"
