"""Concurrent-client latency measurement (the Figure 6 harness core).

Builds a GAE with running jobs, serves it over the real threaded XML-RPC
server, and measures the mean per-request wall time as N genuinely
concurrent clients hammer the Job Monitoring Service — the §7 performance
study of the paper.  Shared by ``benchmarks/bench_fig6_monitoring_latency``
and the ``gae-repro figure6`` CLI command.
"""

from __future__ import annotations

import statistics
import threading
import time
from typing import List, Tuple

from repro.clarens.client import ClarensClient
from repro.clarens.transport import SocketTransport
from repro.gae import GAE, build_gae
from repro.gridsim import GridBuilder, Job, Task, TaskSpec


def build_served_monitoring(seed: int = 6, n_jobs: int = 8) -> Tuple[GAE, List[str]]:
    """A GAE with *n_jobs* long-running jobs, ready to be served.

    Returns the GAE and the ids of the running tasks clients will query.
    The caller mounts ``gae.host`` on an
    :class:`~repro.clarens.server.XmlRpcServerHandle`.
    """
    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=4, background_load=0.3)
        .site("siteB", nodes=4, background_load=0.1)
        .probe_noise(0.0)
        .build()
    )
    gae = build_gae(grid)
    gae.add_user("alice", "pw")
    task_ids: List[str] = []
    for _ in range(n_jobs):
        t = Task(spec=TaskSpec(owner="alice"), work_seconds=1e6)
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        task_ids.append(t.task_id)
    gae.grid.run_until(100.0)
    return gae, task_ids


def measure_mean_latency_ms(
    url: str,
    task_ids: List[str],
    n_clients: int,
    calls_per_client: int = 10,
) -> float:
    """Mean per-request latency (ms) with *n_clients* concurrent clients.

    Each client owns its transport/connection, logs in, waits on a barrier
    so the load applies simultaneously, then times *calls_per_client*
    ``jobmon.job_status`` calls.
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    latencies: List[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients)
    errors: List[Exception] = []

    def client_worker(idx: int) -> None:
        try:
            client = ClarensClient(SocketTransport(url))
            client.login("alice", "pw")
            jobmon = client.service("jobmon")
            task_id = task_ids[idx % len(task_ids)]
            barrier.wait()
            mine = []
            for _ in range(calls_per_client):
                t0 = time.perf_counter()
                jobmon.job_status(task_id)
                mine.append((time.perf_counter() - t0) * 1000.0)
            with lock:
                latencies.extend(mine)
        except Exception as exc:  # pragma: no cover - surfaced to caller
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=client_worker, args=(i,)) for i in range(n_clients)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    return statistics.mean(latencies)
